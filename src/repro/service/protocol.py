"""Wire format of the solver service: newline-delimited JSON messages.

One request per line, one response line per request, in order.  The
same encoding is used over raw TCP (the primary transport) and as the
body format of the optional HTTP front end, and the client library
builds its requests through the helpers here, so there is exactly one
place that knows the field names.

Requests
--------

Every request is a JSON object with an ``op`` field and an optional
``id`` (any JSON value; echoed verbatim in the response so clients can
pipeline).  Operations:

``solve``
    ``formula`` (DQDIMACS text, required), ``family`` (optional routing
    hint — requests with the same family reach the same warm worker),
    ``timeout`` / ``node_limit`` (optional per-request budgets, capped
    by the server's own limits), ``no_cache`` (optional bool: bypass
    the result cache, used by benchmarks to measure the cold path).
``stats``
    server, cache and pool counters.
``ping``
    liveness probe.
``health``
    liveness + readiness detail: worker aliveness, queue headroom,
    circuit-breaker state (the TCP twin of HTTP ``/healthz`` and
    ``/readyz``).
``shutdown``
    ask the server to drain and exit (same path as SIGTERM).

Responses
---------

``{"id": ..., "ok": true, ...}`` on success.  A ``solve`` response
carries ``status``/``runtime``/``stats`` (the
:class:`~repro.core.SolveResult` fields), the formula ``fingerprint``
and ``cache`` — one of ``"miss"``, ``"hit"``, ``"disk"`` (served from
the on-disk tier), ``"coalesced"`` (attached to an identical in-flight
solve).  Failures are ``{"id": ..., "ok": false, "error": "..."}``;
the connection stays usable.

Backpressure: when the server's solve queue is full it answers
``{"ok": false, "busy": true, "error": ...}`` *immediately* instead of
queueing without bound.  ``busy`` responses are explicitly safe to
retry after a backoff (the request was never dispatched); the client
library does so automatically.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

#: Default TCP port of ``hqs-serve`` (HQS was published at DATE 2015).
DEFAULT_PORT = 20150

#: Hard bound on one message line (requests carry whole DQDIMACS files).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Bumped on incompatible changes; the server reports it in ``stats``.
PROTOCOL_VERSION = 1

OPS = ("solve", "stats", "ping", "health", "shutdown")


class ProtocolError(ValueError):
    """Raised on malformed frames or requests (the connection survives)."""


def encode_message(message: Dict[str, object]) -> bytes:
    """Serialize one message to its wire form (compact JSON + newline)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_message(line: Union[bytes, str]) -> Dict[str, object]:
    """Parse one wire line into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def validate_request(message: Dict[str, object]) -> str:
    """Check a request's shape; returns the operation name."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    if op == "solve":
        formula = message.get("formula")
        if not isinstance(formula, str) or not formula.strip():
            raise ProtocolError("solve request needs a non-empty 'formula' string")
        for field, kind in (("timeout", (int, float)), ("node_limit", int)):
            value = message.get(field)
            if value is not None and (
                not isinstance(value, kind) or isinstance(value, bool) or value <= 0
            ):
                raise ProtocolError(f"{field!r} must be a positive number")
    return str(op)


def solve_request(
    formula: str,
    family: Optional[str] = None,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    no_cache: bool = False,
    request_id: Optional[object] = None,
) -> Dict[str, object]:
    """Build a ``solve`` request (``formula`` is DQDIMACS text)."""
    message: Dict[str, object] = {"op": "solve", "formula": formula}
    if family is not None:
        message["family"] = family
    if timeout is not None:
        message["timeout"] = timeout
    if node_limit is not None:
        message["node_limit"] = node_limit
    if no_cache:
        message["no_cache"] = True
    if request_id is not None:
        message["id"] = request_id
    return message


def ok_response(message: Dict[str, object], **fields: object) -> Dict[str, object]:
    """A success response echoing the request's ``id``."""
    response: Dict[str, object] = {"ok": True}
    if "id" in message:
        response["id"] = message["id"]
    response.update(fields)
    return response


def error_response(message: Dict[str, object], error: str) -> Dict[str, object]:
    """A failure response echoing the request's ``id``."""
    response: Dict[str, object] = {"ok": False, "error": error}
    if isinstance(message, dict) and "id" in message:
        response["id"] = message["id"]
    return response


def busy_response(message: Dict[str, object], error: str) -> Dict[str, object]:
    """An explicit backpressure rejection: retriable by contract.

    ``busy: true`` tells the client the request was *not* dispatched
    (no solve started, nothing to deduplicate against), so resubmitting
    after a backoff is always safe.
    """
    response = error_response(message, error)
    response["busy"] = True
    return response
