"""Blocking client library for the solver service: ``hqs-client``.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
one TCP connection.  Requests on a single client are serialized (the
protocol answers in order); for concurrent load, open one client per
thread — sockets are cheap, warm workers are shared server-side.

Library use::

    from repro.service import ServiceClient

    with ServiceClient(port=20150) as client:
        reply = client.solve(formula, family="adder", timeout=30.0)
        print(reply["status"], reply["cache"])   # "SAT", "hit"

CLI use::

    hqs-client solve problem.dqdimacs --family adder
    hqs-client stats
    hqs-client shutdown

``solve`` exits with the (D)QBF convention of the ``hqs`` CLI:
10 = SAT, 20 = UNSAT, 0 = inconclusive, 2 = transport/protocol error.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from typing import Dict, Optional, Sequence, Union

from ..formula.dqbf import Dqbf
from ..formula.dqdimacs import write_dqdimacs
from .protocol import (
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    solve_request,
)


class ServiceError(RuntimeError):
    """A transport failure or an ``ok: false`` response."""


class ServiceClient:
    """One connection to ``hqs-serve``; thread-safe via a request lock."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            if self._sock is not None:
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one raw request message, return the response dict.

        Raises :class:`ServiceError` on connection loss, oversized or
        unparsable replies, and ``ok: false`` responses.
        """
        with self._lock:
            self._connect()
            if "id" not in message:
                self._next_id += 1
                message = dict(message, id=self._next_id)
            try:
                self._sock.sendall(encode_message(message))
                line = self._file.readline(MAX_LINE_BYTES + 1)
            except OSError as exc:
                self.close_nolock()
                raise ServiceError(f"connection to {self.host}:{self.port} "
                                   f"failed: {exc}") from exc
            if not line:
                self.close_nolock()
                raise ServiceError("server closed the connection")
            if len(line) > MAX_LINE_BYTES:
                self.close_nolock()
                raise ServiceError("oversized response")
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response: {exc}") from exc
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "request failed")))
        return response

    def close_nolock(self) -> None:
        """Drop the socket (lock already held by :meth:`request`)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: Union[str, Dqbf],
        family: Optional[str] = None,
        timeout: Optional[float] = None,
        node_limit: Optional[int] = None,
        no_cache: bool = False,
    ) -> Dict[str, object]:
        """Solve a formula (a :class:`~repro.formula.dqbf.Dqbf` or
        DQDIMACS text); returns the response dict (``status``,
        ``runtime``, ``stats``, ``fingerprint``, ``cache``)."""
        if isinstance(formula, Dqbf):
            formula = write_dqdimacs(formula)
        return self.request(solve_request(
            formula, family=family, timeout=timeout,
            node_limit=node_limit, no_cache=no_cache,
        ))

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and exit (acknowledged before it does)."""
        return self.request({"op": "shutdown"})


def wait_for_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll until a server accepts connections (startup synchronization)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=interval):
                return True
        except OSError:
            time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# console entry
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs-client",
        description="Talk to a running hqs-serve instance",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a DQDIMACS file")
    solve.add_argument("file")
    solve.add_argument("--family", default=None,
                       help="routing hint: same family -> same warm worker")
    solve.add_argument("--timeout", type=float, default=None,
                       help="per-request time budget (capped by the server)")
    solve.add_argument("--node-limit", type=int, default=None)
    solve.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache (cold measurement)")
    solve.add_argument("--repeat", type=int, default=1,
                       help="send the request N times (cache demonstration)")
    solve.add_argument("--stats", action="store_true",
                       help="print solver statistics of the final reply")

    sub.add_parser("ping", help="liveness probe")
    sub.add_parser("stats", help="print server/cache/pool counters as JSON")
    sub.add_parser("shutdown", help="ask the server to drain and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.command == "ping":
            reply = client.ping()
            print(f"c pong uptime={reply.get('uptime', 0.0):.3f}s")
            return 0
        if args.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.command == "shutdown":
            client.shutdown()
            print("c server draining")
            return 0
        # solve
        with open(args.file, "r", encoding="ascii") as handle:
            text = handle.read()
        reply = None
        for attempt in range(max(1, args.repeat)):
            reply = client.solve(
                text,
                family=args.family,
                timeout=args.timeout,
                node_limit=args.node_limit,
                no_cache=args.no_cache,
            )
            print(
                f"s cnf {reply['status']} ({reply.get('runtime', 0.0):.3f}s) "
                f"cache={reply.get('cache')} fingerprint={reply.get('fingerprint', '')[:12]}"
            )
        if args.stats and reply is not None and reply.get("stats"):
            for key in sorted(reply["stats"]):
                print(f"c {key} = {reply['stats'][key]}")
        if reply["status"] == "SAT":
            return 10
        if reply["status"] == "UNSAT":
            return 20
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
