"""Blocking client library for the solver service: ``hqs-client``.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
one TCP connection.  Requests on a single client are serialized (the
protocol answers in order); for concurrent load, open one client per
thread — sockets are cheap, warm workers are shared server-side.

Resilience: the client retries transparently on transport failures
(connection refused/reset, mid-frame EOF) and on the server's explicit
``busy`` backpressure rejections, reconnecting with jittered
exponential backoff between attempts.  This is safe because every
protocol operation is idempotent — a ``solve`` is keyed by the formula
fingerprint server-side, so resubmitting a request whose response was
lost either coalesces onto the still-running solve or hits the result
cache.  Each request carries an overall wall-clock ``deadline`` across
all attempts.  Failures that survive the retry budget surface as:

* :class:`ServiceProtocolError` — the connection died mid-frame or the
  reply was unparsable; carries the partial frame for diagnosis;
* :class:`ServiceBusyError` — the server kept answering BUSY;
* :class:`ServiceError` — everything else (including ``ok: false``
  responses, which are never retried: the server *answered*).

Library use::

    from repro.service import ServiceClient

    with ServiceClient(port=20150) as client:
        reply = client.solve(formula, family="adder", timeout=30.0)
        print(reply["status"], reply["cache"])   # "SAT", "hit"

CLI use::

    hqs-client solve problem.dqdimacs --family adder
    hqs-client stats
    hqs-client shutdown

``solve`` exits with the (D)QBF convention of the ``hqs`` CLI:
10 = SAT, 20 = UNSAT, 0 = inconclusive, 2 = transport/protocol error.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import threading
import time
import zlib
from typing import Dict, Optional, Sequence, Tuple, Union

from ..formula.dqbf import Dqbf
from ..formula.dqdimacs import write_dqdimacs
from .protocol import (
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    solve_request,
)


class ServiceError(RuntimeError):
    """A transport failure or an ``ok: false`` response."""


class ServiceProtocolError(ServiceError):
    """The reply frame was cut short or unparsable.

    ``partial`` holds the bytes received before the connection died (up
    to :data:`PARTIAL_CONTEXT` of them) — enough to tell "server closed
    mid-frame" apart from "server sent garbage" in a bug report.
    """

    def __init__(self, message: str, partial: bytes = b"") -> None:
        self.partial = partial[:PARTIAL_CONTEXT]
        if partial:
            message = (f"{message} (partial frame, {len(partial)} bytes: "
                       f"{self.partial!r})")
        super().__init__(message)


class ServiceBusyError(ServiceError):
    """The server rejected the request with backpressure (``busy``).

    Only raised once the retry budget is exhausted — a busy reply means
    the request was never dispatched, so retrying is always safe.
    """


#: How much of a broken frame :class:`ServiceProtocolError` preserves.
PARTIAL_CONTEXT = 256


class ServiceClient:
    """One connection to ``hqs-serve``; thread-safe via a request lock.

    ``retries`` bounds the *additional* attempts after the first
    (transport failures and BUSY rejections only); ``backoff`` is the
    initial sleep between attempts, doubled per retry up to
    ``backoff_cap`` with +-50% jitter; ``deadline`` caps the total
    wall-clock of one logical request across all attempts.

    ``seed`` makes the retry jitter reproducible: with a seed set,
    :meth:`solve` derives its backoff RNG from ``seed`` combined with
    the formula text, so a ``REPRO_FAULTS`` soak replays the identical
    retry schedule per request regardless of thread interleaving.
    Without one, jitter is entropy-seeded as before (decorrelating
    concurrent clients is the whole point of the jitter).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self.seed = seed
        #: Attempts beyond the first, across the client's lifetime.
        self.retried = 0
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def _connect(self, timeout: Optional[float]) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            self.close_nolock()

    def close_nolock(self) -> None:
        """Drop the socket (lock already held by :meth:`request`)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def jitter_rng(self, payload: str) -> random.Random:
        """The backoff RNG for one logical request.

        With :attr:`seed` set, the RNG is derived from the seed and the
        request payload, so the retry schedule of a given formula is
        identical across runs and independent of how concurrent
        requests interleave.  Without a seed, the shared client RNG is
        used.
        """
        if self.seed is None:
            return self._rng
        fingerprint = zlib.crc32(payload.encode("ascii", "replace"))
        return random.Random((self.seed << 32) ^ fingerprint)

    def request(
        self,
        message: Dict[str, object],
        rng: Optional[random.Random] = None,
    ) -> Dict[str, object]:
        """Send one request message, return the response dict.

        Retries transport failures and BUSY rejections (reconnecting
        with jittered backoff) up to ``self.retries`` extra attempts
        within ``self.deadline`` seconds.  ``rng`` overrides the jitter
        source (see :meth:`jitter_rng`).  Raises :class:`ServiceError`
        (or a subclass) when the budget is exhausted or the server
        answers ``ok: false``.
        """
        rng = rng if rng is not None else self._rng
        deadline_at = (
            time.monotonic() + self.deadline if self.deadline is not None
            else None
        )
        if "id" not in message:
            with self._lock:
                self._next_id += 1
                message = dict(message, id=self._next_id)
        last_error: Optional[ServiceError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = self._backoff_delay(attempt, deadline_at, rng)
                if delay is None:
                    break  # deadline spent: surface the last failure
                time.sleep(delay)
                self.retried += 1
            try:
                response = self._request_once(message, deadline_at)
            except (ServiceBusyError, ServiceProtocolError) as exc:
                last_error = exc
                continue
            except ServiceError as exc:
                # Transport-level failure (connect/send/recv).  The
                # protocol is idempotent (solves are fingerprint-keyed
                # server-side), so resubmission is safe.
                last_error = exc
                continue
            if not response.get("ok"):
                if response.get("busy"):
                    last_error = ServiceBusyError(
                        str(response.get("error", "server busy")))
                    continue  # explicitly retriable: never dispatched
                raise ServiceError(
                    str(response.get("error", "request failed")))
            return response
        raise last_error if last_error is not None else ServiceError(
            "request failed before any attempt")

    def _backoff_delay(
        self,
        attempt: int,
        deadline_at: Optional[float],
        rng: Optional[random.Random] = None,
    ) -> Optional[float]:
        """Jittered exponential backoff; ``None`` when past the deadline."""
        rng = rng if rng is not None else self._rng
        delay = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        delay *= 0.5 + rng.random()  # +-50% jitter: decorrelate clients
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                return None
            delay = min(delay, remaining)
        return delay

    def _request_once(
        self, message: Dict[str, object], deadline_at: Optional[float]
    ) -> Dict[str, object]:
        """One attempt: connect if needed, send, read one reply line."""
        io_timeout = self.timeout
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"deadline of {self.deadline}s exhausted before the "
                    f"request could be (re)sent")
            io_timeout = min(io_timeout, remaining) if io_timeout else remaining
        with self._lock:
            try:
                self._connect(io_timeout)
                self._sock.settimeout(io_timeout)
                self._sock.sendall(encode_message(message))
                line = self._file.readline(MAX_LINE_BYTES + 1)
            except OSError as exc:
                self.close_nolock()
                raise ServiceError(f"connection to {self.host}:{self.port} "
                                   f"failed: {exc}") from exc
            if not line:
                self.close_nolock()
                raise ServiceError("server closed the connection")
            if not line.endswith(b"\n"):
                # Mid-frame EOF: the server (or the network) died while
                # the reply was in flight.  Never leaks as a raw
                # JSONDecodeError — the partial frame is preserved.
                self.close_nolock()
                if len(line) > MAX_LINE_BYTES:
                    raise ServiceError("oversized response")
                raise ServiceProtocolError(
                    "connection closed mid-frame", partial=line)
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            with self._lock:
                self.close_nolock()  # resync: the stream can't be trusted
            raise ServiceProtocolError(f"bad response: {exc}",
                                       partial=line) from exc
        return response

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: Union[str, Dqbf],
        family: Optional[str] = None,
        timeout: Optional[float] = None,
        node_limit: Optional[int] = None,
        no_cache: bool = False,
        resubmit: int = 0,
        resubmit_statuses: Tuple[str, ...] = ("ERROR",),
    ) -> Dict[str, object]:
        """Solve a formula (a :class:`~repro.formula.dqbf.Dqbf` or
        DQDIMACS text); returns the response dict (``status``,
        ``runtime``, ``stats``, ``fingerprint``, ``cache``).

        ``resubmit`` re-sends the request up to N more times while the
        answer's ``status`` is in ``resubmit_statuses`` — for statuses
        that are *transient* rather than properties of the formula
        (a crashed worker's ``ERROR``, a budget-starved ``UNKNOWN``
        that resumes from its checkpoint).  Resubmission is idempotent:
        the solve is keyed by the formula fingerprint server-side.
        """
        if isinstance(formula, Dqbf):
            formula = write_dqdimacs(formula)
        message = solve_request(
            formula, family=family, timeout=timeout,
            node_limit=node_limit, no_cache=no_cache,
        )
        rng = self.jitter_rng(formula)
        reply = self.request(message, rng=rng)
        for _ in range(max(0, resubmit)):
            if str(reply.get("status")) not in resubmit_statuses:
                break
            reply = self.request(dict(message), rng=rng)  # fresh id per attempt
        return reply

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def health(self) -> Dict[str, object]:
        """Liveness/readiness detail (the TCP twin of ``/healthz``)."""
        return self.request({"op": "health"})

    def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and exit (acknowledged before it does)."""
        return self.request({"op": "shutdown"})


def wait_for_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll until a server accepts connections (startup synchronization)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=interval):
                return True
        except OSError:
            time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# console entry
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs-client",
        description="Talk to a running hqs-serve instance",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--retries", type=int, default=3,
                        help="extra attempts on transport failure or BUSY "
                             "(default 3)")
    parser.add_argument("--backoff", type=float, default=0.05,
                        help="initial retry backoff in seconds, doubled per "
                             "attempt with jitter (default 0.05)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="overall wall-clock budget per request across "
                             "all retries")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed the retry jitter (reproducible backoff "
                             "schedules for fault-injection soaks)")
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a DQDIMACS file")
    solve.add_argument("file")
    solve.add_argument("--family", default=None,
                       help="routing hint: same family -> same warm worker")
    solve.add_argument("--timeout", type=float, default=None,
                       help="per-request time budget (capped by the server)")
    solve.add_argument("--node-limit", type=int, default=None)
    solve.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache (cold measurement)")
    solve.add_argument("--repeat", type=int, default=1,
                       help="send the request N times (cache demonstration)")
    solve.add_argument("--resubmit", type=int, default=0,
                       help="resubmit up to N times while the status is "
                            "transient (ERROR)")
    solve.add_argument("--stats", action="store_true",
                       help="print solver statistics of the final reply")

    sub.add_parser("ping", help="liveness probe")
    sub.add_parser("stats", help="print server/cache/pool counters as JSON")
    sub.add_parser("health", help="print liveness/readiness detail as JSON")
    sub.add_parser("shutdown", help="ask the server to drain and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServiceClient(host=args.host, port=args.port,
                           retries=args.retries, backoff=args.backoff,
                           deadline=args.deadline, seed=args.seed)
    try:
        if args.command == "ping":
            reply = client.ping()
            print(f"c pong uptime={reply.get('uptime', 0.0):.3f}s")
            return 0
        if args.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.command == "health":
            reply = client.health()
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0 if reply.get("ready") else 1
        if args.command == "shutdown":
            client.shutdown()
            print("c server draining")
            return 0
        # solve
        with open(args.file, "r", encoding="ascii") as handle:
            text = handle.read()
        reply = None
        for _attempt in range(max(1, args.repeat)):
            reply = client.solve(
                text,
                family=args.family,
                timeout=args.timeout,
                node_limit=args.node_limit,
                no_cache=args.no_cache,
                resubmit=args.resubmit,
            )
            print(
                f"s cnf {reply['status']} ({reply.get('runtime', 0.0):.3f}s) "
                f"cache={reply.get('cache')} fingerprint={reply.get('fingerprint', '')[:12]}"
            )
        if args.stats and reply is not None and reply.get("stats"):
            for key in sorted(reply["stats"]):
                print(f"c {key} = {reply['stats'][key]}")
        if reply["status"] == "SAT":
            return 10
        if reply["status"] == "UNSAT":
            return 20
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
