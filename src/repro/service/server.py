"""The asyncio front door: ``hqs-serve``.

One process runs three layers:

* :class:`SolverService` — transport-independent request handling:
  fingerprint computation, result-cache lookup, **in-flight
  deduplication** (concurrent identical requests attach to one solve),
  dispatch to the :class:`~repro.service.pool.WorkerPool` through an
  executor, result logging;
* :class:`ServiceServer` — the TCP listener speaking the
  newline-delimited JSON protocol, plus an optional minimal HTTP/1.1
  front end (``POST /solve``, ``GET /stats``, ``GET /ping``,
  ``GET /healthz``, ``GET /readyz``) for curl-style access and
  orchestrator probes;
* graceful shutdown — SIGTERM/SIGINT (or the ``shutdown`` op) stop the
  listeners, wait up to ``drain_timeout`` for in-flight solves, then
  drain the pool (busy workers past the budget are killed; their
  progress survives as cache-directory checkpoints).  Every completed
  solve is in the JSONL result log exactly once: entries are fsynced on
  append and deduplicated by fingerprint against the log loaded at
  startup.

The worker pool **must** be created before the event loop starts (the
workers are forked; see :class:`~repro.service.pool.WorkerPool`), which
is why :func:`main` builds pool → service → loop in that order.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence

from .. import faults
from ..core.checkpoint import formula_fingerprint
from ..experiments.parallel import ResultLog
from ..formula.dqdimacs import DqdimacsError, parse_dqdimacs
from .cache import ResultCache
from .pool import WorkerPool
from .protocol import (
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    busy_response,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)

#: Solver label under which service results are logged (pairs with the
#: fingerprint to form the JSONL key, mirroring the bench harness).
LOG_SOLVER = "HQS"


class ServiceConfig:
    """Knobs of one server instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        http_port: Optional[int] = None,
        workers: int = 2,
        cache_capacity: int = 1024,
        cache_dir: Optional[str] = None,
        log_path: Optional[str] = None,
        default_timeout: Optional[float] = 60.0,
        default_node_limit: Optional[int] = 2_000_000,
        drain_timeout: float = 10.0,
        max_pending: Optional[int] = None,
        heartbeat_interval: Optional[float] = 1.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.http_port = http_port
        self.workers = workers
        self.cache_capacity = cache_capacity
        self.cache_dir = cache_dir
        self.log_path = log_path
        self.default_timeout = default_timeout
        self.default_node_limit = default_node_limit
        self.drain_timeout = drain_timeout
        #: Bound on queued-plus-running solves before new requests get
        #: an explicit BUSY rejection instead of unbounded queueing
        #: (``None`` -> ``4 * workers``).
        self.max_pending = 4 * workers if max_pending is None else max_pending
        self.heartbeat_interval = heartbeat_interval
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown


class SolverService:
    """Transport-independent request handling over pool + cache."""

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.pool = pool
        self.cache = cache
        self.started = time.monotonic()
        self.requests = 0
        self.coalesced = 0
        self.errors = 0
        self.busy_rejections = 0
        #: Solves dispatched to (or queued for) the pool right now;
        #: bounded by ``config.max_pending`` — the backpressure valve.
        self._pending = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        # One executor slot per worker: a request beyond pool capacity
        # queues here instead of stacking threads.
        self._executor = ThreadPoolExecutor(
            max_workers=pool.size, thread_name_prefix="hqs-pool"
        )
        # Dedicated single thread for the post-solve disk writes (cache
        # store + fsynced log append).  They must not run on the event
        # loop — an fsync stalls every connected client — and must not
        # queue behind long solves in the pool executor.  One thread
        # also serializes ResultLog.append, which is not reentrant.
        self._io_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="hqs-io"
        )
        self._log_lock = threading.Lock()
        self._log: Optional[ResultLog] = None
        self._logged = set()
        if self.config.log_path is not None:
            self._log = ResultLog(self.config.log_path)
            self._logged = set(self._log.load())

    # ------------------------------------------------------------------
    async def handle(self, message: Dict[str, object]) -> Dict[str, object]:
        """Answer one request message (any op)."""
        self.requests += 1
        try:
            op = validate_request(message)
        except ProtocolError as exc:
            self.errors += 1
            return error_response(message, str(exc))
        if op == "ping":
            return ok_response(message, pong=True, uptime=self.uptime())
        if op == "stats":
            return ok_response(message, **self.snapshot_stats())
        if op == "health":
            return ok_response(message, **self.health_snapshot())
        if op == "shutdown":
            # The transport layer sees the op and trips the stop event
            # after this acknowledgement is written.
            return ok_response(message, stopping=True)
        return await self._solve(message)

    # ------------------------------------------------------------------
    async def _solve(self, message: Dict[str, object]) -> Dict[str, object]:
        try:
            formula = parse_dqdimacs(str(message["formula"]))
            formula.validate()
        except (DqdimacsError, ValueError) as exc:
            self.errors += 1
            return error_response(message, f"bad formula: {exc}")
        fingerprint = formula_fingerprint(formula)

        if not message.get("no_cache"):
            cached = self.cache.lookup(fingerprint)
            if cached is not None:
                return self._result_response(message, fingerprint, cached,
                                             str(cached.get("cache", "hit")))
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                self.coalesced += 1
                payload = await asyncio.shield(inflight)
                return self._result_response(
                    message, fingerprint, payload, "coalesced"
                )

        # Backpressure: a genuinely new solve consumes a pool slot (or
        # a queue position).  Past the bound, reject *now* with an
        # explicitly retriable BUSY instead of queueing without limit —
        # overload must degrade into latency the client controls, not
        # into memory growth and deadline blowouts it cannot see.
        if self._pending >= self.config.max_pending:
            self.busy_rejections += 1
            return busy_response(
                message,
                f"server busy: {self._pending} solves pending "
                f"(max_pending={self.config.max_pending}); retry with backoff",
            )

        future = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self._pending += 1
        try:
            payload = await self._dispatch(message, fingerprint)
            if not future.done():
                future.set_result(payload)
        except BaseException as exc:
            if not future.done():  # wake coalesced waiters on the error too
                future.set_exception(exc)
                future.exception()  # consumed: avoid the never-retrieved warning
            raise
        finally:
            self._pending -= 1
            self._inflight.pop(fingerprint, None)
        return self._result_response(message, fingerprint, payload, "miss")

    async def _dispatch(
        self, message: Dict[str, object], fingerprint: str
    ) -> Dict[str, object]:
        config = self.config
        time_limit = message.get("timeout")
        time_limit = (
            config.default_timeout if time_limit is None
            else min(float(time_limit), config.default_timeout or float(time_limit))
        )
        node_limit = message.get("node_limit")
        node_limit = (
            config.default_node_limit if node_limit is None
            else min(int(node_limit), config.default_node_limit or int(node_limit))
        )
        checkpoint = self.cache.checkpoint_path(fingerprint)
        resuming = self.cache.has_checkpoint(fingerprint)
        family = message.get("family")
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            self._executor,
            lambda: self.pool.solve(
                str(message["formula"]),
                family=str(family) if family is not None else None,
                time_limit=time_limit,
                node_limit=node_limit,
                checkpoint=checkpoint,
            ),
        )
        if resuming and payload.get("stats", {}).get("checkpoint_resumed"):
            self.cache.note_resume()

        def _persist() -> None:
            if self.cache.store(fingerprint, payload):
                self._append_log(fingerprint, payload)

        # Blocking disk IO (cache write, fsynced log append) stays off
        # the event loop; the response waits so drain still guarantees
        # every acknowledged result is on disk.
        await loop.run_in_executor(self._io_executor, _persist)
        return payload

    def _result_response(
        self,
        message: Dict[str, object],
        fingerprint: str,
        payload: Dict[str, object],
        cache: str,
    ) -> Dict[str, object]:
        response = ok_response(message, fingerprint=fingerprint, cache=cache)
        for key in ("status", "runtime", "stats", "failure", "error",
                    "worker_pid", "warm"):
            if key in payload:
                response[key] = payload[key]
        return response

    # ------------------------------------------------------------------
    def _append_log(self, fingerprint: str, payload: Dict[str, object]) -> None:
        """Log a *fresh* definitive result exactly once per fingerprint.

        Runs on the IO executor thread; the lock keeps the dedup set
        and the non-reentrant :class:`ResultLog` consistent with the
        drain path.
        """
        if self._log is None:
            return
        key = (fingerprint, LOG_SOLVER)
        with self._log_lock:
            if key in self._logged:
                return
            entry = {"instance": fingerprint, "solver": LOG_SOLVER}
            entry.update(
                {k: payload[k] for k in ("status", "runtime", "stats")
                 if k in payload}
            )
            self._log.append(entry)
            self._logged.add(key)

    # ------------------------------------------------------------------
    def uptime(self) -> float:
        return time.monotonic() - self.started

    def snapshot_stats(self) -> Dict[str, object]:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime": self.uptime(),
            "requests": self.requests,
            "coalesced": self.coalesced,
            "request_errors": self.errors,
            "inflight": len(self._inflight),
            "pending": self._pending,
            "max_pending": self.config.max_pending,
            "busy_rejections": self.busy_rejections,
            "cache": self.cache.stats.as_dict(),
            "cache_entries": len(self.cache),
            "pool": self.pool.stats(),
        }

    def health_snapshot(self) -> Dict[str, object]:
        """Liveness + readiness in one view.

        ``live`` is "the process is serving" (always true when this
        code runs); ``ready`` is "a new solve would be accepted and has
        a worker to land on": at least one worker process alive and
        queue headroom below the backpressure bound.
        """
        pool_stats = self.pool.stats()
        alive = int(pool_stats.get("alive", 0))
        ready = alive > 0 and self._pending < self.config.max_pending
        return {
            "live": True,
            "ready": ready,
            "uptime": self.uptime(),
            "workers_alive": alive,
            "workers": self.pool.size,
            "pending": self._pending,
            "max_pending": self.config.max_pending,
            "busy_rejections": self.busy_rejections,
            "breaker": self.pool.breaker_state(),
        }

    async def drain(self, timeout: float) -> int:
        """Wait for in-flight solves (bounded); returns how many remained."""
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout)
        return sum(1 for f in self._inflight.values() if not f.done())

    def close(self) -> None:
        self._executor.shutdown(wait=False)
        self._io_executor.shutdown(wait=True)  # flush queued log appends
        if self._log is not None:
            with self._log_lock:
                self._log.close()


class ServiceServer:
    """TCP (+ optional HTTP) listeners around a :class:`SolverService`."""

    def __init__(
        self,
        config: ServiceConfig,
        pool: WorkerPool,
        cache: Optional[ResultCache] = None,
    ):
        self.config = config
        self.pool = pool
        self.cache = cache if cache is not None else ResultCache(
            capacity=config.cache_capacity, disk_dir=config.cache_dir
        )
        self.service = SolverService(pool, self.cache, config)
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    async def _handle_tcp(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One JSON-lines connection; requests answered in order."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(
                        error_response({}, "message too large")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                    response = await self.service.handle(message)
                except ProtocolError as exc:
                    self.service.errors += 1
                    message, response = {}, error_response({}, str(exc))
                except Exception as exc:  # solver-side surprise: keep serving
                    # The client gets a terse error; the operator gets
                    # the full traceback — a swallowed one here is the
                    # only evidence when a worker wedges a request.
                    print(
                        f"c internal error serving request: {exc!r}\n"
                        f"{traceback.format_exc()}",
                        file=sys.stderr,
                    )
                    self.service.errors += 1
                    message, response = {}, error_response(
                        {}, f"internal error: {exc!r}")
                encoded = encode_message(response)
                fault = faults.fire("server.send")
                if fault is not None and fault.kind == "slow":
                    await asyncio.sleep(fault.seconds)
                elif fault is not None and fault.kind == "drop":
                    # Half a frame, then a hard abort: the client sees a
                    # line with no terminating newline — the mid-frame
                    # EOF the retry/idempotency machinery must absorb.
                    writer.write(encoded[: max(1, len(encoded) // 2)])
                    await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(encoded)
                await writer.drain()
                if message.get("op") == "shutdown":
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled us between requests: completing
            # normally (writer closed below) keeps the teardown quiet —
            # a task that *stays* cancelled trips asyncio's noisy
            # connection_made callback on 3.11.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.1: POST /solve, GET /stats, GET /ping,
        GET /healthz (liveness), GET /readyz (readiness)."""
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            parts = request_line.split()
            if len(parts) != 3:
                return await self._http_reply(writer, 400, {"error": "bad request"})
            method, path, _version = parts
            length = 0
            while True:
                header = (await reader.readline()).decode("latin-1").strip()
                if not header:
                    break
                name, _, value = header.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError:
                        return await self._http_reply(
                            writer, 400, {"error": "bad content-length"})
            if length > MAX_LINE_BYTES:
                return await self._http_reply(writer, 413, {"error": "too large"})
            body = await reader.readexactly(length) if length else b""

            if method == "GET" and path == "/stats":
                return await self._http_reply(
                    writer, 200, ok_response({}, **self.service.snapshot_stats()))
            if method == "GET" and path == "/ping":
                return await self._http_reply(
                    writer, 200, ok_response({}, pong=True))
            if method == "GET" and path == "/healthz":
                # Liveness: if this handler runs, the process serves.
                return await self._http_reply(
                    writer, 200,
                    ok_response({}, **self.service.health_snapshot()))
            if method == "GET" and path == "/readyz":
                health = self.service.health_snapshot()
                return await self._http_reply(
                    writer, 200 if health["ready"] else 503,
                    ok_response({}, **health))
            if method == "POST" and path == "/solve":
                try:
                    message = decode_message(body)
                except ProtocolError as exc:
                    return await self._http_reply(writer, 400,
                                                  {"error": str(exc)})
                message["op"] = "solve"
                response = await self.service.handle(message)
                code = 200 if response.get("ok") else (
                    503 if response.get("busy") else 400)
                return await self._http_reply(writer, code, response)
            await self._http_reply(writer, 404, {"error": f"no route {path}"})
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _http_reply(self, writer: asyncio.StreamWriter, code: int,
                          payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large",
                  503: "Service Unavailable"}.get(code, "Error")
        writer.write(
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listeners (port 0 picks free ports; see ``.port``)."""
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_tcp, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.config.host, self.config.http_port,
                limit=MAX_LINE_BYTES,
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def serve(self, install_signals: bool = True) -> Dict[str, object]:
        """Run until SIGTERM/SIGINT or a ``shutdown`` op, then drain.

        Returns a shutdown summary (for logging and the smoke tests):
        how many in-flight solves finished during the drain window and
        how many busy workers had to be killed (their progress lives on
        as checkpoints in the cache directory).
        """
        if self._server is None:
            await self.start()
        loop = asyncio.get_event_loop()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        await self._stop.wait()
        return await self.shutdown()

    async def shutdown(self) -> Dict[str, object]:
        """Stop accepting, drain in-flight solves, stop the pool."""
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        drain = self.config.drain_timeout
        still_running = await self.service.drain(drain)
        # Idle keep-alive connections would otherwise linger until the
        # event loop is torn down and be killed mid-readline there.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        pool_summary = self.pool.shutdown(drain_timeout=1.0 if still_running
                                          else drain)
        self.service.close()
        return {
            "undrained": still_running,
            "pool": pool_summary,
            "requests": self.service.requests,
            "cache": self.cache.stats.as_dict(),
        }

    def run(self, install_signals: bool = True) -> Dict[str, object]:
        """Blocking convenience wrapper: start, serve, drain."""
        return asyncio.run(self._run(install_signals))

    async def _run(self, install_signals: bool) -> Dict[str, object]:
        await self.start()
        self.announce()
        return await self.serve(install_signals=install_signals)

    def announce(self) -> None:
        print(f"c hqs-serve listening on {self.config.host}:{self.port}"
              + (f" (http {self.http_port})" if self.http_port else ""),
              flush=True)


# ----------------------------------------------------------------------
# console entry
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs-serve",
        description=(
            "Serve DQBF/PEC solve requests over JSON-lines TCP with a "
            "fingerprint-keyed result cache and a warm worker pool"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--http-port", type=int, default=None,
                        help="also serve minimal HTTP on this port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="warm worker processes (default 2)")
    parser.add_argument("--cache-capacity", type=int, default=1024,
                        help="in-memory result cache entries (default 1024)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk cache tier: results + resume checkpoints")
    parser.add_argument("--log", default=None, metavar="PATH",
                        help="JSONL log of completed solves (fsynced, deduplicated)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-request time budget cap in seconds (default 60)")
    parser.add_argument("--node-limit", type=int, default=2_000_000,
                        help="per-request AIG node budget cap (default 2e6)")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds granted to in-flight solves on shutdown")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="solve-queue bound before BUSY rejections "
                             "(default 4 x workers)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="worker heartbeat period in seconds; "
                             "0 disables supervision (default 1.0)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        help="consecutive worker failures per family before "
                             "the circuit opens (default 5)")
    parser.add_argument("--breaker-cooldown", type=float, default=5.0,
                        help="seconds an open circuit rejects before a "
                             "half-open probe (default 5.0)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_dir=args.cache_dir,
        log_path=args.log,
        default_timeout=args.timeout,
        default_node_limit=args.node_limit,
        drain_timeout=args.drain_timeout,
        max_pending=args.max_pending,
        heartbeat_interval=args.heartbeat_interval or None,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    # Fork the workers before asyncio spins up any threads.
    pool = WorkerPool(
        size=config.workers,
        fault_plan=faults.active(),
        heartbeat_interval=config.heartbeat_interval,
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown=config.breaker_cooldown,
    )
    server = ServiceServer(config, pool)
    summary = server.run()
    print(f"c hqs-serve drained: {json.dumps(summary, sort_keys=True)}",
          flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
