"""Fingerprint-keyed result cache with an optional on-disk tier.

Keys are :func:`repro.core.formula_fingerprint` digests, so two
requests hit the same entry whenever their formulas are semantically
identical up to clause presentation (clause order, literal order within
a clause, quantifier declaration order) — the dominant shape of
repeated PEC queries.

Two tiers:

* an in-memory LRU of result payloads (``capacity`` entries);
* an optional directory tier (``disk_dir``): results are written
  through as ``<fingerprint>.json`` on store, so an entry evicted from
  the LRU — or a server restart — still answers from disk.  The same
  directory holds ``<fingerprint>.ckpt``
  :class:`~repro.core.SolverCheckpoint` snapshots written by the
  workers, which is what lets a formula whose solve was interrupted
  (budget, hard kill, shutdown drain) *resume* from its last completed
  elimination instead of restarting: the next request for the same
  fingerprint hands the checkpoint path back to the solver.

Only definitive results (``SAT``/``UNSAT``) are cached.  A budget-
limited ``UNKNOWN`` is returned to the requester but not stored — a
repeat may carry a bigger budget, and thanks to the checkpoint tier it
continues where the failed attempt stopped.

All methods take an internal lock: the asyncio front door calls from
its event-loop thread while pool completions land from executor
threads.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

from .. import durable
from ..core.result import SAT, UNSAT

#: Filename suffixes of the two disk artifact kinds.
RESULT_SUFFIX = ".json"
CHECKPOINT_SUFFIX = ".ckpt"


class CacheStats:
    """Counters of one cache instance (exported by the ``stats`` op).

    The ``disk_corrupt``/``disk_quarantined``/``disk_write_errors``
    counters make storage trouble *visible*: before them a torn or
    rotted disk entry looked exactly like a cache miss, so operators
    saw hit rates degrade with no cause to point at.
    """

    _FIELDS = (
        "lookups",
        "memory_hits",
        "disk_hits",
        "misses",
        "stores",
        "uncacheable",
        "evictions",
        "checkpoint_resumes",
        "disk_corrupt",
        "disk_quarantined",
        "disk_write_errors",
    )

    def __init__(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        payload: Dict[str, float] = {
            name: getattr(self, name) for name in self._FIELDS
        }
        payload["hits"] = self.hits
        payload["hit_rate"] = self.hit_rate()
        return payload

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate():.2f})"
        )


class ResultCache:
    """LRU of solve-result payloads, keyed by formula fingerprint."""

    def __init__(
        self,
        capacity: int = 1024,
        disk_dir: Optional[str] = None,
        recover: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)
            if recover:
                self.recover()

    # ------------------------------------------------------------------
    # result tier
    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``fingerprint``, or ``None``.

        The returned dict gains ``cache: "hit"`` (memory) or
        ``cache: "disk"``; a disk hit is promoted into the LRU.
        """
        with self._lock:
            self.stats.lookups += 1
            payload = self._entries.get(fingerprint)
            if payload is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return dict(payload, cache="hit")
            payload = self._disk_lookup(fingerprint)
            if payload is not None:
                self.stats.disk_hits += 1
                self._insert(fingerprint, payload)
                return dict(payload, cache="disk")
            self.stats.misses += 1
            return None

    def store(self, fingerprint: str, payload: Dict[str, object]) -> bool:
        """Cache a completed solve; returns whether it was cacheable."""
        if payload.get("status") not in (SAT, UNSAT):
            with self._lock:
                self.stats.uncacheable += 1
            return False
        payload = {k: v for k, v in payload.items() if k != "cache"}
        payload.setdefault("fingerprint", fingerprint)
        with self._lock:
            self._insert(fingerprint, payload)
            self.stats.stores += 1
            if self.disk_dir is not None:
                self._disk_store(fingerprint, payload)
        return True

    def _insert(self, fingerprint: str, payload: Dict[str, object]) -> None:
        self._entries[fingerprint] = payload
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _result_path(self, fingerprint: str) -> str:
        return os.path.join(self.disk_dir, fingerprint + RESULT_SUFFIX)

    def _disk_lookup(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """Read one disk-tier entry; corruption is counted, not hidden.

        The caller holds ``self._lock``.  A missing file is a plain
        miss; a file that fails its CRC frame or does not parse is
        *corruption* — counted in ``stats.disk_corrupt``, quarantined
        to ``*.corrupt`` so the evidence survives, and then reported
        as a miss (the solve re-runs and rewrites a good entry).
        """
        if self.disk_dir is None:
            return None
        path = self._result_path(fingerprint)
        try:
            data = durable.read_framed(path)
            payload = json.loads(data.decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, durable.CorruptRecordError, UnicodeDecodeError,
                json.JSONDecodeError):
            self.stats.disk_corrupt += 1
            if durable.quarantine(path):
                self.stats.disk_quarantined += 1
            return None
        if not isinstance(payload, dict) or payload.get("status") not in (SAT, UNSAT):
            self.stats.disk_corrupt += 1
            if durable.quarantine(path):
                self.stats.disk_quarantined += 1
            return None
        return payload

    def _disk_store(self, fingerprint: str, payload: Dict[str, object]) -> None:
        data = json.dumps(payload).encode("utf-8")
        try:
            durable.write_framed(self._result_path(fingerprint), data,
                                 fsync=False, fault_site="cache.write")
        except OSError:  # disk tier is best-effort; memory tier answered
            self.stats.disk_write_errors += 1

    # ------------------------------------------------------------------
    # startup recovery
    # ------------------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Scan the disk tier once, quarantining anything unreadable.

        Run at startup (and after a crash) so corruption surfaces
        immediately in ``stats`` instead of as mystery misses spread
        over the following hours.  Result entries must frame-verify
        *and* parse to a definitive payload; checkpoint files must
        frame-verify and parse as JSON objects (their semantic check
        against a fingerprint happens at resume time).  Leftover
        ``*.tmp.*`` files from killed writers are removed — their
        renames never happened, so they were never part of the tier.
        """
        report = {"results_ok": 0, "checkpoints_ok": 0, "quarantined": 0,
                  "tmp_removed": 0}
        if self.disk_dir is None:
            return report
        for name in sorted(os.listdir(self.disk_dir)):
            path = os.path.join(self.disk_dir, name)
            if ".tmp." in name:
                try:
                    os.remove(path)
                    report["tmp_removed"] += 1
                except OSError:
                    pass
                continue
            if not (name.endswith(RESULT_SUFFIX)
                    or name.endswith(CHECKPOINT_SUFFIX)):
                continue
            try:
                payload = json.loads(durable.read_framed(path).decode("utf-8"))
                ok = isinstance(payload, dict) and (
                    name.endswith(CHECKPOINT_SUFFIX)
                    or payload.get("status") in (SAT, UNSAT)
                )
            except (OSError, durable.CorruptRecordError, UnicodeDecodeError,
                    json.JSONDecodeError):
                ok = False
            if ok:
                key = ("checkpoints_ok" if name.endswith(CHECKPOINT_SUFFIX)
                       else "results_ok")
                report[key] += 1
            else:
                with self._lock:
                    self.stats.disk_corrupt += 1
                    if durable.quarantine(path):
                        self.stats.disk_quarantined += 1
                        report["quarantined"] += 1
        return report

    # ------------------------------------------------------------------
    # checkpoint tier
    # ------------------------------------------------------------------
    def checkpoint_path(self, fingerprint: str) -> Optional[str]:
        """Where a worker should snapshot this formula's progress.

        ``None`` without a disk tier (nothing would survive the worker
        anyway).  The solver resumes from the file when one is present
        and removes it when the solve completes, so simply handing the
        path to every solve yields resume-on-repeat for free.
        """
        if self.disk_dir is None:
            return None
        return os.path.join(self.disk_dir, fingerprint + CHECKPOINT_SUFFIX)

    def has_checkpoint(self, fingerprint: str) -> bool:
        path = self.checkpoint_path(fingerprint)
        return path is not None and os.path.exists(path)

    def note_resume(self) -> None:
        """Record that a solve picked up a stored checkpoint."""
        with self._lock:
            self.stats.checkpoint_resumes += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self)}/{self.capacity} entries, "
            f"disk={'on' if self.disk_dir else 'off'}, {self.stats!r})"
        )
