"""Warm worker pool: long-lived solver processes with per-family state.

Adapted from the one-shot workers of :mod:`repro.experiments.parallel`
(same fork context, same hard-kill discipline via :mod:`repro.proc`),
but inverted: instead of one process per (instance, solver) pair, each
:class:`WarmWorker` process lives across requests and keeps an
:class:`~repro.sat.incremental.AigSatSession` per circuit family.  A
second solve of a same-family formula therefore starts with the learned
clauses, input variables and Tseitin encodings of the first — the
``sat_warm_learnts`` stat of its result records how many learned
clauses it inherited.

Requests are routed by family affinity (CRC-32 of the family hint
modulo pool size), so one family's warmth accumulates in one process;
requests without a hint round-robin.  Each worker handles one request
at a time — a per-worker lock serializes submitters, which is what the
front door's executor threads block on.

Failure handling mirrors the benchmark runner:

* a request whose budget (plus :func:`repro.proc.default_grace`) passes
  without an answer gets the worker killed and recycled, and reports
  ``TIMEOUT`` with ``stats["hard_timeout"]``;
* a worker that dies mid-request (crash, OOM kill) is respawned and the
  request reports ``ERROR`` — the replacement starts cold but the pool
  stays at full strength;
* :meth:`WorkerPool.shutdown` drains: workers busy with a request may
  finish within the drain budget; past it they are killed, which is
  safe because solves checkpoint after every eliminated universal (the
  next request for the same fingerprint resumes from the snapshot).
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional

from ..core.result import ERROR, TIMEOUT
from ..proc import default_grace, mp_context, reap

#: Families whose sessions a single worker keeps warm at once; beyond
#: this the least recently used session is dropped (memory bound).
MAX_FAMILY_SESSIONS = 8

#: Solver options of a warm worker (:class:`~repro.core.HqsOptions`
#: keywords).  Unlike the paper's batch configuration, the service runs
#: periodic FRAIG sweeps: the sweep's SAT miters are what seed the
#: session with learned clauses and counterexample patterns worth
#: keeping warm for the next same-family request.
DEFAULT_SOLVER_OPTIONS = {"fraig_interval": 1}


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _safe_send(conn, payload: Dict[str, object]) -> None:
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # supervisor already gave up on us
        pass


def _solve_message(
    message: Dict[str, object],
    sessions: "OrderedDict[str, object]",
    options_kwargs: Dict[str, object],
    max_family_sessions: int,
) -> Dict[str, object]:
    """Run one solve request against the (possibly warm) family session."""
    started = time.monotonic()
    try:
        from ..core.hqs import HqsOptions, HqsSolver
        from ..core.result import Limits
        from ..formula.dqdimacs import parse_dqdimacs

        formula = parse_dqdimacs(str(message["formula"]))
        family = str(message.get("family") or "_default")
        session = sessions.pop(family, None)
        solver = HqsSolver(HqsOptions(**options_kwargs), sat_session=session)
        limits = Limits(
            time_limit=message.get("time_limit"),
            node_limit=message.get("node_limit"),
        )
        result = solver.solve(
            formula, limits, checkpoint=message.get("checkpoint")
        )
        if solver.sat_session is not None and solver.sat_session.persistent:
            sessions[family] = solver.sat_session
            while len(sessions) > max_family_sessions:
                sessions.popitem(last=False)
        payload = result.as_dict()
        payload["worker_pid"] = os.getpid()
        payload["warm"] = int(session is not None)
        return payload
    except BaseException:
        return {
            "status": ERROR,
            "runtime": time.monotonic() - started,
            "stats": {"worker_error": 1.0},
            "error": traceback.format_exc(),
        }


def _worker_main(
    conn, options_kwargs: Dict[str, object], max_family_sessions: int
) -> None:
    """Request loop of one warm worker process."""
    sessions: "OrderedDict[str, object]" = OrderedDict()
    solves = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message.get("op")
        if op == "shutdown":
            _safe_send(conn, {"ok": True, "solves": solves})
            break
        if op == "ping":
            _safe_send(
                conn,
                {"ok": True, "pid": os.getpid(), "families": list(sessions)},
            )
        elif op == "stall":  # test hook: a solver stuck in native code
            time.sleep(float(message.get("seconds", 0.0)))
            _safe_send(conn, {"ok": True})
        elif op == "solve":
            payload = _solve_message(
                message, sessions, options_kwargs, max_family_sessions
            )
            solves += 1
            _safe_send(conn, payload)
        else:
            _safe_send(conn, {"ok": False, "error": f"unknown worker op {op!r}"})
    conn.close()


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------

class WarmWorker:
    """One long-lived worker process plus its duplex pipe."""

    def __init__(self, ctx, options_kwargs: Dict[str, object],
                 max_family_sessions: int):
        self._ctx = ctx
        self._options_kwargs = options_kwargs
        self._max_family_sessions = max_family_sessions
        self.solves = 0
        self.recycles = 0
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        self.conn = parent
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child, self._options_kwargs, self._max_family_sessions),
            daemon=True,
        )
        self.process.start()
        child.close()

    def request(
        self, message: Dict[str, object], hard_deadline: Optional[float]
    ) -> Optional[Dict[str, object]]:
        """Send one request, block for the reply.

        ``None`` means the hard deadline passed (caller must
        :meth:`recycle`); a dead worker surfaces as :class:`EOFError`.
        """
        self.conn.send(message)
        while True:
            if hard_deadline is None:
                timeout = 1.0
            else:
                timeout = max(0.0, hard_deadline - time.monotonic())
            if self.conn.poll(timeout):
                return self.conn.recv()  # EOFError when the worker died
            if not self.process.is_alive():
                raise EOFError("worker died without replying")
            if hard_deadline is not None and time.monotonic() >= hard_deadline:
                return None

    def recycle(self) -> None:
        """Kill (if needed) and respawn — warm state is lost, slot survives."""
        if self.process.is_alive():
            self.process.terminate()
        reap(self.process, self.conn)
        self.recycles += 1
        self._spawn()

    def close(self, kill: bool = False) -> None:
        if kill and self.process.is_alive():
            self.process.terminate()
        reap(self.process, self.conn)


class WorkerPool:
    """A fixed-size pool of :class:`WarmWorker` processes.

    Fork the pool *before* starting threads or event loops (the workers
    inherit a clean single-threaded image); it is then safe to call
    :meth:`solve` from many threads concurrently.
    """

    def __init__(
        self,
        size: int = 2,
        options_kwargs: Optional[Dict[str, object]] = None,
        grace: Optional[float] = None,
        max_family_sessions: int = MAX_FAMILY_SESSIONS,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.grace = grace
        self._ctx = mp_context()
        self._options_kwargs = dict(
            DEFAULT_SOLVER_OPTIONS if options_kwargs is None else options_kwargs
        )
        self._workers: List[WarmWorker] = [
            WarmWorker(self._ctx, self._options_kwargs, max_family_sessions)
            for _ in range(size)
        ]
        self._locks = [threading.Lock() for _ in range(size)]
        self._rr_lock = threading.Lock()
        self._rr = 0
        self._closed = False
        self.hard_kills = 0
        self.worker_deaths = 0
        self.completed = 0

    # ------------------------------------------------------------------
    def route(self, family: Optional[str]) -> int:
        """Worker index for ``family`` (affinity) or round-robin."""
        if family:
            return zlib.crc32(family.encode("utf-8")) % self.size
        with self._rr_lock:
            self._rr = (self._rr + 1) % self.size
            return self._rr

    def solve(
        self,
        formula: str,
        family: Optional[str] = None,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, object]:
        """Solve DQDIMACS text on the family's warm worker (blocking)."""
        message: Dict[str, object] = {
            "op": "solve",
            "formula": formula,
            "family": family,
            "time_limit": time_limit,
            "node_limit": node_limit,
            "checkpoint": checkpoint,
        }
        grace = default_grace(time_limit) if self.grace is None else self.grace
        deadline = (
            None if time_limit is None
            else time.monotonic() + time_limit + grace
        )
        return self._request(self.route(family), message, deadline)

    def _request(
        self, index: int, message: Dict[str, object],
        hard_deadline: Optional[float],
    ) -> Dict[str, object]:
        if self._closed:
            return {
                "status": ERROR,
                "runtime": 0.0,
                "stats": {"worker_error": 1.0},
                "error": "worker pool is shut down",
            }
        worker = self._workers[index]
        started = time.monotonic()
        with self._locks[index]:
            if self._closed:
                return {
                    "status": ERROR,
                    "runtime": 0.0,
                    "stats": {"worker_error": 1.0},
                    "error": "worker pool is shut down",
                }
            try:
                payload = worker.request(message, hard_deadline)
            except (EOFError, OSError):
                self.worker_deaths += 1
                worker.recycle()
                return {
                    "status": ERROR,
                    "runtime": time.monotonic() - started,
                    "stats": {"worker_error": 1.0},
                    "error": "worker died mid-request; recycled",
                }
            if payload is None:
                self.hard_kills += 1
                worker.recycle()
                return {
                    "status": TIMEOUT,
                    "runtime": time.monotonic() - started,
                    "stats": {"hard_timeout": 1.0},
                }
            worker.solves += 1
            self.completed += 1
            return payload

    def ping(self) -> List[Dict[str, object]]:
        """Liveness probe of every worker (serialized per worker)."""
        replies = []
        for index in range(self.size):
            replies.append(self._request(index, {"op": "ping"},
                                         time.monotonic() + 10.0))
        return replies

    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.size,
            "alive": sum(1 for w in self._workers if w.process.is_alive()),
            "completed": self.completed,
            "hard_kills": self.hard_kills,
            "worker_deaths": self.worker_deaths,
            "recycles": sum(w.recycles for w in self._workers),
            "worker_solves": [w.solves for w in self._workers],
        }

    # ------------------------------------------------------------------
    def shutdown(self, drain_timeout: float = 10.0) -> Dict[str, int]:
        """Stop the pool, draining in-flight solves where possible.

        Workers idle (or finishing within the drain budget) exit
        cleanly; workers still busy past it are killed — their
        in-progress solves survive as on-disk checkpoints, so nothing
        is lost beyond the wall-clock already spent past the last
        eliminated universal.
        """
        self._closed = True
        deadline = time.monotonic() + max(0.0, drain_timeout)
        drained = 0
        killed = 0
        for index, worker in enumerate(self._workers):
            remaining = max(0.0, deadline - time.monotonic())
            if self._locks[index].acquire(timeout=remaining):
                try:
                    try:
                        worker.conn.send({"op": "shutdown"})
                        worker.conn.poll(5.0)
                    except (BrokenPipeError, OSError):
                        pass
                    worker.close()
                    drained += 1
                finally:
                    self._locks[index].release()
            else:
                worker.close(kill=True)
                killed += 1
        return {"drained": drained, "killed": killed}

    def kill(self) -> None:
        """Immediate teardown (tests, error paths); no draining."""
        self._closed = True
        for worker in self._workers:
            worker.close(kill=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        if not self._closed:
            self.kill()
