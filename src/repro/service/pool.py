"""Warm worker pool: long-lived solver processes with per-family state.

Adapted from the one-shot workers of :mod:`repro.experiments.parallel`
(same fork context, same hard-kill discipline via :mod:`repro.proc`),
but inverted: instead of one process per (instance, solver) pair, each
:class:`WarmWorker` process lives across requests and keeps an
:class:`~repro.sat.incremental.AigSatSession` per circuit family.  A
second solve of a same-family formula therefore starts with the learned
clauses, input variables and Tseitin encodings of the first — the
``sat_warm_learnts`` stat of its result records how many learned
clauses it inherited.

Requests are routed by family affinity (CRC-32 of the family hint
modulo pool size), so one family's warmth accumulates in one process;
requests without a hint round-robin.  Each worker handles one request
at a time — a per-worker lock serializes submitters, which is what the
front door's executor threads block on.

Failure handling goes beyond the benchmark runner's kill-and-respawn:

* a request whose budget (plus :func:`repro.proc.default_grace`) passes
  without an answer gets the worker killed and recycled, and reports
  ``TIMEOUT`` with ``stats["hard_timeout"]``;
* a worker that dies mid-request (crash, OOM kill) is respawned and the
  request reports ``ERROR`` — the replacement starts cold but the pool
  stays at full strength;
* **supervision**: with ``heartbeat_interval`` set, a daemon thread
  pings idle workers and proactively respawns dead or wedged ones, so
  a crash between requests is healed before the next request pays for
  it; respawns after rapid deaths back off exponentially (base
  doubling up to a cap) so a worker that dies on arrival — a poisoned
  warm session, a broken import — cannot pin a CPU with a fork storm;
* a **per-family circuit breaker** counts consecutive failures
  (worker death, hard kill) per routing family; past the threshold the
  family's requests fail fast with ``stats["circuit_open"]`` instead
  of feeding more requests to a crashing input, and after the cooldown
  one probe request is let through (half-open) to test recovery;
* :meth:`WorkerPool.shutdown` drains: workers busy with a request may
  finish within the drain budget; past it they are killed, which is
  safe because solves checkpoint after every eliminated universal (the
  next request for the same fingerprint resumes from the snapshot).

Chaos testing: the worker request loop is a :mod:`repro.faults` site
(``pool.solve`` — ``crash``/``wedge``/``slow``/``clock``), and a
:class:`FaultPlan` handed to the pool constructor is installed inside
every worker it spawns.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional

from .. import faults
from ..core.result import ERROR, TIMEOUT
from ..proc import close_foreign_sockets, default_grace, mp_context, reap

#: Families whose sessions a single worker keeps warm at once; beyond
#: this the least recently used session is dropped (memory bound).
MAX_FAMILY_SESSIONS = 8

#: A worker that dies sooner than this after spawning counts as a
#: "rapid death" and escalates the respawn backoff.
RAPID_DEATH_WINDOW = 5.0

#: Solver options of a warm worker (:class:`~repro.core.HqsOptions`
#: keywords).  Unlike the paper's batch configuration, the service runs
#: periodic FRAIG sweeps: the sweep's SAT miters are what seed the
#: session with learned clauses and counterexample patterns worth
#: keeping warm for the next same-family request.
DEFAULT_SOLVER_OPTIONS = {"fraig_interval": 1}


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _safe_send(conn, payload: Dict[str, object]) -> None:
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # supervisor already gave up on us
        pass


def _solve_message(
    message: Dict[str, object],
    sessions: "OrderedDict[str, object]",
    options_kwargs: Dict[str, object],
    max_family_sessions: int,
) -> Dict[str, object]:
    """Run one solve request against the (possibly warm) family session."""
    started = time.monotonic()
    # Chaos hook: crash/wedge/slow are enacted here; a ``clock`` fault
    # collapses the request's time budget so the ResourceGuard trips
    # (budget exhaustion -> diagnosed UNKNOWN, never a wrong answer).
    fault = faults.apply_worker_fault(faults.fire("pool.solve"))
    if fault is not None and fault.kind == "clock":
        squeezed = fault.args.get("seconds", 0.001)
        limit = message.get("time_limit")
        message = dict(message,
                       time_limit=squeezed if limit is None
                       else min(float(limit), squeezed))
    try:
        from ..core.hqs import HqsOptions, HqsSolver
        from ..core.result import Limits
        from ..formula.dqdimacs import parse_dqdimacs

        formula = parse_dqdimacs(str(message["formula"]))
        family = str(message.get("family") or "_default")
        session = sessions.pop(family, None)
        solver = HqsSolver(HqsOptions(**options_kwargs), sat_session=session)
        limits = Limits(
            time_limit=message.get("time_limit"),
            node_limit=message.get("node_limit"),
        )
        result = solver.solve(
            formula, limits, checkpoint=message.get("checkpoint")
        )
        if solver.sat_session is not None and solver.sat_session.persistent:
            sessions[family] = solver.sat_session
            while len(sessions) > max_family_sessions:
                sessions.popitem(last=False)
        payload = result.as_dict()
        payload["worker_pid"] = os.getpid()
        payload["warm"] = int(session is not None)
        return payload
    except BaseException:
        return {
            "status": ERROR,
            "runtime": time.monotonic() - started,
            "stats": {"worker_error": 1.0},
            "error": traceback.format_exc(),
        }


def _worker_main(
    conn, options_kwargs: Dict[str, object], max_family_sessions: int,
    fault_plan=None, fault_offsets: Optional[Dict[str, int]] = None,
) -> None:
    """Request loop of one warm worker process.

    ``fault_offsets`` pre-advances the fault plan's per-site counters
    to where the slot's previous incarnation left off, so a respawned
    worker continues the chaos schedule instead of replaying it.
    """
    # Workers respawned mid-serving fork the server process, inheriting
    # dups of every live client connection — which would then hold
    # those connections open (no FIN) after the server closes them.
    # Drop everything socket-shaped except our own command pipe.
    close_foreign_sockets(keep=(conn.fileno(),))
    if fault_plan is not None:
        faults.install(fault_plan)
    plan = faults.active()
    if plan is not None:
        for site, count in (fault_offsets or {}).items():
            plan.advance(site, count)
    sessions: "OrderedDict[str, object]" = OrderedDict()
    solves = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message.get("op")
        if op == "shutdown":
            _safe_send(conn, {"ok": True, "solves": solves})
            break
        if op == "ping":
            _safe_send(
                conn,
                {"ok": True, "pid": os.getpid(), "families": list(sessions)},
            )
        elif op == "stall":  # test hook: a solver stuck in native code
            time.sleep(float(message.get("seconds", 0.0)))
            _safe_send(conn, {"ok": True})
        elif op == "solve":
            payload = _solve_message(
                message, sessions, options_kwargs, max_family_sessions
            )
            solves += 1
            _safe_send(conn, payload)
        else:
            _safe_send(conn, {"ok": False, "error": f"unknown worker op {op!r}"})
    conn.close()


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------

class WarmWorker:
    """One long-lived worker slot: the live process plus respawn policy.

    The *slot* outlives any single worker process.  Respawns after
    rapid deaths (a worker that died within :data:`RAPID_DEATH_WINDOW`
    of spawning) sleep an exponentially growing backoff first, so a
    worker that is poisoned — crashing on arrival every time — costs a
    bounded fork rate instead of a spin loop.  The slot also carries
    the cumulative count of solve requests it dispatched, handed to
    each new process as a fault-site offset: "the Nth solve at this
    slot" stays well defined across incarnations, which is what keeps
    seeded chaos schedules meaningful when workers die mid-plan.
    """

    def __init__(self, ctx, options_kwargs: Dict[str, object],
                 max_family_sessions: int,
                 fault_plan=None,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0):
        self._ctx = ctx
        self._options_kwargs = options_kwargs
        self._max_family_sessions = max_family_sessions
        self._fault_plan = fault_plan
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.solves = 0
        self.recycles = 0
        self.rapid_deaths = 0
        self.backoff_slept = 0.0
        self.solve_requests = 0
        self._spawned_at = 0.0
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        self.conn = parent
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child, self._options_kwargs, self._max_family_sessions,
                  self._fault_plan, {"pool.solve": self.solve_requests}),
            daemon=True,
        )
        self.process.start()
        child.close()
        self._spawned_at = time.monotonic()

    def request(
        self, message: Dict[str, object], hard_deadline: Optional[float]
    ) -> Optional[Dict[str, object]]:
        """Send one request, block for the reply.

        ``None`` means the hard deadline passed (caller must
        :meth:`recycle`); a dead worker surfaces as :class:`EOFError`.
        """
        if message.get("op") == "solve":
            self.solve_requests += 1
        self.conn.send(message)
        while True:
            if hard_deadline is None:
                timeout = 1.0
            else:
                timeout = max(0.0, hard_deadline - time.monotonic())
            if self.conn.poll(timeout):
                return self.conn.recv()  # EOFError when the worker died
            if not self.process.is_alive():
                raise EOFError("worker died without replying")
            if hard_deadline is not None and time.monotonic() >= hard_deadline:
                return None

    def backoff_delay(self) -> float:
        """The respawn delay owed right now (0.0 after a healthy run)."""
        if time.monotonic() - self._spawned_at >= RAPID_DEATH_WINDOW:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** self.rapid_deaths))

    def recycle(self) -> None:
        """Kill (if needed) and respawn — warm state is lost, slot survives."""
        if self.process.is_alive():
            self.process.terminate()
        reap(self.process, self.conn)
        self.recycles += 1
        delay = self.backoff_delay()
        if delay > 0.0:
            self.rapid_deaths += 1
            self.backoff_slept += delay
            time.sleep(delay)
        else:
            self.rapid_deaths = 0
        self._spawn()

    def close(self, kill: bool = False) -> None:
        if kill and self.process.is_alive():
            self.process.terminate()
        reap(self.process, self.conn)


class WorkerPool:
    """A fixed-size pool of :class:`WarmWorker` processes.

    Fork the pool *before* starting threads or event loops (the workers
    inherit a clean single-threaded image); it is then safe to call
    :meth:`solve` from many threads concurrently.
    """

    def __init__(
        self,
        size: int = 2,
        options_kwargs: Optional[Dict[str, object]] = None,
        grace: Optional[float] = None,
        max_family_sessions: int = MAX_FAMILY_SESSIONS,
        fault_plan=None,
        heartbeat_interval: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.grace = grace
        self._ctx = mp_context()
        self._options_kwargs = dict(
            DEFAULT_SOLVER_OPTIONS if options_kwargs is None else options_kwargs
        )
        self.fault_plan = fault_plan
        self._workers: List[WarmWorker] = [
            WarmWorker(self._ctx, self._options_kwargs, max_family_sessions,
                       fault_plan=fault_plan,
                       backoff_base=backoff_base, backoff_cap=backoff_cap)
            for _ in range(size)
        ]
        self._locks = [threading.Lock() for _ in range(size)]
        self._rr_lock = threading.Lock()
        self._rr = 0
        self._closed = False
        self.hard_kills = 0
        self.worker_deaths = 0
        self.completed = 0
        # per-family circuit breaker: family -> [consecutive_failures,
        # open_until_monotonic]
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breaker: Dict[str, List[float]] = {}
        self._breaker_lock = threading.Lock()
        self.breaker_opens = 0
        self.breaker_rejections = 0
        # heartbeat supervision of idle workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats = 0
        self.heartbeat_failures = 0
        self.supervised_restarts = 0
        self._stop_supervisor = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        if heartbeat_interval is not None:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="hqs-pool-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # ------------------------------------------------------------------
    # supervision: heartbeats + proactive respawn
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        """Ping idle workers; respawn dead or unresponsive ones.

        Runs in a daemon thread.  Busy workers (slot lock held by a
        request) are skipped — their requester is already watching the
        hard deadline; an idle slot whose process died (or stopped
        answering pings) is recycled *now*, before a request pays the
        latency of discovering the corpse.
        """
        interval = self.heartbeat_interval or 1.0
        while not self._stop_supervisor.wait(interval):
            for index, worker in enumerate(self._workers):
                if self._closed:
                    return
                if not self._locks[index].acquire(blocking=False):
                    continue  # busy: the request path supervises it
                try:
                    if self._closed:
                        return
                    if not worker.process.is_alive():
                        self.supervised_restarts += 1
                        worker.recycle()
                        continue
                    self.heartbeats += 1
                    try:
                        reply = worker.request(
                            {"op": "ping"},
                            time.monotonic() + max(2.0 * interval, 1.0),
                        )
                    except (EOFError, OSError):
                        reply = None
                    if reply is None:  # wedged or died mid-ping
                        self.heartbeat_failures += 1
                        self.supervised_restarts += 1
                        worker.recycle()
                finally:
                    self._locks[index].release()

    # ------------------------------------------------------------------
    # per-family circuit breaker
    # ------------------------------------------------------------------
    def _breaker_check(self, family: Optional[str]) -> Optional[Dict[str, object]]:
        """Fail fast when ``family``'s breaker is open (else ``None``).

        After the cooldown the breaker goes half-open: the first
        request through is the probe (its outcome re-opens or closes
        the circuit); concurrent requests keep failing fast until the
        probe verdict lands.
        """
        if not family:
            return None
        with self._breaker_lock:
            state = self._breaker.get(family)
            if state is None or state[0] < self.breaker_threshold:
                return None
            now = time.monotonic()
            if now >= state[1]:
                # half-open: let this request probe, hold the rest back
                state[1] = now + self.breaker_cooldown
                return None
            self.breaker_rejections += 1
        return {
            "status": ERROR,
            "runtime": 0.0,
            "stats": {"circuit_open": 1.0},
            "error": (
                f"circuit breaker open for family {family!r}: "
                f"{int(state[0])} consecutive worker failures; "
                f"retry after cooldown"
            ),
        }

    def _breaker_record(self, family: Optional[str], failed: bool) -> None:
        if not family:
            return
        with self._breaker_lock:
            if not failed:
                self._breaker.pop(family, None)
                return
            state = self._breaker.setdefault(family, [0.0, 0.0])
            state[0] += 1
            if state[0] >= self.breaker_threshold:
                if state[0] == self.breaker_threshold:
                    self.breaker_opens += 1
                state[1] = time.monotonic() + self.breaker_cooldown

    def breaker_state(self) -> Dict[str, Dict[str, float]]:
        """Open/half-open families and their failure counts (stats op)."""
        now = time.monotonic()
        with self._breaker_lock:
            return {
                family: {
                    "consecutive_failures": state[0],
                    "open": float(state[0] >= self.breaker_threshold),
                    "cooldown_remaining": max(0.0, state[1] - now),
                }
                for family, state in self._breaker.items()
                if state[0] > 0
            }

    # ------------------------------------------------------------------
    def route(self, family: Optional[str]) -> int:
        """Worker index for ``family`` (affinity) or round-robin."""
        if family:
            return zlib.crc32(family.encode("utf-8")) % self.size
        with self._rr_lock:
            self._rr = (self._rr + 1) % self.size
            return self._rr

    def solve(
        self,
        formula: str,
        family: Optional[str] = None,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, object]:
        """Solve DQDIMACS text on the family's warm worker (blocking)."""
        message: Dict[str, object] = {
            "op": "solve",
            "formula": formula,
            "family": family,
            "time_limit": time_limit,
            "node_limit": node_limit,
            "checkpoint": checkpoint,
        }
        rejected = self._breaker_check(family)
        if rejected is not None:
            return rejected
        grace = default_grace(time_limit) if self.grace is None else self.grace
        deadline = (
            None if time_limit is None
            else time.monotonic() + time_limit + grace
        )
        payload = self._request(self.route(family), message, deadline)
        # Only worker-level failures feed the breaker: a death or a
        # hard kill says "this family keeps destroying workers"; a bad
        # formula or a budget UNKNOWN leaves the worker healthy.
        stats = payload.get("stats") or {}
        self._breaker_record(
            family,
            bool(stats.get("worker_died") or stats.get("hard_timeout")),
        )
        return payload

    def _request(
        self, index: int, message: Dict[str, object],
        hard_deadline: Optional[float],
    ) -> Dict[str, object]:
        if self._closed:
            return {
                "status": ERROR,
                "runtime": 0.0,
                "stats": {"worker_error": 1.0},
                "error": "worker pool is shut down",
            }
        worker = self._workers[index]
        started = time.monotonic()
        with self._locks[index]:
            if self._closed:
                return {
                    "status": ERROR,
                    "runtime": 0.0,
                    "stats": {"worker_error": 1.0},
                    "error": "worker pool is shut down",
                }
            try:
                payload = worker.request(message, hard_deadline)
            except (EOFError, OSError):
                self.worker_deaths += 1
                worker.recycle()
                return {
                    "status": ERROR,
                    "runtime": time.monotonic() - started,
                    "stats": {"worker_error": 1.0, "worker_died": 1.0},
                    "error": "worker died mid-request; recycled",
                }
            if payload is None:
                self.hard_kills += 1
                worker.recycle()
                return {
                    "status": TIMEOUT,
                    "runtime": time.monotonic() - started,
                    "stats": {"hard_timeout": 1.0},
                }
            worker.solves += 1
            self.completed += 1
            return payload

    def ping(self) -> List[Dict[str, object]]:
        """Liveness probe of every worker (serialized per worker)."""
        replies = []
        for index in range(self.size):
            replies.append(self._request(index, {"op": "ping"},
                                         time.monotonic() + 10.0))
        return replies

    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.size,
            "alive": sum(1 for w in self._workers if w.process.is_alive()),
            "completed": self.completed,
            "hard_kills": self.hard_kills,
            "worker_deaths": self.worker_deaths,
            "recycles": sum(w.recycles for w in self._workers),
            "worker_solves": [w.solves for w in self._workers],
            "heartbeats": self.heartbeats,
            "heartbeat_failures": self.heartbeat_failures,
            "supervised_restarts": self.supervised_restarts,
            "backoff_slept_s": sum(w.backoff_slept for w in self._workers),
            "breaker_opens": self.breaker_opens,
            "breaker_rejections": self.breaker_rejections,
            "breaker": self.breaker_state(),
        }

    # ------------------------------------------------------------------
    def shutdown(self, drain_timeout: float = 10.0) -> Dict[str, int]:
        """Stop the pool, draining in-flight solves where possible.

        Workers idle (or finishing within the drain budget) exit
        cleanly; workers still busy past it are killed — their
        in-progress solves survive as on-disk checkpoints, so nothing
        is lost beyond the wall-clock already spent past the last
        eliminated universal.
        """
        self._closed = True
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        deadline = time.monotonic() + max(0.0, drain_timeout)
        drained = 0
        killed = 0
        for index, worker in enumerate(self._workers):
            remaining = max(0.0, deadline - time.monotonic())
            if self._locks[index].acquire(timeout=remaining):
                try:
                    try:
                        worker.conn.send({"op": "shutdown"})
                        worker.conn.poll(5.0)
                    except (BrokenPipeError, OSError):
                        pass
                    worker.close()
                    drained += 1
                finally:
                    self._locks[index].release()
            else:
                worker.close(kill=True)
                killed += 1
        return {"drained": drained, "killed": killed}

    def kill(self) -> None:
        """Immediate teardown (tests, error paths); no draining."""
        self._closed = True
        self._stop_supervisor.set()
        for worker in self._workers:
            worker.close(kill=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        if not self._closed:
            self.kill()
