"""Solver-as-a-service: the persistent, cache-fronted serving layer.

The batch pipeline (``hqs`` CLI, :func:`repro.core.solve_dqbf`) pays the
full quantifier-elimination cost on every invocation.  Real PEC
workloads are dominated by repeated and near-duplicate queries over the
same circuit families, so this package keeps the expensive state alive
between requests:

:mod:`repro.service.protocol`
    the newline-delimited JSON request/response format shared by the
    TCP server, the HTTP front end and the client library;
:mod:`repro.service.cache`
    the fingerprint-keyed result cache (in-memory LRU plus an optional
    on-disk tier that also holds :class:`~repro.core.SolverCheckpoint`
    snapshots, so partially solved formulas resume instead of
    restarting);
:mod:`repro.service.pool`
    the warm worker pool — long-lived solver processes that keep one
    :class:`~repro.sat.incremental.AigSatSession` per circuit family,
    so learned clauses survive across requests;
:mod:`repro.service.server`
    the asyncio front door (``hqs-serve``) with in-flight request
    deduplication and graceful, checkpoint-draining shutdown;
:mod:`repro.service.client`
    the blocking client library (``hqs-client``).

Quickstart::

    pool = WorkerPool(size=2)            # fork workers before threads
    cache = ResultCache(capacity=1024, disk_dir="cache/")
    server = ServiceServer(ServiceConfig(port=0), pool, cache)
    server.run()                         # serves until SIGTERM/SIGINT

    client = ServiceClient(port=server.port)
    client.solve(formula)                # {'status': 'SAT', ...}
"""

from .cache import CacheStats, ResultCache
from .client import (
    ServiceBusyError,
    ServiceClient,
    ServiceError,
    ServiceProtocolError,
    wait_for_server,
)
from .pool import WorkerPool
from .protocol import DEFAULT_PORT, ProtocolError, decode_message, encode_message
from .server import ServiceConfig, ServiceServer, SolverService

__all__ = [
    "CacheStats",
    "ResultCache",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceError",
    "ServiceProtocolError",
    "wait_for_server",
    "WorkerPool",
    "DEFAULT_PORT",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "ServiceConfig",
    "ServiceServer",
    "SolverService",
]
