"""DIMACS-style literal helpers.

Throughout the library a *variable* is a positive integer and a *literal*
is a non-zero integer whose sign encodes polarity, exactly as in the
DIMACS/QDIMACS/DQDIMACS file formats.  These helpers keep the intent of
arithmetic on literals readable at call sites.
"""

from __future__ import annotations

from typing import Iterable


def var_of(lit: int) -> int:
    """Return the variable underlying ``lit``."""
    return lit if lit > 0 else -lit


def is_positive(lit: int) -> bool:
    """Return ``True`` iff ``lit`` has positive polarity."""
    return lit > 0


def negate(lit: int) -> int:
    """Return the complementary literal."""
    return -lit


def lit_of(var: int, value: bool) -> int:
    """Return the literal asserting that ``var`` takes ``value``."""
    if var <= 0:
        raise ValueError(f"variables must be positive integers, got {var}")
    return var if value else -var


def evaluate(lit: int, assignment: dict) -> bool:
    """Evaluate ``lit`` under a ``{var: bool}`` assignment.

    Raises ``KeyError`` if the underlying variable is unassigned.
    """
    value = assignment[var_of(lit)]
    return value if lit > 0 else not value


def variables_of(lits: Iterable[int]) -> set:
    """Return the set of variables underlying an iterable of literals."""
    return {var_of(lit) for lit in lits}
