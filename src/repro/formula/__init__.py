"""Formula containers: CNF, DQBF, QBF, quantifier prefixes and DQDIMACS I/O."""

from .cnf import Cnf, cnf_from_clauses, normalize_clause
from .dqbf import Dqbf, expand_to_propositional, expansion_solve, skolem_enumeration_solve
from .dqdimacs import (
    DqdimacsError,
    load_dqdimacs,
    parse_dqdimacs,
    save_dqdimacs,
    write_dqdimacs,
)
from .lits import lit_of, negate, var_of
from .prefix import EXISTS, FORALL, BlockedPrefix, DependencyPrefix
from .qbf import Qbf, brute_force_qbf
from .qdimacs import (
    QdimacsError,
    load_qdimacs,
    parse_qdimacs,
    save_qdimacs,
    write_qdimacs,
)

__all__ = [
    "Cnf",
    "cnf_from_clauses",
    "normalize_clause",
    "Dqbf",
    "expand_to_propositional",
    "expansion_solve",
    "skolem_enumeration_solve",
    "DqdimacsError",
    "load_dqdimacs",
    "parse_dqdimacs",
    "save_dqdimacs",
    "write_dqdimacs",
    "lit_of",
    "negate",
    "var_of",
    "EXISTS",
    "FORALL",
    "BlockedPrefix",
    "DependencyPrefix",
    "Qbf",
    "brute_force_qbf",
    "QdimacsError",
    "load_qdimacs",
    "parse_qdimacs",
    "save_qdimacs",
    "write_qdimacs",
]
