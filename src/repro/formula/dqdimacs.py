"""Reader/writer for the DQDIMACS format used by iDQ and HQS.

DQDIMACS extends QDIMACS with ``d`` lines that state an existential
variable together with its explicit dependency set::

    p cnf 4 3
    a 1 2 0
    d 3 1 0
    d 4 2 0
    -3 1 0
    ...

``a``/``e`` lines behave as in QDIMACS: an ``e`` variable depends on all
universal variables declared before it.  Clause lines are standard
DIMACS.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from .cnf import Cnf
from .dqbf import Dqbf
from .prefix import DependencyPrefix


class DqdimacsError(ValueError):
    """Raised on malformed DQDIMACS input."""


def parse_dqdimacs(source: Union[str, TextIO]) -> Dqbf:
    """Parse DQDIMACS text (or a file-like object) into a :class:`Dqbf`."""
    if isinstance(source, str):
        source = io.StringIO(source)

    prefix = DependencyPrefix()
    clauses: List[List[int]] = []
    declared_vars = 0
    declared_clauses = -1
    universal_so_far: List[int] = []
    saw_problem_line = False

    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tokens = line.split()
        if tokens[0] == "p":
            if saw_problem_line:
                raise DqdimacsError(f"line {line_number}: duplicate problem line")
            if len(tokens) != 4 or tokens[1] != "cnf":
                raise DqdimacsError(f"line {line_number}: malformed problem line {line!r}")
            declared_vars = int(tokens[2])
            declared_clauses = int(tokens[3])
            saw_problem_line = True
            continue
        if not saw_problem_line:
            raise DqdimacsError(f"line {line_number}: clause/prefix before problem line")
        if tokens[0] in ("a", "e", "d"):
            numbers = _parse_terminated(tokens[1:], line_number)
            if tokens[0] == "a":
                for var in numbers:
                    _check_var(var, declared_vars, line_number)
                    prefix.add_universal(var)
                    universal_so_far.append(var)
            elif tokens[0] == "e":
                for var in numbers:
                    _check_var(var, declared_vars, line_number)
                    prefix.add_existential(var, universal_so_far)
            else:  # d-line: first number is the variable, rest the dependency set
                if not numbers:
                    raise DqdimacsError(f"line {line_number}: empty d line")
                var, deps = numbers[0], numbers[1:]
                _check_var(var, declared_vars, line_number)
                for dep in deps:
                    _check_var(dep, declared_vars, line_number)
                try:
                    prefix.add_existential(var, deps)
                except ValueError as exc:
                    raise DqdimacsError(f"line {line_number}: {exc}") from exc
            continue
        # clause line
        literals = _parse_terminated(tokens, line_number, allow_negative=True)
        for lit in literals:
            _check_var(abs(lit), declared_vars, line_number)
        clauses.append(literals)

    if declared_clauses >= 0 and len(clauses) != declared_clauses:
        # Tolerate the mismatch (many generators are sloppy) but only
        # when fewer clauses were promised than delivered is it an error.
        if len(clauses) > declared_clauses:
            raise DqdimacsError(
                f"{len(clauses)} clauses found but header declares {declared_clauses}"
            )

    matrix = Cnf(clauses, num_vars=declared_vars)
    return Dqbf(prefix, matrix)


def _parse_terminated(
    tokens: List[str], line_number: int, allow_negative: bool = False
) -> List[int]:
    try:
        numbers = [int(t) for t in tokens]
    except ValueError as exc:
        raise DqdimacsError(f"line {line_number}: non-integer token") from exc
    if not numbers or numbers[-1] != 0:
        raise DqdimacsError(f"line {line_number}: missing terminating 0")
    numbers = numbers[:-1]
    if any(n == 0 for n in numbers):
        raise DqdimacsError(f"line {line_number}: stray 0 inside line")
    if not allow_negative and any(n < 0 for n in numbers):
        raise DqdimacsError(f"line {line_number}: negative variable in prefix")
    return numbers


def _check_var(var: int, declared: int, line_number: int) -> None:
    if var < 1:
        raise DqdimacsError(f"line {line_number}: invalid variable {var}")
    if declared and var > declared:
        raise DqdimacsError(
            f"line {line_number}: variable {var} exceeds declared maximum {declared}"
        )


def write_dqdimacs(formula: Dqbf) -> str:
    """Serialize a :class:`Dqbf` to DQDIMACS text.

    All existential variables are written with explicit ``d`` lines so
    the output is format-faithful regardless of the dependency structure.
    """
    prefix = formula.prefix
    matrix = formula.matrix
    num_vars = max([matrix.num_vars] + prefix.all_variables() + [0])
    lines = [f"p cnf {num_vars} {len(matrix)}"]
    if prefix.universals:
        lines.append("a " + " ".join(str(v) for v in prefix.universals) + " 0")
    for y in prefix.existentials:
        deps = " ".join(str(x) for x in sorted(prefix.dependencies(y)))
        lines.append(f"d {y}{(' ' + deps) if deps else ''} 0")
    for clause in matrix:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def load_dqdimacs(path: str) -> Dqbf:
    """Parse a DQDIMACS file from disk."""
    with open(path, "r", encoding="ascii") as handle:
        return parse_dqdimacs(handle)


def save_dqdimacs(formula: Dqbf, path: str) -> None:
    """Write a DQDIMACS file to disk."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_dqdimacs(formula))
