"""Random DQBF generation with controllable structure.

Random formulas drive the property-based test suite and are useful for
fuzzing external solvers against this implementation.  The generator
controls the parameters that matter for DQBF difficulty:

* the number of universal and existential variables,
* the *dependency density* (probability that an existential sees a
  given universal) — low densities produce many incomparable pairs,
  i.e. deeply Henkin prefixes; density 1.0 degenerates to QBF;
* clause count and width, as in fixed-width random CNF.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .cnf import Cnf
from .dqbf import Dqbf
from .prefix import DependencyPrefix


class RandomDqbfConfig:
    """Knobs for :func:`random_dqbf`."""

    def __init__(
        self,
        num_universals: int = 3,
        num_existentials: int = 3,
        dependency_density: float = 0.5,
        num_clauses: int = 12,
        clause_width: int = 3,
        allow_empty_dependencies: bool = True,
    ):
        if num_universals < 0 or num_existentials < 0:
            raise ValueError("variable counts must be non-negative")
        if not 0.0 <= dependency_density <= 1.0:
            raise ValueError("dependency density must be in [0, 1]")
        if clause_width < 1:
            raise ValueError("clause width must be positive")
        self.num_universals = num_universals
        self.num_existentials = num_existentials
        self.dependency_density = dependency_density
        self.num_clauses = num_clauses
        self.clause_width = clause_width
        self.allow_empty_dependencies = allow_empty_dependencies


def random_dqbf(rng: random.Random, config: Optional[RandomDqbfConfig] = None) -> Dqbf:
    """Generate a closed random DQBF."""
    config = config or RandomDqbfConfig()
    universals = list(range(1, config.num_universals + 1))
    prefix = DependencyPrefix()
    for x in universals:
        prefix.add_universal(x)

    for i in range(config.num_existentials):
        y = config.num_universals + 1 + i
        deps = [x for x in universals if rng.random() < config.dependency_density]
        if not deps and not config.allow_empty_dependencies and universals:
            deps = [rng.choice(universals)]
        prefix.add_existential(y, deps)

    num_vars = config.num_universals + config.num_existentials
    matrix = Cnf(num_vars=num_vars)
    for _ in range(config.num_clauses):
        width = rng.randint(1, config.clause_width)
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(width)
        ]
        matrix.add_clause(clause)
    return Dqbf(prefix, matrix)


def random_qbf_shaped_dqbf(
    rng: random.Random, config: Optional[RandomDqbfConfig] = None
) -> Dqbf:
    """Generate a random DQBF whose dependency sets form a chain.

    The result always admits an equivalent QBF prefix (Theorem 3) —
    useful for testing the linearization path in isolation.
    """
    config = config or RandomDqbfConfig()
    universals = list(range(1, config.num_universals + 1))
    prefix = DependencyPrefix()
    for x in universals:
        prefix.add_universal(x)
    sizes = sorted(
        rng.randint(0, config.num_universals)
        for _ in range(config.num_existentials)
    )
    for i, size in enumerate(sizes):
        y = config.num_universals + 1 + i
        prefix.add_existential(y, universals[:size])

    num_vars = config.num_universals + config.num_existentials
    matrix = Cnf(num_vars=num_vars)
    for _ in range(config.num_clauses):
        width = rng.randint(1, config.clause_width)
        matrix.add_clause(
            rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(width)
        )
    return Dqbf(prefix, matrix)


def henkin_fraction(samples: List[Dqbf]) -> float:
    """Fraction of formulas with genuinely non-linear dependencies."""
    if not samples:
        return 0.0
    return sum(0 if f.is_qbf() else 1 for f in samples) / len(samples)
