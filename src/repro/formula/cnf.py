"""A small clause database used as the front-end matrix representation.

The DQBF/QBF containers keep their matrix in CNF until preprocessing
finishes; afterwards the solvers switch to an AIG representation
(:mod:`repro.aig`).  The class deliberately stays close to the DIMACS
view of the world: clauses are tuples of integer literals.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .lits import var_of


def normalize_clause(lits: Iterable[int]) -> Optional[Tuple[int, ...]]:
    """Sort and deduplicate a clause; return ``None`` if it is a tautology.

    The result is a tuple sorted by variable then polarity, which makes
    clause-set comparisons deterministic.
    """
    seen: Set[int] = set()
    for lit in lits:
        if lit == 0:
            raise ValueError("0 is not a literal")
        if -lit in seen:
            return None
        seen.add(lit)
    return tuple(sorted(seen, key=lambda l: (var_of(l), l < 0)))


class Cnf:
    """A set of clauses over integer variables.

    The database deduplicates clauses and drops tautologies on insertion.
    ``num_vars`` tracks the largest variable mentioned (or declared).
    """

    def __init__(self, clauses: Iterable[Iterable[int]] = (), num_vars: int = 0):
        self._clauses: List[Tuple[int, ...]] = []
        self._clause_set: Set[Tuple[int, ...]] = set()
        self.num_vars = num_vars
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_clause(self, lits: Iterable[int]) -> bool:
        """Insert a clause; returns ``True`` if it was new and non-trivial."""
        clause = normalize_clause(lits)
        if clause is None or clause in self._clause_set:
            return False
        self._clauses.append(clause)
        self._clause_set.add(clause)
        for lit in clause:
            v = var_of(lit)
            if v > self.num_vars:
                self.num_vars = v
        return True

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def fresh_var(self) -> int:
        """Allocate and return a variable not used so far."""
        self.num_vars += 1
        return self.num_vars

    def copy(self) -> "Cnf":
        other = Cnf(num_vars=self.num_vars)
        other._clauses = list(self._clauses)
        other._clause_set = set(self._clause_set)
        return other

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> List[Tuple[int, ...]]:
        return self._clauses

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __contains__(self, clause: Iterable[int]) -> bool:
        normalized = normalize_clause(clause)
        return normalized in self._clause_set if normalized else False

    def variables(self) -> Set[int]:
        """Return the set of variables occurring in some clause."""
        result: Set[int] = set()
        for clause in self._clauses:
            for lit in clause:
                result.add(var_of(lit))
        return result

    def has_empty_clause(self) -> bool:
        return () in self._clause_set

    def literal_occurrences(self) -> Dict[int, int]:
        """Count occurrences of every literal."""
        counts: Dict[int, int] = {}
        for clause in self._clauses:
            for lit in clause:
                counts[lit] = counts.get(lit, 0) + 1
        return counts

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate the CNF under a complete assignment of its variables."""
        for clause in self._clauses:
            satisfied = False
            for lit in clause:
                value = assignment[var_of(lit)]
                if (lit > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def assign(self, var: int, value: bool) -> "Cnf":
        """Return the CNF with ``var`` fixed to ``value`` (clauses simplified)."""
        true_lit = var if value else -var
        result = Cnf(num_vars=self.num_vars)
        for clause in self._clauses:
            if true_lit in clause:
                continue
            result.add_clause(lit for lit in clause if lit != -true_lit)
        return result

    def rename(self, mapping: Dict[int, int]) -> "Cnf":
        """Return the CNF with variables renamed by ``mapping`` (var -> var)."""
        result = Cnf(num_vars=self.num_vars)
        for clause in self._clauses:
            result.add_clause(
                (mapping.get(var_of(lit), var_of(lit)) * (1 if lit > 0 else -1))
                for lit in clause
            )
        return result

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"Cnf(num_vars={self.num_vars}, clauses={len(self._clauses)})"


def cnf_from_clauses(clauses: Sequence[Sequence[int]]) -> Cnf:
    """Convenience constructor used in tests and examples."""
    return Cnf(clauses)
