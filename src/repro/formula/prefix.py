"""Quantifier prefixes for DQBF and QBF.

A DQBF prefix (Definition 1 of the paper) consists of a set of universal
variables and, for every existential variable, an explicit *dependency
set*: the subset of universal variables its Skolem function may read.

A QBF prefix (Definition 3) is a linearly ordered sequence of quantifier
blocks.  Every QBF prefix embeds into a DQBF prefix by giving each
existential variable the union of all universal blocks to its left.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

EXISTS = "e"
FORALL = "a"


class DependencyPrefix:
    """A DQBF quantifier prefix: universals plus per-existential dependency sets."""

    def __init__(self) -> None:
        self._universals: List[int] = []
        self._universal_set: Set[int] = set()
        self._deps: Dict[int, FrozenSet[int]] = {}
        self._exist_order: List[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_universal(self, var: int) -> None:
        if var in self._universal_set or var in self._deps:
            raise ValueError(f"variable {var} already quantified")
        self._universals.append(var)
        self._universal_set.add(var)

    def add_existential(self, var: int, deps: Iterable[int]) -> None:
        if var in self._universal_set or var in self._deps:
            raise ValueError(f"variable {var} already quantified")
        dep_set = frozenset(deps)
        unknown = dep_set - self._universal_set
        if unknown:
            raise ValueError(
                f"dependency set of {var} mentions non-universal variables {sorted(unknown)}"
            )
        self._deps[var] = dep_set
        self._exist_order.append(var)

    def copy(self) -> "DependencyPrefix":
        other = DependencyPrefix()
        other._universals = list(self._universals)
        other._universal_set = set(self._universal_set)
        other._deps = dict(self._deps)
        other._exist_order = list(self._exist_order)
        return other

    # ------------------------------------------------------------------
    # mutation used by elimination rules
    # ------------------------------------------------------------------
    def remove_universal(self, var: int) -> None:
        """Drop a universal variable and remove it from every dependency set."""
        if var not in self._universal_set:
            raise KeyError(var)
        self._universals.remove(var)
        self._universal_set.remove(var)
        for y, deps in list(self._deps.items()):
            if var in deps:
                self._deps[y] = deps - {var}

    def remove_existential(self, var: int) -> None:
        if var not in self._deps:
            raise KeyError(var)
        del self._deps[var]
        self._exist_order.remove(var)

    def remove_variable(self, var: int) -> None:
        """Drop ``var`` whichever kind of quantifier it carries."""
        if var in self._universal_set:
            self.remove_universal(var)
        else:
            self.remove_existential(var)

    def restrict_to(self, support: Set[int]) -> List[int]:
        """Drop all quantified variables outside ``support``.

        Variables that no longer occur in the matrix can always be removed
        from the prefix (last paragraph of Section III-C).  Returns the
        list of removed variables.
        """
        removed = [v for v in self._universals if v not in support]
        removed += [v for v in self._exist_order if v not in support]
        for var in removed:
            self.remove_variable(var)
        return removed

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def universals(self) -> List[int]:
        """Universal variables in declaration order."""
        return list(self._universals)

    @property
    def existentials(self) -> List[int]:
        """Existential variables in declaration order."""
        return list(self._exist_order)

    def is_universal(self, var: int) -> bool:
        return var in self._universal_set

    def is_existential(self, var: int) -> bool:
        return var in self._deps

    def quantifies(self, var: int) -> bool:
        return var in self._universal_set or var in self._deps

    def dependencies(self, var: int) -> FrozenSet[int]:
        """Dependency set ``D_y`` of an existential variable."""
        return self._deps[var]

    def set_dependencies(self, var: int, deps: Iterable[int]) -> None:
        if var not in self._deps:
            raise KeyError(var)
        dep_set = frozenset(deps)
        unknown = dep_set - self._universal_set
        if unknown:
            raise ValueError(
                f"dependency set of {var} mentions non-universal variables {sorted(unknown)}"
            )
        self._deps[var] = dep_set

    def dependents_of(self, universal: int) -> List[int]:
        """``E_x``: the existential variables whose dependency set contains ``universal``."""
        return [y for y in self._exist_order if universal in self._deps[y]]

    def all_variables(self) -> List[int]:
        return self._universals + self._exist_order

    def __len__(self) -> int:
        return len(self._universals) + len(self._exist_order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyPrefix):
            return NotImplemented
        return (
            set(self._universals) == set(other._universals)
            and self._deps == other._deps
        )

    def __repr__(self) -> str:
        parts = [f"A{v}" for v in self._universals]
        parts += [
            f"E{v}({','.join(map(str, sorted(self._deps[v])))})"
            for v in self._exist_order
        ]
        return " ".join(parts) if parts else "<empty prefix>"

    # ------------------------------------------------------------------
    # QBF embedding
    # ------------------------------------------------------------------
    def is_qbf_shaped(self) -> bool:
        """True iff the dependency sets are totally ordered by inclusion.

        By Theorem 4 of the paper this is exactly the condition for the
        dependency graph to be acyclic, i.e. for an equivalent QBF prefix
        to exist.
        """
        deps = [self._deps[y] for y in self._exist_order]
        for i, d1 in enumerate(deps):
            for d2 in deps[i + 1 :]:
                if not (d1 <= d2 or d2 <= d1):
                    return False
        return True


class BlockedPrefix:
    """A QBF prefix: alternating blocks of variables.

    Blocks are ``(quantifier, [vars])`` pairs with quantifier ``'a'`` or
    ``'e'``.  Adjacent same-quantifier blocks are merged on insertion.
    """

    def __init__(self, blocks: Iterable[Tuple[str, Sequence[int]]] = ()):
        self._blocks: List[Tuple[str, List[int]]] = []
        for quantifier, variables in blocks:
            self.add_block(quantifier, variables)

    def add_block(self, quantifier: str, variables: Sequence[int]) -> None:
        if quantifier not in (EXISTS, FORALL):
            raise ValueError(f"unknown quantifier {quantifier!r}")
        variables = [v for v in variables]
        if not variables:
            return
        if self._blocks and self._blocks[-1][0] == quantifier:
            self._blocks[-1][1].extend(variables)
        else:
            self._blocks.append((quantifier, variables))

    @property
    def blocks(self) -> List[Tuple[str, List[int]]]:
        return [(q, list(vs)) for q, vs in self._blocks]

    def variables(self) -> List[int]:
        return [v for _, vs in self._blocks for v in vs]

    def quantifier_of(self, var: int) -> Optional[str]:
        for quantifier, variables in self._blocks:
            if var in variables:
                return quantifier
        return None

    def innermost_block(self) -> Optional[Tuple[str, List[int]]]:
        if not self._blocks:
            return None
        quantifier, variables = self._blocks[-1]
        return quantifier, list(variables)

    def drop_innermost_block(self) -> None:
        self._blocks.pop()

    def remove_variable(self, var: int) -> None:
        for index, (_quantifier, variables) in enumerate(self._blocks):
            if var in variables:
                variables.remove(var)
                if not variables:
                    del self._blocks[index]
                    self._merge_adjacent()
                return
        raise KeyError(var)

    def _merge_adjacent(self) -> None:
        merged: List[Tuple[str, List[int]]] = []
        for quantifier, variables in self._blocks:
            if merged and merged[-1][0] == quantifier:
                merged[-1][1].extend(variables)
            else:
                merged.append((quantifier, list(variables)))
        self._blocks = merged

    def to_dependency_prefix(self) -> DependencyPrefix:
        """Embed into a DQBF prefix (the construction below Definition 3)."""
        prefix = DependencyPrefix()
        universal_so_far: List[int] = []
        for quantifier, variables in self._blocks:
            if quantifier == FORALL:
                for var in variables:
                    prefix.add_universal(var)
                    universal_so_far.append(var)
            else:
                for var in variables:
                    prefix.add_existential(var, universal_so_far)
        return prefix

    def __len__(self) -> int:
        return sum(len(vs) for _, vs in self._blocks)

    def __repr__(self) -> str:
        return " ".join(
            f"{'∀' if q == FORALL else '∃'}{{{','.join(map(str, vs))}}}"
            for q, vs in self._blocks
        ) or "<empty prefix>"
