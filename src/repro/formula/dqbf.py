"""The DQBF container and two semantic ground-truth oracles.

A :class:`Dqbf` bundles a :class:`~repro.formula.prefix.DependencyPrefix`
with a CNF matrix.  Two independent reference procedures decide small
instances:

* :func:`skolem_enumeration_solve` enumerates Skolem function tables,
  literally implementing Definition 2 of the paper, and
* :func:`expansion_solve` performs full universal expansion into a
  propositional formula and checks satisfiability by exhaustive search.

Both are exponential and only meant as oracles for the test suite; the
real solvers live in :mod:`repro.core`, :mod:`repro.baselines` and
:mod:`repro.qbf`.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .cnf import Cnf
from .lits import var_of
from .prefix import DependencyPrefix


class Dqbf:
    """A dependency quantified Boolean formula with a CNF matrix."""

    def __init__(self, prefix: Optional[DependencyPrefix] = None, matrix: Optional[Cnf] = None):
        self.prefix = prefix if prefix is not None else DependencyPrefix()
        self.matrix = matrix if matrix is not None else Cnf()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        universals: Sequence[int],
        existentials: Sequence[Tuple[int, Iterable[int]]],
        clauses: Iterable[Iterable[int]],
    ) -> "Dqbf":
        """Build a DQBF from plain Python data.

        ``existentials`` is a sequence of ``(var, dependency_set)`` pairs.
        """
        prefix = DependencyPrefix()
        for x in universals:
            prefix.add_universal(x)
        for y, deps in existentials:
            prefix.add_existential(y, deps)
        return cls(prefix, Cnf(clauses))

    def copy(self) -> "Dqbf":
        return Dqbf(self.prefix.copy(), self.matrix.copy())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def free_variables(self) -> List[int]:
        """Matrix variables not bound by the prefix (should be empty for closed formulas)."""
        return sorted(v for v in self.matrix.variables() if not self.prefix.quantifies(v))

    def is_closed(self) -> bool:
        return not self.free_variables()

    def is_qbf(self) -> bool:
        """True iff an equivalent QBF prefix exists (Theorem 3/4)."""
        return self.prefix.is_qbf_shaped()

    def validate(self) -> None:
        """Raise ``ValueError`` if the formula is not closed."""
        free = self.free_variables()
        if free:
            raise ValueError(f"free variables in matrix: {free}")

    def __repr__(self) -> str:
        return f"Dqbf({self.prefix!r}, {self.matrix!r})"


# ----------------------------------------------------------------------
# Oracle 1: Skolem function enumeration (Definition 2 verbatim)
# ----------------------------------------------------------------------

def _function_tables(num_inputs: int) -> Iterable[Tuple[bool, ...]]:
    """Yield all Boolean functions of ``num_inputs`` inputs as truth tables."""
    rows = 1 << num_inputs
    for bits in itertools.product((False, True), repeat=rows):
        yield bits


def skolem_enumeration_solve(formula: Dqbf, limit: int = 1 << 22) -> bool:
    """Decide a tiny DQBF by enumerating all Skolem function combinations.

    ``limit`` bounds the number of Skolem combinations tried; exceeding it
    raises ``ValueError`` so tests fail loudly instead of hanging.
    """
    formula.validate()
    universals = formula.prefix.universals
    existentials = formula.prefix.existentials
    deps = {y: sorted(formula.prefix.dependencies(y)) for y in existentials}

    total = 1
    for y in existentials:
        total *= 1 << (1 << len(deps[y]))
        if total > limit:
            raise ValueError(f"too many Skolem candidates ({total} > {limit})")

    universal_assignments = list(itertools.product((False, True), repeat=len(universals)))

    table_choices = [list(_function_tables(len(deps[y]))) for y in existentials]
    for tables in itertools.product(*table_choices):
        if _tables_satisfy(formula, universals, existentials, deps, tables, universal_assignments):
            return True
    # An empty existential list means the single (empty) combination above
    # was already tried, so reaching this point is a definitive "no".
    return False


def _tables_satisfy(
    formula: Dqbf,
    universals: Sequence[int],
    existentials: Sequence[int],
    deps: Dict[int, List[int]],
    tables: Sequence[Tuple[bool, ...]],
    universal_assignments: Sequence[Tuple[bool, ...]],
) -> bool:
    universal_index = {x: i for i, x in enumerate(universals)}
    for values in universal_assignments:
        assignment = {x: values[universal_index[x]] for x in universals}
        for y, table in zip(existentials, tables):
            row = 0
            for x in deps[y]:
                row = (row << 1) | int(assignment[x])
            assignment[y] = table[row]
        if not formula.matrix.evaluate(assignment):
            return False
    return True


# ----------------------------------------------------------------------
# Oracle 2: full universal expansion
# ----------------------------------------------------------------------

def expand_to_propositional(
    formula: Dqbf,
) -> Tuple[Cnf, Dict[Tuple[int, FrozenSet[Tuple[int, bool]]], int]]:
    """Fully expand all universal variables (iterated Theorem 1).

    Returns a propositional CNF together with the mapping from
    ``(existential, restricted universal assignment)`` instances to fresh
    variables.  The DQBF is satisfied iff the CNF is satisfiable.
    """
    formula.validate()
    universals = formula.prefix.universals
    existentials = set(formula.prefix.existentials)
    deps = {y: formula.prefix.dependencies(y) for y in formula.prefix.existentials}

    expanded = Cnf(num_vars=formula.matrix.num_vars)
    instance_vars: Dict[Tuple[int, FrozenSet[Tuple[int, bool]]], int] = {}

    def instance_var(y: int, sigma: Dict[int, bool]) -> int:
        key = (y, frozenset((x, sigma[x]) for x in deps[y]))
        if key not in instance_vars:
            instance_vars[key] = expanded.fresh_var()
        return instance_vars[key]

    for values in itertools.product((False, True), repeat=len(universals)):
        sigma = dict(zip(universals, values))
        for clause in formula.matrix:
            new_clause: List[int] = []
            satisfied = False
            for lit in clause:
                v = var_of(lit)
                if v in sigma:
                    if (lit > 0) == sigma[v]:
                        satisfied = True
                        break
                elif v in existentials:
                    inst = instance_var(v, sigma)
                    new_clause.append(inst if lit > 0 else -inst)
                else:  # pragma: no cover - validate() rules this out
                    raise AssertionError(f"unquantified variable {v}")
            if not satisfied:
                expanded.add_clause(new_clause)
    return expanded, instance_vars


def expansion_solve(formula: Dqbf, limit: int = 1 << 16) -> bool:
    """Decide a small DQBF by full expansion plus exhaustive SAT.

    ``limit`` bounds ``2**#universals * #clauses`` to keep tests fast.
    """
    cost = (1 << len(formula.prefix.universals)) * max(1, len(formula.matrix))
    if cost > limit:
        raise ValueError(f"expansion too large ({cost} > {limit})")
    expanded, instance_vars = expand_to_propositional(formula)
    if expanded.has_empty_clause():
        return False
    variables = sorted(expanded.variables())
    if not variables:
        return len(expanded) == 0
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if expanded.evaluate(assignment):
            return True
    return False
