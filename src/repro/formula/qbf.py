"""QBF container plus conversions between QBF and DQBF.

The conversion *from* a cyclic-free DQBF to a QBF (the linearization used
when HQS hands over to the QBF back-end) lives in
:mod:`repro.core.depgraph`, because it relies on the dependency-graph
construction of Section III-A.  Here we only keep the trivial embedding
QBF -> DQBF and the container itself.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from .cnf import Cnf
from .dqbf import Dqbf
from .prefix import FORALL, BlockedPrefix


class Qbf:
    """A prenex QBF with a CNF matrix."""

    def __init__(self, prefix: Optional[BlockedPrefix] = None, matrix: Optional[Cnf] = None):
        self.prefix = prefix if prefix is not None else BlockedPrefix()
        self.matrix = matrix if matrix is not None else Cnf()

    @classmethod
    def build(
        cls,
        blocks: Sequence[Tuple[str, Sequence[int]]],
        clauses: Iterable[Iterable[int]],
    ) -> "Qbf":
        return cls(BlockedPrefix(blocks), Cnf(clauses))

    def copy(self) -> "Qbf":
        return Qbf(BlockedPrefix(self.prefix.blocks), self.matrix.copy())

    def to_dqbf(self) -> Dqbf:
        """Embed into DQBF (construction below Definition 3 of the paper)."""
        return Dqbf(self.prefix.to_dependency_prefix(), self.matrix.copy())

    def free_variables(self) -> List[int]:
        bound = set(self.prefix.variables())
        return sorted(v for v in self.matrix.variables() if v not in bound)

    def validate(self) -> None:
        free = self.free_variables()
        if free:
            raise ValueError(f"free variables in matrix: {free}")

    def __repr__(self) -> str:
        return f"Qbf({self.prefix!r}, {self.matrix!r})"


def brute_force_qbf(formula: Qbf) -> bool:
    """Semantic game-tree evaluation of a small QBF (test oracle).

    Evaluates the quantifier tree directly: universal blocks require all
    branches to succeed, existential blocks some branch.
    """
    formula.validate()
    blocks = formula.prefix.blocks
    matrix = formula.matrix

    def recurse(index: int, assignment: dict) -> bool:
        if index == len(blocks):
            return matrix.evaluate(assignment)
        quantifier, variables = blocks[index]
        outcomes = (
            recurse(index + 1, {**assignment, **dict(zip(variables, values))})
            for values in itertools.product((False, True), repeat=len(variables))
        )
        if quantifier == FORALL:
            return all(outcomes)
        return any(outcomes)

    # Matrix variables outside the prefix would make the formula open.
    return recurse(0, {})
