"""Reader/writer for the QDIMACS format (prenex CNF QBF).

HQS linearizes acyclic DQBFs into QBFs (Theorem 3); this module lets
users export that result for external QBF solvers (DepQBF, AIGSolve,
...) and import QDIMACS benchmarks into :class:`repro.formula.qbf.Qbf`.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from .cnf import Cnf
from .prefix import EXISTS, FORALL, BlockedPrefix
from .qbf import Qbf


class QdimacsError(ValueError):
    """Raised on malformed QDIMACS input."""


def parse_qdimacs(source: Union[str, TextIO]) -> Qbf:
    """Parse QDIMACS text (or a file-like object) into a :class:`Qbf`."""
    if isinstance(source, str):
        source = io.StringIO(source)

    prefix = BlockedPrefix()
    clauses: List[List[int]] = []
    declared_vars = 0
    saw_problem_line = False
    in_prefix = True

    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tokens = line.split()
        if tokens[0] == "p":
            if saw_problem_line:
                raise QdimacsError(f"line {line_number}: duplicate problem line")
            if len(tokens) != 4 or tokens[1] != "cnf":
                raise QdimacsError(f"line {line_number}: malformed problem line")
            declared_vars = int(tokens[2])
            saw_problem_line = True
            continue
        if not saw_problem_line:
            raise QdimacsError(f"line {line_number}: content before problem line")
        if tokens[0] in ("a", "e"):
            if not in_prefix:
                raise QdimacsError(f"line {line_number}: prefix after clauses")
            numbers = _terminated(tokens[1:], line_number)
            if any(v < 1 or (declared_vars and v > declared_vars) for v in numbers):
                raise QdimacsError(f"line {line_number}: variable out of range")
            prefix.add_block(FORALL if tokens[0] == "a" else EXISTS, numbers)
            continue
        in_prefix = False
        literals = _terminated(tokens, line_number, allow_negative=True)
        for lit in literals:
            if abs(lit) < 1 or (declared_vars and abs(lit) > declared_vars):
                raise QdimacsError(f"line {line_number}: literal out of range")
        clauses.append(literals)

    return Qbf(prefix, Cnf(clauses, num_vars=declared_vars))


def _terminated(tokens: List[str], line_number: int, allow_negative: bool = False) -> List[int]:
    try:
        numbers = [int(t) for t in tokens]
    except ValueError as exc:
        raise QdimacsError(f"line {line_number}: non-integer token") from exc
    if not numbers or numbers[-1] != 0:
        raise QdimacsError(f"line {line_number}: missing terminating 0")
    numbers = numbers[:-1]
    if any(n == 0 for n in numbers):
        raise QdimacsError(f"line {line_number}: stray 0 inside line")
    if not allow_negative and any(n < 0 for n in numbers):
        raise QdimacsError(f"line {line_number}: negative variable in prefix")
    return numbers


def write_qdimacs(formula: Qbf) -> str:
    """Serialize a :class:`Qbf` to QDIMACS text."""
    matrix = formula.matrix
    num_vars = max([matrix.num_vars] + formula.prefix.variables() + [0])
    lines = [f"p cnf {num_vars} {len(matrix)}"]
    for quantifier, variables in formula.prefix.blocks:
        lines.append(
            f"{'a' if quantifier == FORALL else 'e'} "
            + " ".join(str(v) for v in variables)
            + " 0"
        )
    for clause in matrix:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def load_qdimacs(path: str) -> Qbf:
    with open(path, "r", encoding="ascii") as handle:
        return parse_qdimacs(handle)


def save_qdimacs(formula: Qbf, path: str) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_qdimacs(formula))
