"""Incomplete-information Boolean games — the second DQBF application
named in the paper's introduction (Peterson/Reif/Azhar [8])."""

from .model import BooleanGame, Player, blind_coordination, matching_pennies_team

__all__ = ["BooleanGame", "Player", "blind_coordination", "matching_pennies_team"]
