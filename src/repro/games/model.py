"""Incomplete-information Boolean games encoded as DQBF.

The paper's introduction lists "the analysis of non-cooperative games
with incomplete information" (Peterson, Reif, Azhar [8]) as a natural
DQBF application.  This module implements the simplest interesting
shape of that problem:

*One adversary sets Boolean variables ``x``; a team of cooperating
players answers with Boolean moves, but each player observes only a
subset of the adversary's variables.  The team wins when the win
condition holds for every adversary play.*

A *distributed winning strategy* assigns each player a Boolean function
of their observation — precisely a Skolem function — so the team wins
iff the DQBF

    forall x  exists m_1(obs_1) ... m_k(obs_k) :  win(x, m)

is satisfied.  Players with incomparable observations give the formula
genuinely non-linear (Henkin) dependencies, which is why QBF cannot
express such games.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.result import Limits, SAT
from ..core.skolem import SkolemTable
from ..formula.cnf import Cnf
from ..formula.dqbf import Dqbf
from ..formula.prefix import DependencyPrefix


class Player:
    """A team member: a name and the adversary variables it observes."""

    def __init__(self, name: str, observes: Sequence[str]):
        self.name = name
        self.observes = list(observes)

    def __repr__(self) -> str:
        return f"Player({self.name}, observes={self.observes})"


class BooleanGame:
    """An incomplete-information team game against one adversary.

    ``adversary_vars`` are the adversary's Boolean choices; each player
    contributes one Boolean move.  The win condition is a propositional
    formula built with :meth:`win_*` helpers over variable names — the
    names of adversary variables and player names (a player's name
    denotes its move).
    """

    def __init__(self, adversary_vars: Sequence[str]):
        self.adversary_vars = list(adversary_vars)
        self.players: List[Player] = []
        self._win_clauses: List[List[Tuple[str, bool]]] = []

    def add_player(self, name: str, observes: Sequence[str]) -> Player:
        if name in self.adversary_vars:
            raise ValueError(f"player name {name!r} collides with an adversary variable")
        if any(p.name == name for p in self.players):
            raise ValueError(f"duplicate player {name!r}")
        unknown = set(observes) - set(self.adversary_vars)
        if unknown:
            raise ValueError(f"player {name!r} observes unknown variables {sorted(unknown)}")
        player = Player(name, observes)
        self.players.append(player)
        return player

    def add_win_clause(self, *literals: Tuple[str, bool]) -> None:
        """Add one clause of the win condition (CNF over names).

        Each literal is ``(name, polarity)``; the team must make every
        clause true for all adversary plays.
        """
        known = set(self.adversary_vars) | {p.name for p in self.players}
        for name, _polarity in literals:
            if name not in known:
                raise ValueError(f"unknown name {name!r} in win clause")
        self._win_clauses.append(list(literals))

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def variable_map(self) -> Dict[str, int]:
        """Stable name -> DIMACS variable numbering."""
        mapping: Dict[str, int] = {}
        for index, name in enumerate(self.adversary_vars, start=1):
            mapping[name] = index
        offset = len(self.adversary_vars)
        for index, player in enumerate(self.players, start=1):
            mapping[player.name] = offset + index
        return mapping

    def to_dqbf(self) -> Dqbf:
        """Encode: forall adversary exists moves(observations): win."""
        if not self._win_clauses:
            raise ValueError("the game has no win condition")
        mapping = self.variable_map()
        prefix = DependencyPrefix()
        for name in self.adversary_vars:
            prefix.add_universal(mapping[name])
        for player in self.players:
            prefix.add_existential(
                mapping[player.name], [mapping[o] for o in player.observes]
            )
        matrix = Cnf(num_vars=len(mapping))
        for clause in self._win_clauses:
            matrix.add_clause(
                [mapping[name] if polarity else -mapping[name] for name, polarity in clause]
            )
        return Dqbf(prefix, matrix)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def has_winning_strategy(self, limits: Optional[Limits] = None) -> bool:
        """Decide the game with HQS."""
        from ..core.hqs import solve_dqbf

        result = solve_dqbf(self.to_dqbf(), limits)
        if not result.solved:
            raise TimeoutError(f"game solving inconclusive: {result.status}")
        return result.status == SAT

    def winning_strategies(
        self, limits: Optional[Limits] = None
    ) -> Optional[Dict[str, SkolemTable]]:
        """Return per-player strategy tables, or ``None`` if the team loses."""
        from ..core.skolem import extract_certificate

        result, tables = extract_certificate(self.to_dqbf(), limits)
        if tables is None:
            return None
        mapping = self.variable_map()
        inverse = {var: name for name, var in mapping.items()}
        return {inverse[var]: table for var, table in tables.items()}

    def play(
        self,
        strategies: Dict[str, SkolemTable],
        adversary_play: Dict[str, bool],
    ) -> bool:
        """Simulate one round: does the team win against this play?"""
        mapping = self.variable_map()
        assignment = {mapping[n]: v for n, v in adversary_play.items()}
        for player in self.players:
            table = strategies[player.name]
            assignment[mapping[player.name]] = table.evaluate(assignment)
        return self.to_dqbf().matrix.evaluate(assignment)

    def __repr__(self) -> str:
        return (
            f"BooleanGame(adversary={len(self.adversary_vars)}, "
            f"players={len(self.players)}, clauses={len(self._win_clauses)})"
        )


def matching_pennies_team(n_bits: int = 1) -> BooleanGame:
    """A classic: the adversary hides bits; player i sees only bit i but
    the team must reproduce the XOR of all bits with the XOR of their
    moves.  Winnable (each player echoes its observed bit) — but not
    expressible as a QBF for n_bits >= 2."""
    names = [f"x{i}" for i in range(n_bits)]
    game = BooleanGame(names)
    for i in range(n_bits):
        game.add_player(f"p{i}", [f"x{i}"])
    # win condition: xor(moves) == xor(bits); clausified for small n
    import itertools

    all_names = names + [f"p{i}" for i in range(n_bits)]
    for values in itertools.product([False, True], repeat=2 * n_bits):
        assignment = dict(zip(all_names, values))
        bits = sum(assignment[n] for n in names) % 2
        moves = sum(assignment[f"p{i}"] for i in range(n_bits)) % 2
        if bits != moves:
            # forbid this combination
            game.add_win_clause(
                *[(name, not value) for name, value in assignment.items()]
            )
    return game


def blind_coordination(n_players: int = 2) -> BooleanGame:
    """An unwinnable game: players see *nothing* but must match a hidden
    coin.  No constant strategies work, so the DQBF is UNSAT."""
    game = BooleanGame(["coin"])
    for i in range(n_players):
        game.add_player(f"p{i}", [])
        game.add_win_clause((f"p{i}", True), ("coin", False))
        game.add_win_clause((f"p{i}", False), ("coin", True))
    return game
