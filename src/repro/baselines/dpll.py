"""A search-based DQBF solver — the third paradigm of Section II.

The paper cites three DQBF solving techniques: search-based (Fröhlich
et al. [14], "proposed ... but without experimental evaluation"),
elimination-based ([10]/HQS) and instantiation-based (iDQ).  This
module completes the trio with a faithful-in-spirit search solver:

The universal assignments are explored depth-first; whenever a branch
is fully assigned, the relevant Skolem *table entries* ``y@(sigma|D_y)``
— some already fixed by earlier branches, the rest free — must be
chosen so the matrix is satisfied.  Free choices are trailed and undone
on backtracking, so the search is exactly a DPLL over the entries of
the Skolem tables: decisions are function-table rows, propagation is
the per-branch matrix check, and chronological backtracking flips the
most recent free row.

No learning and no dependency-aware heuristics are implemented (the
cited workshop paper sketches them without evaluation), which keeps
this an honest lower bound for the paradigm: correct, exponential, and
— as the experiments show — far behind HQS, which is exactly the gap
the DATE'15 paper exploits.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Tuple

from ..core.guard import ResourceGuard
from ..core.result import SAT, UNSAT, SolveResult, exhausted_result
from ..errors import ResourceExhausted
from ..formula.dqbf import Dqbf
from ..formula.lits import var_of


class DpllDqbfSolver:
    """Search-based DQBF decision; create one per formula."""

    def __init__(self) -> None:
        self.stats: Dict[str, int] = {"leaves_visited": 0, "backtracks": 0}

    def solve(self, formula: Dqbf, limits=None) -> SolveResult:
        """``limits`` accepts a :class:`~repro.core.result.Limits` or a
        shared :class:`~repro.core.guard.ResourceGuard`."""
        guard = ResourceGuard.ensure(limits)
        guard.enter_stage("skolem-search")
        start = time.monotonic()
        try:
            answer = self._solve_inner(formula, guard)
            status = SAT if answer else UNSAT
        except ResourceExhausted as exc:
            return exhausted_result(
                exc, guard, time.monotonic() - start, dict(self.stats)
            )
        return SolveResult(status, time.monotonic() - start, dict(self.stats))

    def _solve_inner(self, formula: Dqbf, guard: ResourceGuard) -> bool:
        formula.validate()
        prefix = formula.prefix
        universals = prefix.universals
        existentials = prefix.existentials
        deps = {y: tuple(sorted(prefix.dependencies(y))) for y in existentials}
        clauses = [tuple(c) for c in formula.matrix]
        if not clauses:
            return True
        if any(not c for c in clauses):
            return False

        skolem: Dict[Tuple[int, Tuple[bool, ...]], bool] = {}

        # Pre-split clauses by nothing (evaluate per leaf); for speed,
        # pre-compute per-clause universal/existential literal lists.
        split_clauses = []
        universal_set = set(universals)
        for clause in clauses:
            uni = [lit for lit in clause if var_of(lit) in universal_set]
            exi = [lit for lit in clause if var_of(lit) not in universal_set]
            split_clauses.append((uni, exi))

        # Leaves are indexed, not materialized: 2^|universals| tuples up
        # front would blow memory (and stall the guard) long before the
        # search visits them.
        num_leaves = 1 << len(universals)

        def leaf_sigma(index: int) -> Dict[int, bool]:
            return {x: bool((index >> i) & 1) for i, x in enumerate(universals)}

        def leaf_keys(sigma: Dict[int, bool]):
            return {y: (y, tuple(sigma[x] for x in deps[y])) for y in existentials}

        def matrix_holds(sigma: Dict[int, bool], values: Dict[int, bool]) -> bool:
            for uni, exi in split_clauses:
                satisfied = False
                for lit in uni:
                    if (lit > 0) == sigma[var_of(lit)]:
                        satisfied = True
                        break
                if satisfied:
                    continue
                for lit in exi:
                    if (lit > 0) == values[var_of(lit)]:
                        satisfied = True
                        break
                if not satisfied:
                    return False
            return True

        def leaf_choices(index: int):
            """Generator over consistent free-entry assignments at a leaf,
            yielding the keys it committed (for undo)."""
            sigma = leaf_sigma(index)
            keys = leaf_keys(sigma)
            fixed = {y: skolem[k] for y, k in keys.items() if k in skolem}
            free = [y for y in existentials if keys[y] not in skolem]
            for combo_number, combo in enumerate(
                itertools.product((False, True), repeat=len(free))
            ):
                if combo_number % 256 == 0:
                    guard.check()
                values = dict(fixed)
                values.update(zip(free, combo))
                if matrix_holds(sigma, values):
                    committed = []
                    for y in free:
                        skolem[keys[y]] = values[y]
                        committed.append(keys[y])
                    yield committed

        # Explicit DFS stack: one (choice generator, committed keys) frame
        # per leaf, so the search depth never touches Python's recursion
        # limit even with millions of universal branches.
        stack: List[Tuple[object, List[Tuple[int, Tuple[bool, ...]]]]] = []
        index = 0
        current = leaf_choices(0)
        committed: List[Tuple[int, Tuple[bool, ...]]] = []
        while True:
            guard.check()
            self.stats["leaves_visited"] += 1
            guard.note(
                leaves_visited=self.stats["leaves_visited"],
                backtracks=self.stats["backtracks"],
            )
            advanced = False
            for keys in current:
                # a consistent choice for this leaf: descend
                stack.append((current, keys))
                index += 1
                if index == num_leaves:
                    return True
                current = leaf_choices(index)
                advanced = True
                break
            if advanced:
                continue
            # leaf exhausted: backtrack
            if not stack:
                return False
            self.stats["backtracks"] += 1
            current, committed = stack.pop()
            for key in committed:
                del skolem[key]
            index -= 1


def solve_dpll_dqbf(formula: Dqbf, limits=None) -> SolveResult:
    """Decide a DQBF with the search-based solver."""
    return DpllDqbfSolver().solve(formula, limits)
