"""An instantiation-based DQBF solver in the spirit of iDQ [16].

iDQ lifts the Inst-Gen calculus to DQBF: it maintains a set of *ground
instances* of the CNF matrix, obtained by assigning the universal
variables; existential literals are annotated with the assignment
restricted to their dependency set, so instances that must share a
Skolem value share a propositional atom.  A SAT solver works on the
ground set; UNSAT of the ground set refutes the DQBF, while a model is
checked for genuine totality and otherwise drives the next
instantiation round.

Our reimplementation makes the model-extension rule concrete (classic
Inst-Gen leaves it to literal selection): a candidate model ``M`` of the
ground set is extended to *total* Skolem functions by defaulting every
undefined table entry to ``False``, i.e.

    s_y(tau) = M[y@tau]  if the atom exists,  else False.

The verification step asks a SAT solver for a universal assignment
falsifying the matrix under these total Skolem functions (encoded by
composing the Skolem cubes into the matrix AIG).  If none exists the
DQBF is satisfied — the Skolem functions are a witness; otherwise the
counterexample assignment is instantiated and the loop continues.
Counterexamples are always fresh assignments, so the loop terminates.

The qualitative behaviour matches the paper's observations: instances
that are refuted by the very first ground set ("a single SAT solver
call", Section IV) are fast, while families that need many
instantiations blow up — exactly where HQS wins by orders of magnitude.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..aig.cnf_bridge import aig_to_cnf, cnf_to_aig
from ..aig.graph import Aig, FALSE, TRUE, complement
from ..core.guard import ResourceGuard
from ..core.result import SAT, UNSAT, SolveResult, exhausted_result
from ..errors import ResourceExhausted, TimeoutExceeded
from ..formula.dqbf import Dqbf
from ..formula.lits import var_of
from ..sat.solver import SAT as SAT_STATUS
from ..sat.solver import UNSAT as UNSAT_STATUS
from ..sat.solver import CdclSolver


class IdqStats:
    """Counters of the instantiation loop."""

    def __init__(self) -> None:
        self.instantiation_rounds = 0
        self.ground_clauses = 0
        self.atoms = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class IdqSolver:
    """Instantiation-based solver; create one per formula.

    ``counterexample_batch`` controls how many refuting universal
    assignments each verification round harvests (by blocking found
    models and re-solving): larger batches cut the number of rounds on
    instantiation-heavy instances at the cost of bigger ground sets.
    """

    def __init__(self, counterexample_batch: int = 8) -> None:
        self.stats = IdqStats()
        self.counterexample_batch = max(1, counterexample_batch)
        self._skolem_tables = None

    def skolem_functions(self):
        """Skolem certificate from the last SAT answer (or ``None``).

        Returns ``{existential: SkolemTable}`` — the candidate model that
        survived the final verification round, with undefined rows
        defaulting to False (the extension rule of the main loop).
        """
        return self._skolem_tables

    def solve(self, formula: Dqbf, limits=None) -> SolveResult:
        """``limits`` accepts a :class:`~repro.core.result.Limits` or a
        shared :class:`~repro.core.guard.ResourceGuard`; exhaustion
        yields ``UNKNOWN`` with a failure diagnosis, never an escaping
        exception."""
        guard = ResourceGuard.ensure(limits)
        guard.enter_stage("instantiation")
        start = time.monotonic()
        try:
            answer = self._solve_inner(formula, guard)
            status = SAT if answer else UNSAT
        except ResourceExhausted as exc:
            return exhausted_result(
                exc, guard, time.monotonic() - start, self.stats.as_dict()
            )
        runtime = time.monotonic() - start
        return SolveResult(status, runtime, self.stats.as_dict())

    # ------------------------------------------------------------------
    def _solve_inner(self, formula: Dqbf, guard: ResourceGuard) -> bool:
        formula.validate()
        prefix = formula.prefix
        universals = prefix.universals
        existentials = set(prefix.existentials)
        deps = {y: tuple(sorted(prefix.dependencies(y))) for y in prefix.existentials}
        clauses = formula.matrix.clauses
        self._skolem_tables = None

        if not clauses:
            from ..core.skolem import SkolemTable

            self._skolem_tables = {
                y: SkolemTable(y, list(deps[y])) for y in prefix.existentials
            }
            return True

        ground = CdclSolver()
        atom_table: Dict[Tuple[int, Tuple[bool, ...]], int] = {}

        def atom(y: int, sigma: Dict[int, bool]) -> int:
            key = (y, tuple(sigma[x] for x in deps[y]))
            var = atom_table.get(key)
            if var is None:
                var = ground.new_var()
                atom_table[key] = var
            return var

        def instantiate(sigma: Dict[int, bool]) -> bool:
            """Add all clause instances under ``sigma``; False on empty clause."""
            ok = True
            for clause in clauses:
                ground_clause: List[int] = []
                satisfied = False
                for lit in clause:
                    v = var_of(lit)
                    if v in existentials:
                        a = atom(v, sigma)
                        ground_clause.append(a if lit > 0 else -a)
                    else:
                        if (lit > 0) == sigma[v]:
                            satisfied = True
                            break
                if satisfied:
                    continue
                if not ground_clause:
                    ok = False
                    continue
                ground.add_clause(ground_clause)
                self.stats.ground_clauses += 1
            return ok

        # Matrix AIG over original variables, used by the verification step.
        matrix_aig, matrix_root = cnf_to_aig(clauses)

        sigma0 = {x: False for x in universals}
        if not instantiate(sigma0):
            return False

        while True:
            guard.check()
            self.stats.instantiation_rounds += 1
            self.stats.atoms = len(atom_table)
            guard.note(
                instantiation_rounds=self.stats.instantiation_rounds,
                ground_clauses=self.stats.ground_clauses,
            )
            ground_status = ground.solve(deadline=guard.deadline())
            if ground_status not in (SAT_STATUS, UNSAT_STATUS):
                raise TimeoutExceeded(diagnosis=guard.diagnosis("time"))
            if ground_status == UNSAT_STATUS:
                # The ground set is implied by the DQBF's expansion.
                return False
            model = ground.model()

            guard.enter_stage("verification")
            counterexamples = self._find_counterexamples(
                matrix_aig, matrix_root, universals, deps, atom_table, model, guard
            )
            guard.enter_stage("instantiation")
            if not counterexamples:
                self._skolem_tables = self._build_skolem(deps, atom_table, model)
                return True
            for sigma in counterexamples:
                if not instantiate(sigma):
                    return False

    # ------------------------------------------------------------------
    def _build_skolem(self, deps, atom_table, model):
        """Turn the surviving ground model into Skolem truth tables."""
        from ..core.skolem import SkolemTable

        tables = {
            y: SkolemTable(y, list(dep_list)) for y, dep_list in deps.items()
        }
        for (y, values), atom_var in atom_table.items():
            # atom keys follow deps[y] order, which is sorted already
            tables[y].table[values] = model.get(atom_var, False)
        return tables

    # ------------------------------------------------------------------
    def _find_counterexamples(
        self,
        matrix_aig: Aig,
        matrix_root: int,
        universals: List[int],
        deps: Dict[int, Tuple[int, ...]],
        atom_table: Dict[Tuple[int, Tuple[bool, ...]], int],
        model: Dict[int, bool],
        guard: ResourceGuard,
    ) -> List[Dict[int, bool]]:
        """SAT query for universal assignments falsified by the candidate
        (default-False-extended) Skolem functions.

        Returns up to ``counterexample_batch`` distinct assignments
        (found by blocking each model and re-solving); an empty list
        certifies the candidate and means SAT.
        """
        # Build each Skolem function as an OR of the defined cubes with value 1.
        skolem: Dict[int, int] = {}
        for (y, values), atom_var in atom_table.items():
            if not model.get(atom_var, False):
                continue
            cube = TRUE
            for x, value in zip(deps[y], values):
                edge = matrix_aig.var(x)
                cube = matrix_aig.land(cube, edge if value else complement(edge))
            skolem[y] = matrix_aig.lor(skolem.get(y, FALSE), cube)
        for y in deps:
            skolem.setdefault(y, FALSE)

        composed = matrix_aig.compose(matrix_root, skolem)
        negated = complement(composed)
        if negated == FALSE:
            return []

        guard.check()
        max_var = max(universals, default=0)
        cnf, root_lit, _node_var = aig_to_cnf(matrix_aig, negated, start_var=max_var)
        solver = CdclSolver()
        solver.add_clauses(cnf.clauses)
        solver.add_clause([root_lit])
        solver.ensure_vars(max_var)

        found: List[Dict[int, bool]] = []
        for _round in range(self.counterexample_batch):
            status = solver.solve(deadline=guard.deadline())
            if status == UNSAT_STATUS:
                break
            if status != SAT_STATUS:
                if found:
                    break  # use what we have; timeout handled next round
                raise TimeoutExceeded(diagnosis=guard.diagnosis("time"))
            counter_model = solver.model()
            sigma = {x: counter_model.get(x, False) for x in universals}
            found.append(sigma)
            # block this universal assignment and look for another
            blocking = [(-x if sigma[x] else x) for x in universals]
            if not blocking or not solver.add_clause(blocking):
                break
        return found
