"""The elimination-only baseline of Gitina et al., ICCD 2013 ([10]).

This is the algorithm HQS improves upon: eliminate existential
variables whenever Theorem 2 applies, otherwise expand universal
variables one after the other (Theorem 1) until a purely propositional
formula remains, which goes to a SAT solver.  No dependency-graph
analysis, no MaxSAT-selected minimum elimination set, no unit/pure
detection, no QBF back-end.

Implemented as a thin configuration of :class:`repro.core.hqs.HqsSolver`
— the shared machinery guarantees an apples-to-apples comparison in the
benchmarks (same AIG package, same SAT solver), so measured differences
isolate the *algorithmic* contribution of the paper.
"""

from __future__ import annotations

from ..core.hqs import HqsOptions, HqsSolver
from ..core.result import SolveResult
from ..formula.dqbf import Dqbf


def expansion_options() -> HqsOptions:
    """The feature configuration matching [10]."""
    return HqsOptions(
        use_preprocessing=True,
        use_gate_detection=True,
        use_unit_pure=False,
        use_maxsat_selection=False,
        use_qbf_backend=False,
    )


def solve_expansion(formula: Dqbf, limits=None) -> SolveResult:
    """Decide ``formula`` with the expansion-only strategy of [10].

    ``limits`` may be a :class:`~repro.core.result.Limits` or a shared
    :class:`~repro.core.guard.ResourceGuard`."""
    solver = HqsSolver(expansion_options())
    return solver.solve(formula, limits)
