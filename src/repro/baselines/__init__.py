"""Baseline DQBF solvers: the three paradigms of Section II.

* elimination-based ([10]) — :mod:`repro.baselines.expansion`
* instantiation-based (iDQ [16]) — :mod:`repro.baselines.idq`
* search-based ([14]) — :mod:`repro.baselines.dpll`
"""

from .dpll import DpllDqbfSolver, solve_dpll_dqbf
from .expansion import expansion_options, solve_expansion
from .idq import IdqSolver, IdqStats

__all__ = [
    "DpllDqbfSolver",
    "solve_dpll_dqbf",
    "expansion_options",
    "solve_expansion",
    "IdqSolver",
    "IdqStats",
]
