"""Close the PEC loop: plug synthesized black boxes back into the design.

Realizability (the DQBF question) says black-box implementations
*exist*; the Skolem certificate names them.  This module completes the
story a designer cares about:

1. turn each black-box output's Skolem table into gate logic,
2. splice it into the incomplete implementation,
3. formally verify the completed design against the specification with
   an independent SAT miter check.

Together with :func:`repro.core.skolem.extract_certificate` this makes
the reproduction a (truth-table-level) synthesis tool for missing
circuit parts, not just a yes/no oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aig.cnf_bridge import is_satisfiable
from ..aig.graph import Aig
from ..core.result import Limits
from .circuit import Circuit


def table_to_gates(
    circuit: Circuit,
    output: str,
    inputs: List[str],
    rows: Dict[Tuple[bool, ...], bool],
    prefix: str,
) -> None:
    """Append sum-of-products gates computing a truth table to ``circuit``.

    ``rows`` maps input-value tuples (aligned with ``inputs``) to the
    output value; missing rows default to False.
    """
    minterms = [key for key, value in rows.items() if value]
    if not minterms:
        circuit.add_gate(output, "const0", [])
        return
    if len(minterms) == (1 << len(inputs)):
        circuit.add_gate(output, "const1", [])
        return

    inverted: Dict[str, str] = {}

    def negated(signal: str) -> str:
        if signal not in inverted:
            name = f"{prefix}_n_{signal}"
            circuit.add_gate(name, "not", [signal])
            inverted[signal] = name
        return inverted[signal]

    term_names: List[str] = []
    for index, key in enumerate(sorted(minterms)):
        literals = [
            signal if value else negated(signal)
            for signal, value in zip(inputs, key)
        ]
        if len(literals) == 1:
            term_names.append(literals[0])
        else:
            name = f"{prefix}_m{index}"
            circuit.add_gate(name, "and", literals)
            term_names.append(name)
    if len(term_names) == 1:
        circuit.add_gate(output, "buf", [term_names[0]])
    else:
        circuit.add_gate(output, "or", term_names)


def complete_circuit(
    incomplete: Circuit,
    box_tables: Dict[str, Dict[Tuple[bool, ...], bool]],
) -> Circuit:
    """Replace every black box by SOP logic from its output truth tables.

    ``box_tables`` maps black-box *output* signal names to truth tables
    over the box's input tuple.
    """
    completed = Circuit(incomplete.name + "_completed", incomplete.inputs, incomplete.outputs)
    for gate in incomplete.gates:
        completed.add_gate(gate.output, gate.kind, gate.inputs)
    for box_number, box in enumerate(incomplete.black_boxes):
        for out_number, output in enumerate(box.outputs):
            if output not in box_tables:
                raise ValueError(f"no truth table supplied for black box output {output!r}")
            table_to_gates(
                completed,
                output,
                list(box.inputs),
                box_tables[output],
                prefix=f"syn{box_number}_{out_number}",
            )
    completed.validate()
    return completed


def circuits_equivalent(
    left: Circuit, right: Circuit, deadline: Optional[float] = None
) -> bool:
    """SAT miter check: do two complete circuits agree on every output?"""
    if set(left.inputs) != set(right.inputs):
        raise ValueError("circuits have different inputs")
    if set(left.outputs) != set(right.outputs):
        raise ValueError("circuits have different outputs")
    aig = Aig()
    input_edges = {name: aig.var(i + 1) for i, name in enumerate(sorted(left.inputs))}
    left_edges = left.to_aig(aig, dict(input_edges))
    right_edges = right.to_aig(aig, dict(input_edges))
    difference = aig.lor_many(
        aig.lxor(left_edges[out], right_edges[out]) for out in left.outputs
    )
    return not is_satisfiable(aig, difference, deadline)


def synthesize_black_boxes(
    spec: Circuit,
    incomplete: Circuit,
    limits: Optional[Limits] = None,
) -> Optional[Circuit]:
    """One-call synthesis: decide realizability, extract Skolem tables,
    splice them in, and verify the completed design against ``spec``.

    Returns the completed, verified circuit — or ``None`` when the
    design is unrealizable.  Raises ``AssertionError`` if the verified
    certificate fails the final miter (a solver bug, never observed).
    """
    from ..core.skolem import extract_certificate
    from .encode import encode_pec_with_map

    limits = limits or Limits()
    formula, variables = encode_pec_with_map(spec, incomplete)
    y_of_output = variables.y_var

    result, tables = extract_certificate(formula, limits)
    if tables is None:
        return None

    box_tables: Dict[str, Dict[Tuple[bool, ...], bool]] = {}
    for box in incomplete.black_boxes:
        for out in box.outputs:
            table = tables[y_of_output[out]]
            box_tables[out] = table.as_full_table()
    completed = complete_circuit(incomplete, box_tables)
    if not circuits_equivalent(spec, completed, limits.deadline()):
        raise AssertionError("synthesized completion failed the miter check")
    return completed
