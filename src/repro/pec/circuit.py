"""Gate-level combinational circuits with black boxes.

This is the front-end of the paper's reference application: partial
equivalence checking (PEC) of incomplete designs.  A :class:`Circuit`
is a netlist of simple gates over named signals; a :class:`BlackBox`
marks a missing part with known input/output signals but unknown
function.  Circuits must be acyclic; black boxes may feed each other as
long as the overall netlist stays acyclic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..aig.graph import Aig, FALSE, TRUE, complement

GATE_KINDS = {"and", "or", "not", "xor", "xnor", "nand", "nor", "buf", "const0", "const1"}


class Gate:
    """A named gate: ``output = kind(inputs)``."""

    def __init__(self, output: str, kind: str, inputs: Sequence[str]):
        if kind not in GATE_KINDS:
            raise ValueError(f"unknown gate kind {kind!r}")
        if kind == "not" and len(inputs) != 1:
            raise ValueError("not gate takes exactly one input")
        if kind == "buf" and len(inputs) != 1:
            raise ValueError("buf gate takes exactly one input")
        if kind.startswith("const") and inputs:
            raise ValueError("constant gates take no inputs")
        self.output = output
        self.kind = kind
        self.inputs = list(inputs)

    def __repr__(self) -> str:
        return f"Gate({self.output} = {self.kind}{tuple(self.inputs)})"


class BlackBox:
    """A missing circuit part: known interface, unknown function."""

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str]):
        if not outputs:
            raise ValueError("black boxes need at least one output")
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)

    def __repr__(self) -> str:
        return f"BlackBox({self.name}: {self.inputs} -> {self.outputs})"


class Circuit:
    """A combinational netlist, possibly containing black boxes."""

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str]):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.gates: List[Gate] = []
        self.black_boxes: List[BlackBox] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, output: str, kind: str, inputs: Sequence[str] = ()) -> str:
        self.gates.append(Gate(output, kind, inputs))
        return output

    def add_black_box(self, name: str, inputs: Sequence[str], outputs: Sequence[str]) -> BlackBox:
        box = BlackBox(name, inputs, outputs)
        self.black_boxes.append(box)
        return box

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def drivers(self) -> Dict[str, object]:
        """Map every driven signal to its gate or black box."""
        driven: Dict[str, object] = {}
        for gate in self.gates:
            if gate.output in driven:
                raise ValueError(f"signal {gate.output} driven twice")
            driven[gate.output] = gate
        for box in self.black_boxes:
            for out in box.outputs:
                if out in driven:
                    raise ValueError(f"signal {out} driven twice")
                driven[out] = box
        return driven

    def validate(self) -> None:
        """Check that the netlist is complete and acyclic."""
        driven = self.drivers()
        known = set(self.inputs) | set(driven)
        for gate in self.gates:
            for sig in gate.inputs:
                if sig not in known:
                    raise ValueError(f"gate {gate.output}: undriven input {sig}")
        for box in self.black_boxes:
            for sig in box.inputs:
                if sig not in known:
                    raise ValueError(f"black box {box.name}: undriven input {sig}")
        for out in self.outputs:
            if out not in known:
                raise ValueError(f"undriven primary output {out}")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[object]:
        """Gates and black boxes sorted so drivers precede users."""
        driven = self.drivers()
        order: List[object] = []
        state: Dict[int, int] = {}

        def visit(item: object, stack: Set[int]) -> None:
            key = id(item)
            if state.get(key) == 1:
                return
            if key in stack:
                raise ValueError(f"combinational cycle through {item!r}")
            stack.add(key)
            inputs = item.inputs
            for sig in inputs:
                drv = driven.get(sig)
                if drv is not None:
                    visit(drv, stack)
            stack.discard(key)
            state[key] = 1
            order.append(item)

        for item in list(self.gates) + list(self.black_boxes):
            visit(item, set())
        return order

    @property
    def is_complete(self) -> bool:
        return not self.black_boxes

    def signal_names(self) -> Set[str]:
        names = set(self.inputs)
        for gate in self.gates:
            names.add(gate.output)
            names.update(gate.inputs)
        for box in self.black_boxes:
            names.update(box.inputs)
            names.update(box.outputs)
        return names

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def simulate(
        self,
        input_values: Dict[str, bool],
        box_functions: Optional[Dict[str, Dict[Tuple[bool, ...], bool]]] = None,
    ) -> Dict[str, bool]:
        """Evaluate the netlist for one input vector.

        ``box_functions`` maps black-box *output* names to truth tables
        over the box's input tuple; required when the circuit is
        incomplete.
        """
        values: Dict[str, bool] = dict(input_values)
        for item in self.topological_order():
            if isinstance(item, Gate):
                values[item.output] = _evaluate_gate(item, values)
            else:
                if box_functions is None:
                    raise ValueError(f"no function supplied for black box {item.name}")
                key = tuple(values[s] for s in item.inputs)
                for out in item.outputs:
                    values[out] = box_functions[out][key]
        return {out: values[out] for out in self.outputs}

    def to_aig(
        self,
        aig: Aig,
        input_edges: Dict[str, int],
        box_output_edges: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Build AIG edges for every signal; returns the full signal map.

        Black-box outputs must be supplied as edges in
        ``box_output_edges`` (they become free variables of the PEC
        encoding).
        """
        edges: Dict[str, int] = dict(input_edges)
        if box_output_edges:
            edges.update(box_output_edges)
        for item in self.topological_order():
            if isinstance(item, Gate):
                edges[item.output] = _gate_to_aig(aig, item, edges)
            else:
                for out in item.outputs:
                    if out not in edges:
                        raise ValueError(
                            f"black box output {out} needs an edge in box_output_edges"
                        )
        return edges

    def count_gates(self) -> int:
        return len(self.gates)

    def copy(self, name: Optional[str] = None) -> "Circuit":
        clone = Circuit(name or self.name, self.inputs, self.outputs)
        for gate in self.gates:
            clone.add_gate(gate.output, gate.kind, gate.inputs)
        for box in self.black_boxes:
            clone.add_black_box(box.name, box.inputs, box.outputs)
        return clone

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)}, "
            f"black_boxes={len(self.black_boxes)})"
        )


def _evaluate_gate(gate: Gate, values: Dict[str, bool]) -> bool:
    ins = [values[s] for s in gate.inputs]
    if gate.kind == "and":
        return all(ins)
    if gate.kind == "or":
        return any(ins)
    if gate.kind == "not":
        return not ins[0]
    if gate.kind == "buf":
        return ins[0]
    if gate.kind == "xor":
        result = False
        for v in ins:
            result ^= v
        return result
    if gate.kind == "xnor":
        result = True
        for v in ins:
            result ^= v
        return result
    if gate.kind == "nand":
        return not all(ins)
    if gate.kind == "nor":
        return not any(ins)
    if gate.kind == "const0":
        return False
    if gate.kind == "const1":
        return True
    raise AssertionError(gate.kind)


def _gate_to_aig(aig: Aig, gate: Gate, edges: Dict[str, int]) -> int:
    ins = [edges[s] for s in gate.inputs]
    if gate.kind == "and":
        return aig.land_many(ins)
    if gate.kind == "or":
        return aig.lor_many(ins)
    if gate.kind == "not":
        return complement(ins[0])
    if gate.kind == "buf":
        return ins[0]
    if gate.kind == "xor":
        edge = FALSE
        for e in ins:
            edge = aig.lxor(edge, e)
        return edge
    if gate.kind == "xnor":
        edge = FALSE
        for e in ins:
            edge = aig.lxor(edge, e)
        return complement(edge)
    if gate.kind == "nand":
        return complement(aig.land_many(ins))
    if gate.kind == "nor":
        return complement(aig.lor_many(ins))
    if gate.kind == "const0":
        return FALSE
    if gate.kind == "const1":
        return TRUE
    raise AssertionError(gate.kind)
