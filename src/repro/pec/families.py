"""Generators for the seven PEC benchmark families of the paper.

Each generator builds a complete specification circuit, derives an
incomplete implementation by cutting subcircuits out into black boxes,
and optionally injects a bug *outside* every black-box cone so the
instance is unrealizable by construction:

* clean instances are always realizable (the boxes can simply implement
  the logic that was cut out) -> expected SAT;
* bugged instances complement a primary-output driver whose cone is
  black-box free -> the output differs from the spec for some input no
  matter what the boxes do -> expected UNSAT.

Families (scaled versions of the paper's 1820-instance suite):

=========  =====================================================
adder      ripple-carry adders, carry logic cut out
bitcell    iterative arbiter bit cells (Dally & Harting)
lookahead  arbiter with block lookahead (Dally & Harting)
pec_xor    XOR chains from Finkbeiner & Tentrup
z4         carry-select adder stand-in for ISCAS z4ml
comp       iterative magnitude comparator stand-in
c432       grouped priority interrupt controller stand-in
=========  =====================================================
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence

from .circuit import Circuit, Gate
from .encode import PecInstance, encode_pec
from .iscas import c432_like, comp_like, z4ml_like

FAMILIES = ("adder", "bitcell", "lookahead", "pec_xor", "z4", "comp", "c432")

# Families beyond the paper's Table I (motivated by its introduction).
EXTENSION_FAMILIES = ("mult",)


# ----------------------------------------------------------------------
# specification circuits
# ----------------------------------------------------------------------

def ripple_adder(bits: int, name: str = "adder") -> Circuit:
    """Ripple-carry adder: inputs a*, b*, cin; outputs s*, cout."""
    inputs = [f"a{i}" for i in range(bits)] + [f"b{i}" for i in range(bits)] + ["cin"]
    outputs = [f"s{i}" for i in range(bits)] + ["cout"]
    c = Circuit(name, inputs, outputs)
    carry = "cin"
    for i in range(bits):
        c.add_gate(f"p{i}", "xor", [f"a{i}", f"b{i}"])
        c.add_gate(f"g{i}", "and", [f"a{i}", f"b{i}"])
        c.add_gate(f"s{i}", "xor", [f"p{i}", carry])
        c.add_gate(f"t{i}", "and", [f"p{i}", carry])
        c.add_gate(f"c{i + 1}", "or", [f"g{i}", f"t{i}"])
        carry = f"c{i + 1}"
    c.add_gate("cout", "buf", [carry])
    return c


def bitcell_arbiter(cells: int, name: str = "bitcell") -> Circuit:
    """Iterative fixed-priority arbiter: grant_i = r_i AND no earlier request."""
    inputs = [f"r{i}" for i in range(cells)]
    outputs = [f"gr{i}" for i in range(cells)]
    c = Circuit(name, inputs, outputs)
    c.add_gate("c0", "const0", [])
    carry = "c0"
    for i in range(cells):
        c.add_gate(f"nc{i}", "not", [carry])
        c.add_gate(f"gr{i}", "and", [f"r{i}", f"nc{i}"])
        c.add_gate(f"c{i + 1}", "or", [carry, f"r{i}"])
        carry = f"c{i + 1}"
    return c


def lookahead_arbiter(blocks: int, block_size: int = 4, name: str = "lookahead") -> Circuit:
    """Arbiter with block lookahead: per-block any-request signals gate
    the within-block priority chains (Dally & Harting, Ch. 8)."""
    cells = blocks * block_size
    inputs = [f"r{i}" for i in range(cells)]
    outputs = [f"gr{i}" for i in range(cells)]
    c = Circuit(name, inputs, outputs)

    # block-level lookahead: any_b = OR of the block's requests,
    # blocked_b = OR of any_0..any_{b-1}
    for b in range(blocks):
        c.add_gate(f"any{b}", "or", [f"r{b * block_size + j}" for j in range(block_size)])
    c.add_gate("blocked0", "const0", [])
    for b in range(1, blocks):
        c.add_gate(f"blocked{b}", "or", [f"blocked{b - 1}", f"any{b - 1}"])

    # within-block chains, gated by the lookahead
    for b in range(blocks):
        c.add_gate(f"en{b}", "not", [f"blocked{b}"])
        chain = None
        for j in range(block_size):
            i = b * block_size + j
            if chain is None:
                c.add_gate(f"sel{i}", "buf", [f"r{i}"])
                c.add_gate(f"chain{i}", "buf", [f"r{i}"])
            else:
                c.add_gate(f"nch{i}", "not", [chain])
                c.add_gate(f"sel{i}", "and", [f"r{i}", f"nch{i}"])
                c.add_gate(f"chain{i}", "or", [chain, f"r{i}"])
            chain = f"chain{i}"
            c.add_gate(f"gr{i}", "and", [f"sel{i}", f"en{b}"])
    return c


def array_multiplier(bits: int, name: str = "mult") -> Circuit:
    """A combinational array multiplier: ``p = a * b`` (LSB first).

    Not part of the paper's Table I, but its introduction motivates
    exactly this workload: "circuits can also be incomplete because
    parts have been removed that are notoriously hard to verify like
    multipliers".  The extension family ``mult`` cuts partial-product
    or carry cells out of this netlist.
    """
    inputs = [f"a{i}" for i in range(bits)] + [f"b{i}" for i in range(bits)]
    outputs = [f"p{i}" for i in range(2 * bits)]
    c = Circuit(name, inputs, outputs)

    # partial products
    for i in range(bits):
        for j in range(bits):
            c.add_gate(f"pp{i}_{j}", "and", [f"a{i}", f"b{j}"])

    # row-by-row carry-save accumulation: row j adds pp*_j at offset j
    c.add_gate("zero", "const0", [])
    acc = {k: "zero" for k in range(2 * bits)}
    for i in range(bits):
        acc[i] = f"pp{i}_0"
    for j in range(1, bits):
        carry = "zero"
        for i in range(bits):
            position = i + j
            s_in = acc[position]
            pp = f"pp{i}_{j}"
            c.add_gate(f"x{j}_{i}", "xor", [s_in, pp])
            c.add_gate(f"s{j}_{i}", "xor", [f"x{j}_{i}", carry])
            c.add_gate(f"m{j}_{i}", "and", [s_in, pp])
            c.add_gate(f"n{j}_{i}", "and", [f"x{j}_{i}", carry])
            c.add_gate(f"c{j}_{i}", "or", [f"m{j}_{i}", f"n{j}_{i}"])
            acc[position] = f"s{j}_{i}"
            carry = f"c{j}_{i}"
        # propagate the final carry of this row upward
        position = j + bits
        c.add_gate(f"x{j}_f", "xor", [acc[position], carry])
        c.add_gate(f"m{j}_f", "and", [acc[position], carry])
        acc[position] = f"x{j}_f"
        if position + 1 < 2 * bits:
            # ripple the (rare) overflow one more position
            c.add_gate(f"x{j}_g", "xor", [acc[position + 1], f"m{j}_f"])
            acc[position + 1] = f"x{j}_g"

    for k in range(2 * bits):
        c.add_gate(f"p{k}", "buf", [acc[k]])
    return c


def make_mult(bits: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """Multiplier PEC instance: partial-product gates cut out."""
    rng = random.Random(seed)
    spec = array_multiplier(bits)
    candidates = [f"pp{i}_{j}" for i in range(bits) for j in range(1, bits)]
    positions = rng.sample(candidates, min(num_boxes, len(candidates)))
    incomplete = cut_black_boxes(spec, positions)
    # p0 = a0 & b0 only; its cone never contains the cut partial products
    bug_candidates = ["p0"]
    name = f"mult_{bits}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "mult", spec, incomplete, buggy, bug_candidates, rng)


def xor_chain(length: int, name: str = "pec_xor") -> Circuit:
    """Parity chain out = x0 xor x1 xor ... (Finkbeiner & Tentrup family)."""
    inputs = [f"x{i}" for i in range(length)]
    c = Circuit(name, inputs, ["out"])
    prev = "x0"
    for i in range(1, length):
        out = "out" if i == length - 1 else f"t{i}"
        c.add_gate(out, "xor", [prev, f"x{i}"])
        prev = out
    return c


# ----------------------------------------------------------------------
# black-box cutting and bug injection
# ----------------------------------------------------------------------

def cut_black_boxes(circuit: Circuit, gate_outputs: Sequence[str], prefix: str = "bb") -> Circuit:
    """Return a copy of ``circuit`` with the listed gates replaced by
    one black box each (inputs = the gate's inputs)."""
    chosen = set(gate_outputs)
    incomplete = Circuit(circuit.name + "_inc", circuit.inputs, circuit.outputs)
    for box in circuit.black_boxes:
        incomplete.add_black_box(box.name, box.inputs, box.outputs)
    index = 0
    for gate in circuit.gates:
        if gate.output in chosen:
            incomplete.add_black_box(f"{prefix}{index}", gate.inputs, [gate.output])
            index += 1
        else:
            incomplete.add_gate(gate.output, gate.kind, gate.inputs)
    if index != len(chosen):
        missing = chosen - {g.output for g in circuit.gates}
        raise ValueError(f"gates not found for black boxes: {sorted(missing)}")
    return incomplete


def cut_region_black_box(
    circuit: Circuit, gate_outputs: Sequence[str], box_name: str
) -> Circuit:
    """Replace a *set* of gates by a single multi-output black box.

    The box's inputs are all signals the region reads from outside, its
    outputs all region signals read outside (or primary outputs).
    """
    region = {g.output for g in circuit.gates if g.output in set(gate_outputs)}
    if len(region) != len(set(gate_outputs)):
        raise ValueError("region gates not found")
    reads: List[str] = []
    for gate in circuit.gates:
        if gate.output in region:
            for sig in gate.inputs:
                if sig not in region and sig not in reads:
                    reads.append(sig)
    used_outside: List[str] = []
    for gate in circuit.gates:
        if gate.output not in region:
            for sig in gate.inputs:
                if sig in region and sig not in used_outside:
                    used_outside.append(sig)
    for out in circuit.outputs:
        if out in region and out not in used_outside:
            used_outside.append(out)

    incomplete = Circuit(circuit.name + "_inc", circuit.inputs, circuit.outputs)
    for box in circuit.black_boxes:
        incomplete.add_black_box(box.name, box.inputs, box.outputs)
    incomplete.add_black_box(box_name, reads, used_outside)
    for gate in circuit.gates:
        if gate.output not in region:
            incomplete.add_gate(gate.output, gate.kind, gate.inputs)
    return incomplete


_COMPLEMENT_KIND = {
    "and": "nand",
    "nand": "and",
    "or": "nor",
    "nor": "or",
    "xor": "xnor",
    "xnor": "xor",
    "buf": "not",
    "not": "buf",
    "const0": "const1",
    "const1": "const0",
}

# A "subtle" bug swaps the gate for a *different but not complementary*
# function: the outputs then differ only on some input patterns, so
# instantiation-based solvers must discover a revealing assignment
# instead of refuting the very first ground set.
_SUBTLE_KIND = {
    "and": "or",
    "or": "and",
    "xor": "or",
    "xnor": "nand",
    "nand": "xnor",
    "nor": "xor",
}


def inject_bug(circuit: Circuit, gate_output: str, subtle: bool = False) -> Circuit:
    """Replace the function of one gate (a classic netlist bug).

    ``subtle=False`` complements the gate (output differs everywhere);
    ``subtle=True`` swaps it for a different function that agrees on
    part of the input space (falls back to complementing when the kind
    has no subtle variant).
    """
    bugged = Circuit(circuit.name + "_bug", circuit.inputs, circuit.outputs)
    found = False
    for gate in circuit.gates:
        if gate.output == gate_output:
            table = _SUBTLE_KIND if subtle else _COMPLEMENT_KIND
            new_kind = table.get(gate.kind, _COMPLEMENT_KIND[gate.kind])
            bugged.add_gate(gate.output, new_kind, gate.inputs)
            found = True
        else:
            bugged.add_gate(gate.output, gate.kind, gate.inputs)
    for box in circuit.black_boxes:
        bugged.add_black_box(box.name, box.inputs, box.outputs)
    if not found:
        raise ValueError(f"gate {gate_output} not found")
    return bugged


def output_function_differs(spec: Circuit, other: Circuit, output: str) -> bool:
    """SAT miter check: do two *complete* circuits differ on ``output``?"""
    from ..aig.cnf_bridge import is_satisfiable
    from ..aig.graph import Aig

    aig = Aig()
    input_edges = {pi: aig.var(i + 1) for i, pi in enumerate(spec.inputs)}
    e1 = spec.to_aig(aig, input_edges)[output]
    e2 = other.to_aig(aig, dict(input_edges))[output]
    return is_satisfiable(aig, aig.lxor(e1, e2))


def black_box_free_cone(circuit: Circuit, signal: str) -> bool:
    """True iff the transitive fanin cone of ``signal`` contains no black box."""
    driven = circuit.drivers()
    stack = [signal]
    seen = set()
    while stack:
        sig = stack.pop()
        if sig in seen:
            continue
        seen.add(sig)
        driver = driven.get(sig)
        if driver is None:
            continue
        if not isinstance(driver, Gate):
            return False
        stack.extend(driver.inputs)
    return True


# ----------------------------------------------------------------------
# family instance generators
# ----------------------------------------------------------------------

def _finish(
    name: str,
    family: str,
    spec: Circuit,
    incomplete: Circuit,
    buggy: bool,
    bug_candidates: Sequence[str],
    rng: random.Random,
    subtle_fraction: float = 0.6,
) -> PecInstance:
    """Finalize an instance: optionally bug a black-box-free output gate.

    Clean instances are realizable by construction.  Bugged instances
    alter the driver of a primary output whose cone contains no black
    box, so the output is a fixed function of the inputs that provably
    (miter-checked) differs from the specification -> unrealizable.
    """
    expected: Optional[bool] = True
    impl = incomplete
    if buggy:
        safe = [s for s in bug_candidates if black_box_free_cone(incomplete, s)]
        if not safe:
            raise ValueError(f"{name}: no black-box-free output to bug")
        target = rng.choice(safe)
        subtle = rng.random() < subtle_fraction
        impl = inject_bug(incomplete, target, subtle=subtle)
        if subtle:
            # Guarantee the bug is observable: the complete spec with the
            # same bug must differ on that output; otherwise fall back to
            # a complementing bug, which always differs.
            spec_bug = inject_bug(spec, target, subtle=True)
            if not output_function_differs(spec, spec_bug, target):
                impl = inject_bug(incomplete, target, subtle=False)
        expected = False
    formula = encode_pec(spec, impl)
    return PecInstance(name, family, formula, expected, spec, impl)


def make_adder(bits: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """Adder PEC instance: carry gates of ``num_boxes`` positions cut out."""
    rng = random.Random(seed)
    spec = ripple_adder(bits)
    positions = rng.sample(range(1, bits), min(num_boxes, bits - 1))
    cuts = [f"c{p + 1}" for p in positions]
    incomplete = cut_black_boxes(spec, cuts)
    bug_candidates = [f"s{i}" for i in range(bits)]
    name = f"adder_{bits}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "adder", spec, incomplete, buggy, bug_candidates, rng)


def make_bitcell(cells: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """Bitcell arbiter instance: grant gates of some cells cut out."""
    rng = random.Random(seed)
    spec = bitcell_arbiter(cells)
    positions = rng.sample(range(1, cells), min(num_boxes, cells - 1))
    cuts = [f"gr{p}" for p in positions]
    incomplete = cut_black_boxes(spec, cuts)
    bug_candidates = [f"gr{i}" for i in range(cells) if i not in positions]
    name = f"bitcell_{cells}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "bitcell", spec, incomplete, buggy, bug_candidates, rng)


def make_lookahead(
    blocks: int, num_boxes: int, buggy: bool, seed: int = 0, block_size: int = 4
) -> PecInstance:
    """Lookahead arbiter instance: per-block any-request gates cut out."""
    rng = random.Random(seed)
    spec = lookahead_arbiter(blocks, block_size)
    positions = rng.sample(range(blocks), min(num_boxes, blocks))
    cuts = [f"any{b}" for b in positions]
    incomplete = cut_black_boxes(spec, cuts)
    # grants inside un-cut blocks that precede every cut block are BB-free
    bug_candidates = [f"gr{i}" for i in range(blocks * block_size)]
    name = f"lookahead_{blocks}x{block_size}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "lookahead", spec, incomplete, buggy, bug_candidates, rng)


def make_pec_xor(length: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """XOR-chain instance: interior XOR gates cut out."""
    rng = random.Random(seed)
    spec = xor_chain(length)
    interior = [f"t{i}" for i in range(1, length - 1)]
    positions = rng.sample(interior, min(num_boxes, len(interior)))
    incomplete = cut_black_boxes(spec, positions)
    # the final gate drives the only output; its cone contains the boxes,
    # so bugs go into the *spec-equivalent* tail by complementing "out"
    # only when the chain end is BB-free — otherwise bug an input tap.
    bug_candidates = ["out"]
    name = f"pec_xor_{length}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    if buggy:
        # complementing 'out' always works for realizability analysis even
        # with boxes upstream: parity of remaining chain cannot flip sign?
        # It can — boxes could absorb an inversion.  Instead extend the
        # spec with an extra input tap the implementation lacks.
        spec_bug = xor_chain(length)
        impl = incomplete
        # spec computes parity; bugged impl ties the last stage to AND
        impl = _xor_break_tail(incomplete)
        formula = encode_pec(spec_bug, impl)
        return PecInstance(name, "pec_xor", formula, False, spec_bug, impl)
    return _finish(name, "pec_xor", spec, incomplete, False, bug_candidates, rng)


def _xor_break_tail(incomplete: Circuit) -> Circuit:
    """Replace the final XOR by AND: unrealizable because no black-box
    choice can recover the parity function through a non-linear tail."""
    bugged = Circuit(incomplete.name + "_bug", incomplete.inputs, incomplete.outputs)
    for gate in incomplete.gates:
        if gate.output == "out":
            bugged.add_gate("out", "and", gate.inputs)
        else:
            bugged.add_gate(gate.output, gate.kind, gate.inputs)
    for box in incomplete.black_boxes:
        bugged.add_black_box(box.name, box.inputs, box.outputs)
    return bugged


def make_z4(bits: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """z4ml-style carry-select adder instance: selection muxes cut out."""
    rng = random.Random(seed)
    spec = z4ml_like(bits)
    half = bits // 2
    candidates = [f"selhi{i}" for i in range(half, bits)] + [
        f"sello{i}" for i in range(half, bits)
    ]
    positions = rng.sample(candidates, min(num_boxes, len(candidates)))
    incomplete = cut_black_boxes(spec, positions)
    bug_candidates = [f"s{i}" for i in range(half)]  # lower half is BB-free
    name = f"z4_{bits}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "z4", spec, incomplete, buggy, bug_candidates, rng)


def make_comp(bits: int, num_boxes: int, buggy: bool, seed: int = 0) -> PecInstance:
    """Comparator instance: whole comparator stages cut out as regions.

    Region boxes have wide interfaces (a_i, b_i, eq_in, gt_in ->
    eq_out, gt_out), which is what makes comp hard for elimination.
    """
    rng = random.Random(seed)
    spec = comp_like(bits)
    stage_indices = rng.sample(range(bits - 1), min(num_boxes, bits - 1))
    incomplete = spec
    for n, i in enumerate(sorted(stage_indices, reverse=True)):
        region = [f"x{i}", f"nb{i}", f"w{i}", f"v{i}", f"gtc{i}", f"eqc{i}"]
        incomplete = cut_region_black_box(incomplete, region, f"bb{n}")
    incomplete.name = spec.name + "_inc"
    # `par` is computed by a stand-alone XOR, so its cone is always
    # black-box free: the canonical bug location for UNSAT instances.
    bug_candidates = ["par"]
    name = f"comp_{bits}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "comp", spec, incomplete, buggy, bug_candidates, rng)


def make_c432(
    groups: int, channels: int, num_boxes: int, buggy: bool, seed: int = 0
) -> PecInstance:
    """C432-style interrupt controller: per-group encoders cut as regions."""
    rng = random.Random(seed)
    spec = c432_like(groups, channels)
    group_indices = rng.sample(range(groups), min(num_boxes, groups))
    incomplete = spec
    for n, g in enumerate(sorted(group_indices, reverse=True)):
        region = []
        for k in range(channels):
            region.append(f"sel{g}_{k}")
            region.append(f"tk{g}_{k}")
            if k > 0:
                region.append(f"ntk{g}_{k}")
        incomplete = cut_region_black_box(incomplete, region, f"bb{n}")
    incomplete.name = spec.name + "_inc"
    bug_candidates = [f"grant{g}" for g in range(groups)]
    name = f"c432_{groups}x{channels}_{num_boxes}b_s{seed}_{'bug' if buggy else 'ok'}"
    return _finish(name, "c432", spec, incomplete, buggy, bug_candidates, rng)


# ----------------------------------------------------------------------
# suite generation
# ----------------------------------------------------------------------

def generate_family(
    family: str,
    count: int,
    scale: float = 1.0,
    sat_fraction: float = 0.2,
    seed: int = 2015,
) -> List[PecInstance]:
    """Generate ``count`` instances of a family at a given size ``scale``.

    ``sat_fraction`` controls the realizable/unrealizable mix (the paper's
    suite is mostly UNSAT: 213 SAT / 1342 UNSAT among solved).

    The per-family stream is derived with a *stable* hash (``zlib.crc32``)
    rather than ``hash()``, whose per-process randomization would make
    parallel/sharded workers regenerate *different* suites for the same
    seed.
    """
    rng = random.Random(seed ^ zlib.crc32(family.encode("ascii")))
    instances: List[PecInstance] = []
    for _index in range(count):
        buggy = rng.random() >= sat_fraction
        inst_seed = rng.randrange(1 << 30)
        size_jitter = rng.choice([0, 0, 1, 1, 2])
        if family == "adder":
            bits = max(3, int(4 * scale) + size_jitter)
            boxes = rng.choice([1, 2, 2])
            instances.append(make_adder(bits, boxes, buggy, inst_seed))
        elif family == "bitcell":
            cells = max(4, int(5 * scale) + size_jitter)
            boxes = rng.choice([1, 2, 2])
            instances.append(make_bitcell(cells, boxes, buggy, inst_seed))
        elif family == "lookahead":
            blocks = max(2, int(2 * scale) + size_jitter)
            boxes = rng.choice([1, 2])
            instances.append(make_lookahead(blocks, boxes, buggy, inst_seed))
        elif family == "pec_xor":
            length = max(4, int(6 * scale) + size_jitter)
            boxes = rng.choice([1, 2])
            instances.append(make_pec_xor(length, boxes, buggy, inst_seed))
        elif family == "z4":
            bits = max(4, 2 * (int(2 * scale) + size_jitter // 2))
            boxes = rng.choice([1, 2])
            instances.append(make_z4(bits, boxes, buggy, inst_seed))
        elif family == "comp":
            bits = max(4, int(5 * scale) + size_jitter)
            boxes = rng.choice([2, 2, 3])
            instances.append(make_comp(bits, boxes, buggy, inst_seed))
        elif family == "c432":
            channels = max(3, int(4 * scale) + size_jitter)
            boxes = rng.choice([2, 3])
            instances.append(make_c432(3, channels, boxes, buggy, inst_seed))
        elif family == "mult":
            bits = max(2, int(2 * scale) + size_jitter // 2)
            boxes = rng.choice([1, 2])
            instances.append(make_mult(bits, boxes, buggy, inst_seed))
        else:
            raise ValueError(f"unknown family {family!r}")
    return instances
