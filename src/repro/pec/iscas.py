"""Synthetic stand-ins for the ISCAS'85-style circuits of the paper.

The paper's z4, comp and C432 PEC benchmarks are built from the ISCAS'85
library (z4ml: a small carry-select adder; comp: an iterative magnitude
comparator; C432: a 27-channel priority interrupt controller).  We
reconstruct parameterized netlists with the same *structure* — adder
with redundant carry chains, iterative comparator cells, grouped
priority encoding — so the PEC instances cut from them exercise the
same solver behaviour (wide black-box interfaces, deep carry/priority
chains) at laptop scale.
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit


def z4ml_like(bits: int = 4, name: str = "z4") -> Circuit:
    """A carry-select adder in the spirit of z4ml.

    Inputs ``a0..``, ``b0..``, ``cin``; outputs the sum bits ``s0..``.
    The upper half is computed twice (for carry-in 0 and 1) and selected
    by the real carry — the redundant structure that makes z4ml PEC
    instances interesting.
    """
    inputs = [f"a{i}" for i in range(bits)] + [f"b{i}" for i in range(bits)] + ["cin"]
    outputs = [f"s{i}" for i in range(bits)]
    c = Circuit(name, inputs, outputs)

    half = bits // 2
    # lower half: plain ripple
    carry = "cin"
    for i in range(half):
        c.add_gate(f"p{i}", "xor", [f"a{i}", f"b{i}"])
        c.add_gate(f"g{i}", "and", [f"a{i}", f"b{i}"])
        c.add_gate(f"s{i}", "xor", [f"p{i}", carry])
        c.add_gate(f"t{i}", "and", [f"p{i}", carry])
        c.add_gate(f"c{i + 1}", "or", [f"g{i}", f"t{i}"])
        carry = f"c{i + 1}"

    # upper half: two ripple chains, selected by `carry`
    for tag, cin0 in (("z", "k0"), ("o", "k1")):
        const = "const0" if tag == "z" else "const1"
        c.add_gate(cin0, const, [])
        chain = cin0
        for i in range(half, bits):
            c.add_gate(f"{tag}p{i}", "xor", [f"a{i}", f"b{i}"])
            c.add_gate(f"{tag}g{i}", "and", [f"a{i}", f"b{i}"])
            c.add_gate(f"{tag}s{i}", "xor", [f"{tag}p{i}", chain])
            c.add_gate(f"{tag}t{i}", "and", [f"{tag}p{i}", chain])
            c.add_gate(f"{tag}c{i + 1}", "or", [f"{tag}g{i}", f"{tag}t{i}"])
            chain = f"{tag}c{i + 1}"

    # selection muxes: s_i = carry ? o_s_i : z_s_i
    for i in range(half, bits):
        c.add_gate(f"selhi{i}", "and", ["carrysel", f"os{i}"])
        c.add_gate(f"sello{i}", "and", ["ncarrysel", f"zs{i}"])
        c.add_gate(f"s{i}", "or", [f"selhi{i}", f"sello{i}"])
    c.add_gate("carrysel", "buf", [carry])
    c.add_gate("ncarrysel", "not", ["carrysel"])
    return c


def comp_like(bits: int = 4, name: str = "comp") -> Circuit:
    """An iterative magnitude comparator (the `comp` stand-in).

    Inputs ``a0..``, ``b0..`` (LSB first); outputs ``gt``, ``eq`` and a
    parity flag ``par`` over the ``a`` operand (real comparator ICs often
    bundle such check bits; here it also gives PEC bug injection a
    black-box-free cone).  Each stage updates (eq, gt) from the next more
    significant bit pair, forming the long combinational chain
    characteristic of comp.
    """
    inputs = [f"a{i}" for i in range(bits)] + [f"b{i}" for i in range(bits)]
    c = Circuit(name, inputs, ["gt", "eq", "par"])
    c.add_gate("par", "xor", [f"a{i}" for i in range(bits)])
    c.add_gate("eqin", "const1", [])
    c.add_gate("gtin", "const0", [])
    eq_prev, gt_prev = "eqin", "gtin"
    # iterate from MSB down to LSB
    for _rank, i in enumerate(reversed(range(bits))):
        c.add_gate(f"x{i}", "xnor", [f"a{i}", f"b{i}"])
        c.add_gate(f"nb{i}", "not", [f"b{i}"])
        c.add_gate(f"w{i}", "and", [f"a{i}", f"nb{i}"])       # a_i > b_i
        c.add_gate(f"v{i}", "and", [eq_prev, f"w{i}"])        # still equal, now bigger
        c.add_gate(f"gtc{i}", "or", [gt_prev, f"v{i}"])
        c.add_gate(f"eqc{i}", "and", [eq_prev, f"x{i}"])
        eq_prev, gt_prev = f"eqc{i}", f"gtc{i}"
    c.add_gate("gt", "buf", [gt_prev])
    c.add_gate("eq", "buf", [eq_prev])
    return c


def c432_like(groups: int = 3, channels: int = 4, name: str = "c432") -> Circuit:
    """A grouped priority interrupt controller (the C432 stand-in).

    ``groups`` request groups with ``channels`` request lines each plus a
    per-group enable.  The controller grants the highest-priority group
    with an active enabled request and encodes the granted channel
    within the group.  Outputs: per-group grant flags and the binary
    channel index.
    """
    inputs: List[str] = []
    for g in range(groups):
        inputs.append(f"en{g}")
        inputs += [f"r{g}_{k}" for k in range(channels)]
    index_bits = max(1, (channels - 1).bit_length())
    outputs = [f"grant{g}" for g in range(groups)] + [f"idx{b}" for b in range(index_bits)]
    c = Circuit(name, inputs, outputs)

    # per-group: any enabled request
    for g in range(groups):
        c.add_gate(f"anyreq{g}", "or", [f"r{g}_{k}" for k in range(channels)])
        c.add_gate(f"act{g}", "and", [f"en{g}", f"anyreq{g}"])

    # group priority: grant g iff act_g and no lower-indexed group active
    blocked = None
    for g in range(groups):
        if blocked is None:
            c.add_gate(f"grant{g}", "buf", [f"act{g}"])
            c.add_gate(f"blk{g}", "buf", [f"act{g}"])
        else:
            c.add_gate(f"nblk{g}", "not", [blocked])
            c.add_gate(f"grant{g}", "and", [f"act{g}", f"nblk{g}"])
            c.add_gate(f"blk{g}", "or", [blocked, f"act{g}"])
        blocked = f"blk{g}"

    # per-group channel priority encoder, masked by the group grant
    for g in range(groups):
        taken = None
        for k in range(channels):
            if taken is None:
                c.add_gate(f"sel{g}_{k}", "buf", [f"r{g}_{k}"])
                c.add_gate(f"tk{g}_{k}", "buf", [f"r{g}_{k}"])
            else:
                c.add_gate(f"ntk{g}_{k}", "not", [taken])
                c.add_gate(f"sel{g}_{k}", "and", [f"r{g}_{k}", f"ntk{g}_{k}"])
                c.add_gate(f"tk{g}_{k}", "or", [taken, f"r{g}_{k}"])
            taken = f"tk{g}_{k}"
            c.add_gate(f"msel{g}_{k}", "and", [f"sel{g}_{k}", f"grant{g}"])

    # binary index of the selected channel, OR-ed across groups
    for b in range(index_bits):
        contributors = [
            f"msel{g}_{k}"
            for g in range(groups)
            for k in range(channels)
            if (k >> b) & 1
        ]
        if contributors:
            c.add_gate(f"idx{b}", "or", contributors)
        else:  # pragma: no cover - only for channels == 1
            c.add_gate(f"idx{b}", "const0", [])
    return c
