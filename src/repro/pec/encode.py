"""PEC -> DQBF encoding (the reference application, following [10]).

Given a complete *specification* circuit ``S`` and an incomplete
*implementation* ``I`` containing black boxes, the realizability
question — can the black boxes be implemented so that ``I`` becomes
equivalent to ``S``? — is encoded as the DQBF

    forall x  forall z   exists y_b(z_b) ... :
        (AND_b  z_b == In_b(x, y))  ->  (I(x, y) == S(x))

where ``x`` are the primary inputs, ``z_b`` fresh universal copies of
black box ``b``'s input signals and ``y_b`` its outputs, which may
depend exactly on ``z_b``.  The implication makes the Skolem functions
for ``y_b`` — i.e. candidate black-box implementations — only
accountable on the input combinations the circuit can actually produce.

The matrix is Tseitin-encoded to CNF; auxiliary variables are
existential with full dependency sets, exactly like DQDIMACS instances
produced from real netlists, so HQS's gate detection has real work to
do.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..aig.cnf_bridge import aig_to_cnf
from ..aig.graph import Aig, complement
from ..formula.dqbf import Dqbf
from ..formula.prefix import DependencyPrefix
from .circuit import BlackBox, Circuit


class PecInstance:
    """A generated PEC problem: the DQBF plus provenance metadata."""

    def __init__(
        self,
        name: str,
        family: str,
        formula: Dqbf,
        expected: Optional[bool],
        spec: Circuit,
        impl: Circuit,
    ):
        self.name = name
        self.family = family
        self.formula = formula
        self.expected = expected
        self.spec = spec
        self.impl = impl

    def __repr__(self) -> str:
        tag = {True: "SAT", False: "UNSAT", None: "?"}[self.expected]
        return f"PecInstance({self.name}, expected={tag})"


class PecVariableMap:
    """The variable numbering used by :func:`encode_pec`.

    ``input_var`` maps primary inputs, ``z_var`` maps (box, signal)
    pairs to the universal copies of box inputs, ``y_var`` maps
    black-box output signals to their existential variables.
    """

    def __init__(
        self,
        input_var: Dict[str, int],
        z_var: Dict[Tuple[str, str], int],
        y_var: Dict[str, int],
    ):
        self.input_var = dict(input_var)
        self.z_var = dict(z_var)
        self.y_var = dict(y_var)


def encode_pec(spec: Circuit, impl: Circuit) -> Dqbf:
    """Encode the PEC problem for ``spec`` vs ``impl`` as a DQBF."""
    formula, _variables = encode_pec_with_map(spec, impl)
    return formula


def encode_pec_with_map(spec: Circuit, impl: Circuit) -> Tuple[Dqbf, PecVariableMap]:
    """Like :func:`encode_pec` but also return the variable numbering."""
    spec.validate()
    impl.validate()
    if not spec.is_complete:
        raise ValueError("specification must be complete (no black boxes)")
    if set(spec.inputs) != set(impl.inputs):
        raise ValueError("spec and implementation must share primary inputs")
    if set(spec.outputs) != set(impl.outputs):
        raise ValueError("spec and implementation must share primary outputs")

    # --- variable allocation -------------------------------------------------
    next_var = 1
    input_var: Dict[str, int] = {}
    for pi in impl.inputs:
        input_var[pi] = next_var
        next_var += 1
    z_var: Dict[Tuple[str, str], int] = {}
    for box in impl.black_boxes:
        for sig in box.inputs:
            z_var[(box.name, sig)] = next_var
            next_var += 1
    y_var: Dict[str, int] = {}
    y_deps: Dict[str, List[int]] = {}
    for box in impl.black_boxes:
        box_z = [z_var[(box.name, sig)] for sig in box.inputs]
        for out in box.outputs:
            y_var[out] = next_var
            y_deps[out] = box_z
            next_var += 1

    # --- matrix construction -------------------------------------------------
    aig = Aig()
    pi_edges = {pi: aig.var(var) for pi, var in input_var.items()}
    y_edges = {out: aig.var(var) for out, var in y_var.items()}

    impl_edges = impl.to_aig(aig, pi_edges, y_edges)
    spec_edges = spec.to_aig(aig, pi_edges)

    antecedent_terms = []
    for box in impl.black_boxes:
        for sig in box.inputs:
            z_edge = aig.var(z_var[(box.name, sig)])
            antecedent_terms.append(aig.lxnor(z_edge, impl_edges[sig]))
    antecedent = aig.land_many(antecedent_terms)

    consequent_terms = [
        aig.lxnor(impl_edges[out], spec_edges[out]) for out in impl.outputs
    ]
    consequent = aig.land_many(consequent_terms)

    matrix_edge = aig.lor(complement(antecedent), consequent)

    # --- CNF + prefix ---------------------------------------------------------
    # Tseitin auxiliaries must start above *all* allocated variables, not
    # just those surviving in the (possibly simplified) matrix cone.
    cnf, root_lit, _node_var = aig_to_cnf(aig, matrix_edge, start_var=next_var - 1)
    cnf.add_clause([root_lit])

    prefix = DependencyPrefix()
    universals: List[int] = []
    for pi in impl.inputs:
        prefix.add_universal(input_var[pi])
        universals.append(input_var[pi])
    for key in z_var:
        prefix.add_universal(z_var[key])
        universals.append(z_var[key])
    for out, var in y_var.items():
        prefix.add_existential(var, y_deps[out])
    cnf_vars = cnf.variables()
    for var in sorted(cnf_vars):
        if not prefix.quantifies(var):
            prefix.add_existential(var, universals)  # Tseitin auxiliaries

    return Dqbf(prefix, cnf), PecVariableMap(input_var, z_var, y_var)


# ----------------------------------------------------------------------
# ground-truth oracle for small instances
# ----------------------------------------------------------------------

def brute_force_realizable(spec: Circuit, impl: Circuit, limit: int = 1 << 22) -> bool:
    """Enumerate all black-box implementations and simulate (test oracle).

    Only feasible for tiny interfaces; raises ``ValueError`` beyond
    ``limit`` candidate combinations.
    """
    spec.validate()
    impl.validate()
    boxes = impl.black_boxes
    table_sizes = []
    for box in boxes:
        rows = 1 << len(box.inputs)
        for _out in box.outputs:
            table_sizes.append(rows)
    total = 1
    for rows in table_sizes:
        total *= 1 << rows
        if total > limit:
            raise ValueError(f"too many black box candidates ({total} > {limit})")

    output_specs: List[Tuple[str, BlackBox]] = [
        (out, box) for box in boxes for out in box.outputs
    ]
    input_vectors = list(itertools.product((False, True), repeat=len(impl.inputs)))

    def tables_work(tables: Dict[str, Dict[Tuple[bool, ...], bool]]) -> bool:
        for vector in input_vectors:
            assignment = dict(zip(impl.inputs, vector))
            if impl.simulate(assignment, tables) != spec.simulate(assignment):
                return False
        return True

    choices = []
    for out, box in output_specs:
        rows = list(itertools.product((False, True), repeat=len(box.inputs)))
        choices.append([(out, rows, bits) for bits in
                        itertools.product((False, True), repeat=len(rows))])

    for combo in itertools.product(*choices):
        tables: Dict[str, Dict[Tuple[bool, ...], bool]] = {}
        for out, rows, bits in combo:
            tables[out] = dict(zip(rows, bits))
        if tables_work(tables):
            return True
    return False
