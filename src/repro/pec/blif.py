"""BLIF reader/writer for (incomplete) combinational circuits.

Supports the subset needed for PEC workflows:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end``;
* ``.names`` single-output covers (arbitrary SOP covers are imported by
  synthesizing AND/OR/NOT networks; gates exported by this writer round
  trip to their original kinds);
* black boxes in standard BLIF style: a ``.model`` declared
  ``.blackbox`` plus ``.subckt`` instantiations in the main model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .circuit import Circuit, Gate


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def write_blif(circuit: Circuit) -> str:
    """Serialize a circuit; black boxes become ``.blackbox`` sub-models."""
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(circuit.inputs))
    lines.append(".outputs " + " ".join(circuit.outputs))
    for box in circuit.black_boxes:
        formals = [f"{_formal_in(i)}={sig}" for i, sig in enumerate(box.inputs)]
        formals += [f"{_formal_out(i)}={sig}" for i, sig in enumerate(box.outputs)]
        lines.append(f".subckt {box.name} " + " ".join(formals))
    for gate in circuit.gates:
        lines.extend(_gate_cover(gate))
    lines.append(".end")
    for box in circuit.black_boxes:
        lines.append("")
        lines.append(f".model {box.name}")
        lines.append(".inputs " + " ".join(_formal_in(i) for i in range(len(box.inputs))))
        lines.append(".outputs " + " ".join(_formal_out(i) for i in range(len(box.outputs))))
        lines.append(".blackbox")
        lines.append(".end")
    return "\n".join(lines) + "\n"


def _formal_in(index: int) -> str:
    return f"in{index}"


def _formal_out(index: int) -> str:
    return f"out{index}"


def _gate_cover(gate: Gate) -> List[str]:
    header = ".names " + " ".join(gate.inputs + [gate.output])
    n = len(gate.inputs)
    if gate.kind == "const0":
        return [f".names {gate.output}"]
    if gate.kind == "const1":
        return [f".names {gate.output}", "1"]
    if gate.kind == "buf":
        return [header, "1 1"]
    if gate.kind == "not":
        return [header, "0 1"]
    if gate.kind == "and":
        return [header, "1" * n + " 1"]
    if gate.kind == "nand":
        rows = []
        for i in range(n):
            rows.append("-" * i + "0" + "-" * (n - i - 1) + " 1")
        return [header] + rows
    if gate.kind == "or":
        rows = []
        for i in range(n):
            rows.append("-" * i + "1" + "-" * (n - i - 1) + " 1")
        return [header] + rows
    if gate.kind == "nor":
        return [header, "0" * n + " 1"]
    if gate.kind in ("xor", "xnor"):
        want_odd = gate.kind == "xor"
        rows = []
        for bits in range(1 << n):
            ones = bin(bits).count("1")
            if (ones % 2 == 1) == want_odd:
                pattern = "".join(
                    "1" if (bits >> i) & 1 else "0" for i in range(n)
                )
                rows.append(pattern + " 1")
        return [header] + rows
    raise BlifError(f"cannot export gate kind {gate.kind}")  # pragma: no cover


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

def parse_blif(text: str) -> Circuit:
    """Parse BLIF text; returns the first (main) model as a circuit."""
    models = _split_models(text)
    if not models:
        raise BlifError("no .model found")
    main = models[0]
    boxes = {m["name"]: m for m in models[1:] if m["blackbox"]}

    circuit = Circuit(main["name"], main["inputs"], main["outputs"])
    fresh = _FreshNames(set(main["inputs"]))

    for formals, model_name in main["subckts"]:
        spec = boxes.get(model_name)
        if spec is None:
            raise BlifError(f".subckt references unknown black box {model_name!r}")
        binding = dict(formals)
        try:
            box_inputs = [binding[f] for f in spec["inputs"]]
            box_outputs = [binding[f] for f in spec["outputs"]]
        except KeyError as exc:
            raise BlifError(f"unbound formal {exc} in subckt {model_name}") from exc
        circuit.add_black_box(fresh.unique(model_name), box_inputs, box_outputs)

    for names_inputs, output, rows in main["names"]:
        _import_cover(circuit, fresh, names_inputs, output, rows)
    return circuit


class _FreshNames:
    def __init__(self, taken):
        self._taken = set(taken)
        self._counter = 0

    def unique(self, base: str) -> str:
        name = base
        while name in self._taken:
            self._counter += 1
            name = f"{base}_{self._counter}"
        self._taken.add(name)
        return name

    def temp(self, base: str) -> str:
        self._counter += 1
        return self.unique(f"{base}__t{self._counter}")


def _split_models(text: str) -> List[dict]:
    models: List[dict] = []
    current: Optional[dict] = None
    pending_names: Optional[Tuple[List[str], str, List[str]]] = None

    def flush_names():
        nonlocal pending_names
        if current is not None and pending_names is not None:
            current["names"].append(pending_names)
        pending_names = None

    logical_lines = _logical_lines(text)
    for line in logical_lines:
        tokens = line.split()
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == ".model":
            flush_names()
            current = {
                "name": tokens[1] if len(tokens) > 1 else f"model{len(models)}",
                "inputs": [],
                "outputs": [],
                "names": [],
                "subckts": [],
                "blackbox": False,
            }
            models.append(current)
        elif current is None:
            raise BlifError(f"directive before .model: {line!r}")
        elif keyword == ".inputs":
            current["inputs"].extend(tokens[1:])
        elif keyword == ".outputs":
            current["outputs"].extend(tokens[1:])
        elif keyword == ".blackbox":
            current["blackbox"] = True
        elif keyword == ".subckt":
            if len(tokens) < 2:
                raise BlifError(f"malformed .subckt: {line!r}")
            formals = []
            for assignment in tokens[2:]:
                if "=" not in assignment:
                    raise BlifError(f"malformed formal binding {assignment!r}")
                formal, actual = assignment.split("=", 1)
                formals.append((formal, actual))
            current["subckts"].append((formals, tokens[1]))
        elif keyword == ".names":
            flush_names()
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names needs at least an output")
            pending_names = (signals[:-1], signals[-1], [])
        elif keyword == ".end":
            flush_names()
            current = None
        elif keyword.startswith("."):
            raise BlifError(f"unsupported directive {keyword!r}")
        else:
            if pending_names is None:
                raise BlifError(f"cover row outside .names: {line!r}")
            pending_names[2].append(line)
    flush_names()
    return models


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        buffer += line
        if buffer.strip():
            lines.append(buffer.strip())
        buffer = ""
    if buffer.strip():
        lines.append(buffer.strip())
    return lines


def _import_cover(
    circuit: Circuit,
    fresh: _FreshNames,
    inputs: List[str],
    output: str,
    rows: List[str],
) -> None:
    """Synthesize a gate network computing a single-output SOP cover."""
    if not rows:
        circuit.add_gate(output, "const0", [])
        return
    parsed = []
    for row in rows:
        parts = row.split()
        if len(parts) == 1 and not inputs:
            if parts[0] != "1":
                raise BlifError(f"constant cover row must be '1', got {row!r}")
            circuit.add_gate(output, "const1", [])
            return
        if len(parts) != 2:
            raise BlifError(f"malformed cover row {row!r}")
        pattern, value = parts
        if len(pattern) != len(inputs):
            raise BlifError(f"pattern width mismatch in {row!r}")
        if value != "1":
            raise BlifError("only 1-covers are supported (writer emits 1-covers)")
        parsed.append(pattern)

    term_signals: List[str] = []
    for pattern in parsed:
        literal_signals: List[str] = []
        for signal, care in zip(inputs, pattern):
            if care == "-":
                continue
            if care == "1":
                literal_signals.append(signal)
            elif care == "0":
                inverted = fresh.temp(f"n_{signal}")
                circuit.add_gate(inverted, "not", [signal])
                literal_signals.append(inverted)
            else:
                raise BlifError(f"invalid cover character {care!r}")
        if not literal_signals:
            # a row of don't-cares: constant 1 term
            const = fresh.temp("one")
            circuit.add_gate(const, "const1", [])
            term_signals.append(const)
        elif len(literal_signals) == 1:
            term_signals.append(literal_signals[0])
        else:
            term = fresh.temp("and")
            circuit.add_gate(term, "and", literal_signals)
            term_signals.append(term)

    if len(term_signals) == 1:
        circuit.add_gate(output, "buf", [term_signals[0]])
    else:
        circuit.add_gate(output, "or", term_signals)


def save_blif(circuit: Circuit, path: str) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_blif(circuit))


def load_blif(path: str) -> Circuit:
    with open(path, "r", encoding="ascii") as handle:
        return parse_blif(handle.read())
