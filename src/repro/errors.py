"""Shared resource-limit exceptions.

Defined at the top level so that low-level packages (``repro.aig``,
``repro.sat``) can signal limit exhaustion without importing the solver
core; :mod:`repro.core.result` re-exports them.
"""


class TimeoutExceeded(Exception):
    """Raised when a solve exceeds its wall-clock budget."""


class NodeLimitExceeded(Exception):
    """Raised when a solve exceeds its AIG node budget (memout stand-in)."""
