"""Shared resource-limit exceptions and the failure taxonomy.

Defined at the top level so that low-level packages (``repro.aig``,
``repro.sat``) can signal limit exhaustion without importing the solver
core; :mod:`repro.core.result` re-exports them.

Every exhaustion exception derives from :class:`ResourceExhausted` and
names the resource that ran out (``time``, ``nodes``, ``conflicts``).
When raised by a :class:`~repro.core.guard.ResourceGuard` it carries a
:class:`FailureDiagnosis` describing *where* the solve stood — the
pipeline stage, the exhausted resource and a progress snapshot — which
the solver front ends surface as ``SolveResult.failure`` instead of
letting the traceback escape.
"""

from __future__ import annotations

from typing import Dict, Optional


class FailureDiagnosis:
    """Machine-readable account of a resource-limited (partial) solve.

    ``stage`` names the pipeline stage that was running when the budget
    ran out (``preprocess``, ``selection``, ``elimination``, ``fraig``,
    ``qbf-backend``, ``sat-endgame``, ...), ``resource`` the exhausted
    budget (``time``, ``nodes`` or ``conflicts``), and ``progress`` a
    snapshot of whatever forward progress the stage had made (eliminated
    variables, matrix size, instantiation rounds, ...).
    """

    def __init__(
        self,
        stage: str,
        resource: str,
        progress: Optional[Dict[str, float]] = None,
        elapsed: float = 0.0,
    ) -> None:
        self.stage = stage
        self.resource = resource
        self.progress = dict(progress or {})
        self.elapsed = elapsed

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "resource": self.resource,
            "progress": dict(self.progress),
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureDiagnosis":
        return cls(
            stage=str(data.get("stage", "unknown")),
            resource=str(data.get("resource", "unknown")),
            progress=dict(data.get("progress") or {}),
            elapsed=float(data.get("elapsed", 0.0)),
        )

    def __repr__(self) -> str:
        return (
            f"FailureDiagnosis(stage={self.stage!r}, resource={self.resource!r}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


class ResourceExhausted(Exception):
    """Base of every budget-exhaustion signal.

    ``diagnosis`` is attached by the :class:`ResourceGuard` that raised
    the exception; ad-hoc raises (deadline checks deep in the SAT
    solver) may leave it ``None``, in which case the catching solver
    synthesizes one from its own guard.
    """

    resource = "resource"

    def __init__(self, message: str = "", diagnosis: Optional[FailureDiagnosis] = None):
        super().__init__(message or self.resource)
        self.diagnosis = diagnosis


class TimeoutExceeded(ResourceExhausted):
    """Raised when a solve exceeds its wall-clock budget."""

    resource = "time"


class NodeLimitExceeded(ResourceExhausted):
    """Raised when a solve exceeds its AIG node budget (memout stand-in)."""

    resource = "nodes"


class ConflictLimitExceeded(ResourceExhausted):
    """Raised when a solve exceeds its SAT-conflict budget."""

    resource = "conflicts"


class StageBudgetExceeded(ResourceExhausted):
    """A *stage slice* (not the whole solve) ran out of budget.

    Raised inside degradable pipeline stages (MaxSAT selection, FRAIG
    sweeping, the QBF back-end) when their carved-out sub-budget is
    gone.  Never escapes the solver: the degradation ladder catches it
    and falls back to the cheaper alternative procedure.
    """

    resource = "stage"
