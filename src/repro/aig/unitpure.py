"""Syntactic unit and pure variable detection on AIGs (Theorem 6).

The paper replaces the classical CNF criteria (Lemma 2) with a linear
AIG traversal:

* ``v`` is **positive unit** if there is a path from the input node of
  ``v`` to the output without any negation; **negative unit** if the
  only negation on such a path sits directly on the edge leaving the
  input node.  Operationally: walk the top-level conjunction cone of
  the output (descend through AND nodes along *uncomplemented* edges
  only) and look at the input nodes hanging off it.
* ``v`` is **positive pure** if the number of negations on *all* paths
  from its input node to the output is even, **negative pure** if it is
  odd on all paths.  Operationally: propagate reachability parities top
  down; an input reached under exactly one parity is pure.

Both checks are sufficient but not necessary (cf. Example 4); the cost
is ``O(|phi| + |V|)``.
"""

from __future__ import annotations

from typing import Dict, Set

from .graph import Aig, FALSE, TRUE, is_complemented, node_of


class UnitPureInfo:
    """Result of a detection pass.

    ``units`` maps variables to the polarity of the *unit literal*
    (``True`` means the positive literal is implied, i.e. the variable
    must be 1 in every satisfying assignment).  ``pures`` maps variables
    to the polarity in which they occur.
    """

    def __init__(self, units: Dict[int, bool], pures: Dict[int, bool]):
        self.units = units
        self.pures = pures

    def __bool__(self) -> bool:
        return bool(self.units) or bool(self.pures)

    def __repr__(self) -> str:
        return f"UnitPureInfo(units={self.units}, pures={self.pures})"


def find_units(aig: Aig, root: int) -> Dict[int, bool]:
    """Variables implied to a constant in every model of ``root`` (syntactic).

    Returns ``{var: forced_value}``.
    """
    units: Dict[int, bool] = {}
    if root in (TRUE, FALSE):
        return units
    node = node_of(root)
    if is_complemented(root):
        # phi = !n.  Only when n is an input is a (negative) unit visible.
        if aig.is_input(node):
            units[aig.input_label(node)] = False
        return units
    # Walk the top-level conjunction: descend through uncomplemented AND edges.
    stack = [node]
    seen: Set[int] = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if aig.is_input(node):
            units[aig.input_label(node)] = True
            continue
        if not aig.is_and(node):
            continue
        for fanin in aig.fanins(node):
            child = node_of(fanin)
            if is_complemented(fanin):
                # A single negation right above an input node: negative unit.
                if aig.is_input(child):
                    units[aig.input_label(child)] = False
            else:
                stack.append(child)
    return units


def find_pures(aig: Aig, root: int) -> Dict[int, bool]:
    """Variables occurring in only one phase in the cone of ``root`` (syntactic).

    Returns ``{var: polarity}`` with ``True`` = positive pure (even
    negation count on all paths) and ``False`` = negative pure.
    """
    pures: Dict[int, bool] = {}
    if root in (TRUE, FALSE):
        return pures
    if aig.backend == "numpy":
        # One descending level-ordered sweep over the node arrays;
        # identical parity semantics to the worklist below.
        return aig._np.find_pures(root)
    # parities[node] is a bitmask: 1 = reachable with even #negations,
    # 2 = reachable with odd #negations.
    parities: Dict[int, int] = {}
    start = node_of(root)
    start_parity = 1 if is_complemented(root) else 0
    parities[start] = 1 << start_parity
    worklist = [(start, start_parity)]
    while worklist:
        node, parity = worklist.pop()
        if not aig.is_and(node):
            continue
        for fanin in aig.fanins(node):
            child = node_of(fanin)
            child_parity = parity ^ (1 if is_complemented(fanin) else 0)
            mask = 1 << child_parity
            if parities.get(child, 0) & mask:
                continue
            parities[child] = parities.get(child, 0) | mask
            worklist.append((child, child_parity))
    for node, mask in parities.items():
        if aig.is_input(node) and mask in (1, 2):
            pures[aig.input_label(node)] = mask == 1
    return pures


_CACHE_LIMIT = 4096


def detect_unit_pure(aig: Aig, root: int) -> UnitPureInfo:
    """Run both syntactic checks; unit findings take precedence over pure.

    Results are memoized per root edge on the manager: a root's function
    (and hence its syntactic units/pures) never changes in an
    append-only AIG, so re-detection after an unrelated iteration of the
    solver loop is a cache hit.  The cache dies with the manager on
    ``extract`` (compaction renumbers nodes).  Callers must treat the
    returned info as read-only.
    """
    cache = aig._unitpure_cache
    info = cache.get(root)
    if info is not None:
        aig.counters.unitpure_cache_hits += 1
        return info
    aig.counters.unitpure_cache_misses += 1
    units = find_units(aig, root)
    pures = {v: p for v, p in find_pures(aig, root).items() if v not in units}
    info = UnitPureInfo(units, pures)
    if len(cache) >= _CACHE_LIMIT:
        cache.clear()
    cache[root] = info
    return info
