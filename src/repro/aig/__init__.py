"""And-Inverter Graph substrate (the ``aigpp`` stand-in)."""

from .aiger import AigerError, load_aiger, parse_aiger, save_aiger, write_aiger
from .cnf_bridge import TseitinEncoding, aig_to_cnf, cnf_to_aig, is_satisfiable, is_tautology
from .fraig import FraigEngine, FraigOptions, fraig_root, simulate
from .graph import (
    FALSE,
    TRUE,
    Aig,
    KernelCounters,
    complement,
    edge_of,
    is_complemented,
    node_of,
)
from .unitpure import UnitPureInfo, detect_unit_pure, find_pures, find_units

__all__ = [
    "AigerError",
    "load_aiger",
    "parse_aiger",
    "save_aiger",
    "write_aiger",
    "Aig",
    "KernelCounters",
    "FALSE",
    "TRUE",
    "complement",
    "edge_of",
    "is_complemented",
    "node_of",
    "aig_to_cnf",
    "cnf_to_aig",
    "TseitinEncoding",
    "is_satisfiable",
    "is_tautology",
    "FraigEngine",
    "FraigOptions",
    "fraig_root",
    "simulate",
    "UnitPureInfo",
    "detect_unit_pure",
    "find_pures",
    "find_units",
]
