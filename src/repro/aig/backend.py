"""Backend selection for the AIG array kernels.

The AIG core stores nodes in flat parallel arrays (struct-of-arrays).
On top of that storage two kernel backends implement the hot paths —
cone marking, dependency masks, bit-parallel simulation, support/level
sweeps:

* ``python`` — pure-Python loops over the flat arrays; always available
  and the reference semantics;
* ``numpy`` — vectorized kernels over mirrored ``numpy`` arrays
  (``pip install repro[fast]``), selected automatically when numpy
  imports.

The default is chosen **once, at import time**, from the
``REPRO_AIG_BACKEND`` environment variable:

* ``auto`` (or unset): ``numpy`` when importable, else ``python``;
* ``numpy``: require numpy, raise if it is missing;
* ``python``: force the pure-Python kernels even when numpy exists.

Individual :class:`~repro.aig.graph.Aig` managers can override the
default with ``Aig(backend=...)`` — that is how the equivalence tests
compare both backends inside one process.
"""

from __future__ import annotations

import os
from typing import Optional

_ENV_VAR = "REPRO_AIG_BACKEND"
_CHOICES = ("auto", "numpy", "python")

#: The numpy module when the numpy backend is usable, else ``None``.
_numpy = None


def _import_numpy():
    global _numpy
    if _numpy is None:
        import numpy  # noqa: PLC0415 - deliberate lazy optional import

        _numpy = numpy
    return _numpy


def _select_default() -> str:
    choice = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if choice not in _CHOICES:
        raise RuntimeError(
            f"{_ENV_VAR}={choice!r} is not a valid backend; "
            f"choose one of {', '.join(_CHOICES)}"
        )
    if choice == "python":
        return "python"
    try:
        _import_numpy()
    except ImportError:
        if choice == "numpy":
            raise RuntimeError(
                f"{_ENV_VAR}=numpy requested but numpy is not installed "
                "(pip install repro[fast])"
            ) from None
        return "python"
    return "numpy"


#: Backend used by managers constructed without an explicit override.
DEFAULT_BACKEND: str = _select_default()


def numpy_available() -> bool:
    """True when the numpy kernels can be used in this process."""
    try:
        _import_numpy()
    except ImportError:
        return False
    return True


def get_numpy():
    """Return the numpy module; raises ``RuntimeError`` when missing."""
    try:
        return _import_numpy()
    except ImportError:
        raise RuntimeError(
            "the numpy AIG backend was requested but numpy is not "
            "installed (pip install repro[fast])"
        ) from None


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to ``'python'`` or ``'numpy'``.

    ``None`` picks the import-time default; ``'auto'`` re-evaluates
    numpy availability; explicit names are validated (``'numpy'``
    raises when numpy is missing instead of silently degrading).
    """
    if name is None:
        return DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in _CHOICES:
        raise ValueError(
            f"unknown AIG backend {name!r}; choose one of {', '.join(_CHOICES)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy":
        get_numpy()  # raise early with a clear message
    return name
