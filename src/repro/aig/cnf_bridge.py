"""Conversions between CNF and AIG.

``cnf_to_aig`` builds the matrix AIG used by the DQBF/QBF solvers; the
optional gate-substitution map lets the preprocessor inline Tseitin
gates (Section III-C of the paper: "we replace all literals representing
a gate output by the function computed by its gate using the compose
operation").

``aig_to_cnf`` is the classic Tseitin encoding, used whenever a SAT call
on an AIG is needed (FRAIG sweeping, QBF endgame, constant checks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..formula.cnf import Cnf
from .graph import Aig, FALSE, TRUE, is_complemented, node_of


def cnf_to_aig(clauses: Iterable[Iterable[int]], aig: Optional[Aig] = None) -> Tuple[Aig, int]:
    """Build a balanced AND tree of clause disjunctions."""
    aig = aig if aig is not None else Aig()
    clause_edges: List[int] = []
    for clause in clauses:
        clause_edges.append(aig.lor_many(aig.literal(lit) for lit in clause))
    return aig, aig.land_many(clause_edges)


def aig_to_cnf(aig: Aig, root: int, start_var: Optional[int] = None) -> Tuple[Cnf, int]:
    """Tseitin-encode the cone of ``root``.

    Returns ``(cnf, root_literal)``: the CNF is equisatisfiable with the
    function at ``root`` once ``root_literal`` is asserted (it is *not*
    asserted by this function, so callers can encode several roots into
    one CNF and combine them freely).  Input nodes keep their external
    variable identifiers; internal AND nodes receive fresh variables
    above ``start_var`` (default: the maximum input label occurring in
    the cone — pass an explicit value whenever the caller's variable
    space contains labels that might be absent from this particular
    cone, otherwise auxiliaries would collide with them).
    """
    cone = aig.cone_nodes(root)
    max_label = start_var or 0
    for node in cone:
        if aig.is_input(node):
            max_label = max(max_label, aig.input_label(node))
    cnf = Cnf(num_vars=max_label)

    node_var: Dict[int, int] = {}

    def lit_for(edge: int) -> int:
        node = node_of(edge)
        var = node_var[node]
        return -var if is_complemented(edge) else var

    for node in cone:
        if node == 0:
            # Constant false: introduce a variable forced to 0.
            var = cnf.fresh_var()
            cnf.add_clause([-var])
            node_var[node] = var
        elif aig.is_input(node):
            node_var[node] = aig.input_label(node)
        else:
            var = cnf.fresh_var()
            node_var[node] = var
            f0, f1 = aig.fanins(node)
            a, b = lit_for(f0), lit_for(f1)
            cnf.add_clause([-var, a])
            cnf.add_clause([-var, b])
            cnf.add_clause([var, -a, -b])

    if root == TRUE:
        top = cnf.fresh_var()
        cnf.add_clause([top])
        return cnf, top
    if root == FALSE:
        top = cnf.fresh_var()
        cnf.add_clause([-top])
        return cnf, top
    return cnf, lit_for(root)


def is_satisfiable(aig: Aig, root: int, deadline: Optional[float] = None) -> bool:
    """SAT check of the function at ``root`` (semantic constant-0 test).

    Raises :class:`repro.errors.TimeoutExceeded` when ``deadline`` (a
    ``time.monotonic`` timestamp) passes mid-solve.
    """
    if root == FALSE:
        return False
    if root == TRUE:
        return True
    from ..errors import TimeoutExceeded
    from ..sat.solver import SAT, UNKNOWN, CdclSolver

    cnf, root_lit = aig_to_cnf(aig, root)
    solver = CdclSolver()
    solver.add_clauses(cnf.clauses)
    solver.add_clause([root_lit])
    status = solver.solve(deadline=deadline)
    if status == UNKNOWN:
        raise TimeoutExceeded()
    return status == SAT


def is_tautology(aig: Aig, root: int, deadline: Optional[float] = None) -> bool:
    """Semantic constant-1 test via one SAT call on the complement."""
    from .graph import complement

    return not is_satisfiable(aig, complement(root), deadline)
