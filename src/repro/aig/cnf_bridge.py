"""Conversions between CNF and AIG.

``cnf_to_aig`` builds the matrix AIG used by the DQBF/QBF solvers; the
optional gate-substitution map lets the preprocessor inline Tseitin
gates (Section III-C of the paper: "we replace all literals representing
a gate output by the function computed by its gate using the compose
operation").

``aig_to_cnf`` is the classic Tseitin encoding, used whenever a one-shot
SAT call on an AIG is needed (QBF endgame, constant checks, the iDQ
baseline).  Repeated queries on the same AIG should go through
:class:`~repro.sat.incremental.AigSatSession` instead, which encodes
lazily and keeps learned clauses; ``is_satisfiable``/``is_tautology``
accept such a session and fall back to a throwaway solver without one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, NamedTuple, Optional, Tuple

from ..formula.cnf import Cnf
from .graph import Aig, FALSE, TRUE, is_complemented, node_of

if TYPE_CHECKING:
    from ..sat.incremental import AigSatSession


def cnf_to_aig(clauses: Iterable[Iterable[int]], aig: Optional[Aig] = None) -> Tuple[Aig, int]:
    """Build a balanced AND tree of clause disjunctions.

    Pass an existing manager to control where (and on which kernel
    backend, see ``Aig(backend=...)``) the matrix is built; node
    numbering is construction-order deterministic either way, so the
    Tseitin auxiliaries derived from it are backend-independent.
    """
    aig = aig if aig is not None else Aig()
    clause_edges: List[int] = []
    for clause in clauses:
        clause_edges.append(aig.lor_many(aig.literal(lit) for lit in clause))
    return aig, aig.land_many(clause_edges)


class TseitinEncoding(NamedTuple):
    """Result of :func:`aig_to_cnf`: the clause set, the literal standing
    for the root function, and the node -> CNF-variable map the encoding
    used (input nodes map to their external labels, AND nodes to their
    auxiliaries).  Callers needing per-node literals — FRAIG-style
    sweeps, incremental services — read ``node_var`` directly instead of
    re-deriving it by mirroring the cone order."""

    cnf: Cnf
    root_literal: int
    node_var: Dict[int, int]


def aig_to_cnf(aig: Aig, root: int, start_var: Optional[int] = None) -> TseitinEncoding:
    """Tseitin-encode the cone of ``root``.

    Returns a :class:`TseitinEncoding`; the CNF is equisatisfiable with
    the function at ``root`` once ``root_literal`` is asserted (it is
    *not* asserted by this function, so callers can encode several roots
    into one CNF and combine them freely).  Input nodes keep their
    external variable identifiers; internal AND nodes receive fresh
    variables above ``start_var`` (default: the maximum input label
    occurring in the cone — pass an explicit value whenever the caller's
    variable space contains labels that might be absent from this
    particular cone, otherwise auxiliaries would collide with them).
    """
    cone = aig.cone_nodes(root)
    max_label = start_var or 0
    for node in cone:
        if aig.is_input(node):
            max_label = max(max_label, aig.input_label(node))
    cnf = Cnf(num_vars=max_label)

    node_var: Dict[int, int] = {}

    def lit_for(edge: int) -> int:
        var = node_var[node_of(edge)]
        return -var if is_complemented(edge) else var

    for node in cone:
        if node == 0:
            # Constant false: introduce a variable forced to 0.
            var = cnf.fresh_var()
            cnf.add_clause([-var])
            node_var[node] = var
        elif aig.is_input(node):
            node_var[node] = aig.input_label(node)
        else:
            var = cnf.fresh_var()
            node_var[node] = var
            f0, f1 = aig.fanins(node)
            a, b = lit_for(f0), lit_for(f1)
            cnf.add_clause([-var, a])
            cnf.add_clause([-var, b])
            cnf.add_clause([var, -a, -b])

    if root == TRUE:
        top = cnf.fresh_var()
        cnf.add_clause([top])
        return TseitinEncoding(cnf, top, node_var)
    if root == FALSE:
        top = cnf.fresh_var()
        cnf.add_clause([-top])
        return TseitinEncoding(cnf, top, node_var)
    return TseitinEncoding(cnf, lit_for(root), node_var)


def is_satisfiable(
    aig: Aig,
    root: int,
    deadline: Optional[float] = None,
    session: Optional["AigSatSession"] = None,
) -> bool:
    """SAT check of the function at ``root`` (semantic constant-0 test).

    With a ``session`` the query runs on its persistent solver (the
    session is rebound to ``aig`` first); otherwise a throwaway solver
    is built.  Raises :class:`repro.errors.TimeoutExceeded` when
    ``deadline`` (a ``time.monotonic`` timestamp) passes mid-solve.
    """
    if root == FALSE:
        return False
    if root == TRUE:
        return True
    if session is not None:
        return session.rebind(aig).is_satisfiable(root, deadline)
    from ..errors import TimeoutExceeded
    from ..sat.solver import SAT, UNKNOWN, CdclSolver

    cnf, root_lit, _node_var = aig_to_cnf(aig, root)
    solver = CdclSolver()
    solver.add_clauses(cnf.clauses)
    solver.add_clause([root_lit])
    status = solver.solve(deadline=deadline)
    if status == UNKNOWN:
        raise TimeoutExceeded()
    return status == SAT


def is_tautology(
    aig: Aig,
    root: int,
    deadline: Optional[float] = None,
    session: Optional["AigSatSession"] = None,
) -> bool:
    """Semantic constant-1 test via one SAT call on the complement."""
    from .graph import complement

    return not is_satisfiable(aig, complement(root), deadline, session)
