"""Structurally hashed And-Inverter Graphs with complemented edges.

The representation follows the AIGER convention: an *edge* is an integer
``2*node + c`` where ``c`` is the complement bit; node ``0`` is the
constant-false node, so edge ``0`` denotes FALSE and edge ``1`` TRUE.
Input nodes carry an external variable label (the DIMACS variable of the
formula layer); AND nodes have exactly two fanin edges.

Structural hashing guarantees that no two AND nodes have the same
(ordered) fanin pair, and one-level simplification rules
(``x & x = x``, ``x & !x = 0``, constant folding) are applied on
construction.  All heavy operations (cofactor, compose, quantification)
are implemented as iterative rebuilds, so Python's recursion limit is
never an issue even for deep graphs.

**Storage is struct-of-arrays**: nodes live in flat parallel arrays
(``_fanin0``, ``_fanin1``, ``_input_label``, ``_level``, traversal
marks) indexed by node id.  Nodes are append-only with immutable fanins,
which yields two structural invariants the kernels exploit:

* fanins always reference *smaller* node ids, so ascending id order is
  a topological order — membership sweeps (``cone_size``, dependency
  masks, level groups) never need a DFS.  ``cone_nodes`` itself still
  returns the traversal-shaped DFS post-order, because downstream
  numberings (Tseitin auxiliaries, AIGER indices, rebuild creation
  order) are part of the observable contract;
* levels are computable at construction time (``1 + max(fanin
  levels)``), so ``level_of`` is an O(1) array read, never a sweep.

Two kernel *backends* implement the hot traversals over this storage
(see :mod:`repro.aig.backend`): the pure-Python reference loops, and
optional numpy kernels (:mod:`repro.aig._npkernels`) that mirror the
arrays into ``int64`` ndarrays and replace per-node dict/set work with
vectorized level-ordered sweeps.  The backend is chosen per manager
(``Aig(backend=...)``, defaulting to the import-time
``REPRO_AIG_BACKEND`` selection) and both backends produce identical
results, node numberings, and traversal counters.

Two layers sit on top of the plain rebuild machinery:

* a **fused kernel** (:meth:`Aig.restrict`, :meth:`Aig.cofactor2`,
  :meth:`Aig.eliminate_universal_fused`) that performs constant
  substitution, double cofactoring and Theorem-1 elimination in a
  *single* cone traversal, sharing (rather than rebuilding) every node
  whose cone does not touch the substituted variables.  The
  share-vs-rebuild classification is a per-node support disjointness
  test on the python backend and a precomputed vectorized dependency
  mask on the numpy backend — same decisions, same counters;
* a **generation-stamped per-node cache** of structural support sets.
  Nodes are append-only and fanins immutable, so a cache entry stays
  valid for the lifetime of the manager; ``extract`` (compaction)
  starts a fresh manager whose caches are empty and whose
  ``cache_generation`` is bumped, which is the only invalidation event.

All kernel passes account their work in :class:`KernelCounters`, shared
across compactions, so callers can compare rebuild strategies.  The
traversal counters (``nodes_visited``, ``nodes_shared``, strash and
pass counts) are backend-independent; the ``support_cache_*`` counters
reflect how often the frozenset cache is consulted and therefore differ
between backends (the numpy kernels classify via masks without filling
the cache).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .backend import resolve_backend

FALSE = 0
TRUE = 1

_EMPTY_SUPPORT: frozenset = frozenset()


class KernelCounters:
    """Work counters for the AIG kernel (shared across ``extract`` calls).

    ``nodes_visited`` counts every node processed by a rebuild-style
    pass (``rebuild``, ``restrict``, ``cofactor2``, fused elimination);
    ``nodes_shared`` counts nodes a fused pass reused verbatim instead
    of rebuilding.  Support-cache fills are cheap set operations, not
    rebuild work, and are accounted separately as
    ``support_cache_misses``.  The strash and cache counters feed the
    hit-rate statistics exported by the solvers.
    """

    _FIELDS = (
        "rebuild_passes",
        "fused_passes",
        "nodes_visited",
        "nodes_shared",
        "strash_lookups",
        "strash_hits",
        "support_cache_hits",
        "support_cache_misses",
        "unitpure_cache_hits",
        "unitpure_cache_misses",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"KernelCounters({inner})"


def edge_of(node: int, complemented: bool = False) -> int:
    return (node << 1) | int(complemented)


def node_of(edge: int) -> int:
    return edge >> 1


def is_complemented(edge: int) -> bool:
    return bool(edge & 1)


def complement(edge: int) -> int:
    return edge ^ 1


class Aig:
    """An AIG manager holding a DAG of AND nodes over labelled inputs."""

    _NO_FANIN = -1

    def __init__(self, backend: Optional[str] = None) -> None:
        #: Kernel backend for this manager: ``'python'`` or ``'numpy'``.
        self.backend = resolve_backend(backend)
        # Struct-of-arrays node storage; node 0 is the constant-false node.
        self._fanin0: List[int] = [self._NO_FANIN]
        self._fanin1: List[int] = [self._NO_FANIN]
        self._input_label: List[int] = [0]  # external var for inputs, 0 otherwise
        self._level: List[int] = [0]  # maintained eagerly on append
        self._mark: List[int] = [0]  # traversal stamps (see _cone_nodes_ascending)
        self._travid = 0
        self._input_node: Dict[int, int] = {}
        self._strash: Dict[Tuple[int, int], int] = {}
        self.counters = KernelCounters()
        # Per-node metadata caches.  Entries never go stale within one
        # manager (nodes are append-only with immutable fanins); the
        # generation stamp identifies which manager incarnation an
        # externally held value belongs to.
        self.cache_generation = 0
        self._support: Dict[int, frozenset] = {0: _EMPTY_SUPPORT}
        self._unitpure_cache: Dict[int, object] = {}
        self._npk = None  # lazily constructed NumpyKernels mirror

    @property
    def _np(self):
        """The numpy kernel mirror (numpy backend only), built lazily."""
        kernels = self._npk
        if kernels is None:
            from ._npkernels import NumpyKernels

            kernels = self._npk = NumpyKernels(self)
        return kernels

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def var(self, external_var: int) -> int:
        """Return the edge for an input labelled by ``external_var`` (creating it)."""
        if external_var <= 0:
            raise ValueError("external variables must be positive")
        node = self._input_node.get(external_var)
        if node is None:
            node = self._new_node(self._NO_FANIN, self._NO_FANIN, external_var)
            self._input_node[external_var] = node
        return edge_of(node)

    def literal(self, lit: int) -> int:
        """Return the edge for a DIMACS literal."""
        edge = self.var(abs(lit))
        return complement(edge) if lit < 0 else edge

    def land(self, a: int, b: int) -> int:
        """AND of two edges with one-level simplification and strashing."""
        if a == FALSE or b == FALSE or a == complement(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        counters = self.counters
        counters.strash_lookups += 1
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(a, b, 0)
            self._strash[key] = node
        else:
            counters.strash_hits += 1
        return edge_of(node)

    def lor(self, a: int, b: int) -> int:
        return complement(self.land(complement(a), complement(b)))

    def lxor(self, a: int, b: int) -> int:
        return self.lor(self.land(a, complement(b)), self.land(complement(a), b))

    def lxnor(self, a: int, b: int) -> int:
        return complement(self.lxor(a, b))

    def lite(self, cond: int, then_edge: int, else_edge: int) -> int:
        """If-then-else: ``cond ? then : else``."""
        return self.lor(self.land(cond, then_edge), self.land(complement(cond), else_edge))

    def land_many(self, edges: Iterable[int]) -> int:
        """Balanced conjunction of arbitrarily many edges."""
        work = list(edges)
        if not work:
            return TRUE
        while len(work) > 1:
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(self.land(work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def lor_many(self, edges: Iterable[int]) -> int:
        return complement(self.land_many(complement(e) for e in edges))

    def _new_node(self, fanin0: int, fanin1: int, label: int) -> int:
        # Fanins always pre-exist, so the level is known at append time:
        # one O(1) computation here replaces a lazy per-node level cache.
        if fanin0 >= 0:
            levels = self._level
            l0 = levels[fanin0 >> 1]
            l1 = levels[fanin1 >> 1]
            level = 1 + (l0 if l0 >= l1 else l1)
        else:
            level = 0
        self._fanin0.append(fanin0)
        self._fanin1.append(fanin1)
        self._input_label.append(label)
        self._level.append(level)
        self._mark.append(0)
        return len(self._fanin0) - 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_input(self, node: int) -> bool:
        return node != 0 and self._fanin0[node] == self._NO_FANIN

    def is_and(self, node: int) -> bool:
        return self._fanin0[node] != self._NO_FANIN

    def is_const(self, node: int) -> bool:
        return node == 0

    def fanins(self, node: int) -> Tuple[int, int]:
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def input_label(self, node: int) -> int:
        if not self.is_input(node):
            raise ValueError(f"node {node} is not an input")
        return self._input_label[node]

    @property
    def num_nodes(self) -> int:
        """Total node count in the manager (including dead nodes)."""
        return len(self._fanin0)

    def cone_nodes(self, root: int) -> List[int]:
        """Cone of ``root`` in depth-first post-order (fanin0 first).

        The *order* is part of the contract, on both backends: the CNF
        encoders number Tseitin auxiliaries in cone order, `rebuild`
        (hence compose / extract / FRAIG) creates nodes in cone order,
        and the AIGER writer numbers gates in cone order.  SAT heuristics
        (VSIDS init, phase saving) are sensitive enough to variable
        numbering that changing the order shifts solve times measurably,
        so it stays the traversal-shaped post-order rather than the
        ascending-id order the array core could produce cheaply.  Use
        :meth:`_cone_nodes_ascending` / the kernel cone masks when only
        membership matters.
        """
        seen: Set[int] = set()
        order: List[int] = []
        fanin0, fanin1 = self._fanin0, self._fanin1
        stack = [root >> 1]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            if fanin0[node] >= 0:
                pending = [
                    n
                    for n in (fanin0[node] >> 1, fanin1[node] >> 1)
                    if n not in seen
                ]
                if pending:
                    stack.append(node)
                    stack.extend(pending)
                    continue
            seen.add(node)
            order.append(node)
        return order

    def _cone_nodes_ascending(self, root: int) -> List[int]:
        """Cone membership as ascending node ids (a topological order too).

        Cheaper than :meth:`cone_nodes` — generation-stamped marks, no
        hashing — for order-insensitive consumers like :meth:`cone_size`.
        """
        self._travid += 1
        travid = self._travid
        mark = self._mark
        fanin0, fanin1 = self._fanin0, self._fanin1
        node = root >> 1
        mark[node] = travid
        stack = [node]
        out: List[int] = []
        while stack:
            top = stack.pop()
            out.append(top)
            f0 = fanin0[top]
            if f0 >= 0:
                child = f0 >> 1
                if mark[child] != travid:
                    mark[child] = travid
                    stack.append(child)
                child = fanin1[top] >> 1
                if mark[child] != travid:
                    mark[child] = travid
                    stack.append(child)
        out.sort()
        return out

    def cone_size(self, root: int) -> int:
        """Number of AND nodes in the cone of ``root``."""
        if self.backend == "numpy":
            return self._np.cone_and_count(root)
        fanin0 = self._fanin0
        return sum(1 for n in self._cone_nodes_ascending(root) if fanin0[n] >= 0)

    def support(self, root: int) -> Set[int]:
        """External variables the function of ``root`` structurally depends on.

        Returns a fresh mutable set; use :meth:`support_of` on hot paths
        to share the cached frozenset instead.
        """
        return set(self.support_of(root))

    # ------------------------------------------------------------------
    # per-node metadata cache (support sets) and levels
    # ------------------------------------------------------------------
    def support_of(self, root: int) -> frozenset:
        """Cached structural support of ``root`` as a shared frozenset.

        The result is memoized per node.  On the python backend a cache
        miss fills the cache bottom-up for every node of the cone (so
        subsequent queries anywhere inside the cone are O(1)); when an
        AND node's support equals one of its fanin supports the
        frozenset object is shared, keeping the cache memory-linear in
        practice.  On the numpy backend a miss is a single vectorized
        cone sweep that caches only the queried node — interior nodes
        are rarely queried there because the fused kernels classify via
        dependency masks instead.
        """
        node = root >> 1
        cached = self._support.get(node)
        if cached is not None:
            self.counters.support_cache_hits += 1
            return cached
        if self.backend == "numpy":
            result = self._np.cone_support(node)
            self._support[node] = result
            self.counters.support_cache_misses += 1
            return result
        support = self._support
        counters = self.counters
        stack = [node]
        while stack:
            top = stack[-1]
            if top in support:
                stack.pop()
                continue
            if self._fanin0[top] == self._NO_FANIN:  # input node
                support[top] = frozenset((self._input_label[top],))
                counters.support_cache_misses += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[top] >> 1, self._fanin1[top] >> 1
            s0 = support.get(f0)
            s1 = support.get(f1)
            if s0 is None or s1 is None:
                if s0 is None:
                    stack.append(f0)
                if s1 is None:
                    stack.append(f1)
                continue
            if s1 <= s0:
                support[top] = s0
            elif s0 <= s1:
                support[top] = s1
            else:
                support[top] = s0 | s1
            counters.support_cache_misses += 1
            stack.pop()
        return support[node]

    def level_of(self, root: int) -> int:
        """Level (longest AND path to an input) of ``root`` — O(1) read.

        Levels are maintained eagerly at node construction, so this is
        a plain array access on either backend.
        """
        return self._level[root >> 1]

    def count_depending_ands(self, root: int, var: int) -> int:
        """AND nodes in the cone of ``root`` whose function cone contains
        ``var`` — the node count a Theorem-1 elimination of ``var`` would
        have to rebuild (growth estimation)."""
        if root < 2:
            return 0
        if self.backend == "numpy":
            return self._np.count_depending_ands(root, var)
        count = 0
        support_of = self.support_of
        fanin0 = self._fanin0
        for node in self._cone_nodes_ascending(root):
            if fanin0[node] >= 0 and var in support_of(edge_of(node)):
                count += 1
        return count

    def input_fanout_counts(self, root: int, labels: Iterable[int]) -> Dict[int, int]:
        """Direct fanout count inside the cone of ``root`` for each input
        labelled by ``labels`` (labels with zero fanout are omitted)."""
        wanted = set(labels)
        counts: Dict[int, int] = {}
        if root < 2 or not wanted:
            return counts
        if self.backend == "numpy":
            return self._np.input_fanout_counts(root, wanted)
        fanin0, fanin1, label = self._fanin0, self._fanin1, self._input_label
        for node in self._cone_nodes_ascending(root):
            f0 = fanin0[node]
            if f0 < 0:
                continue
            for child in (f0 >> 1, fanin1[node] >> 1):
                lab = label[child]
                if lab > 0 and lab in wanted:
                    counts[lab] = counts.get(lab, 0) + 1
        return counts

    def invalidate_caches(self) -> None:
        """Drop all per-node metadata and bump the generation stamp.

        Never required for correctness inside one manager (nodes are
        immutable); exposed for callers that hold externally derived
        per-generation data.  Levels and the numpy array mirror are
        ground truth derived from the node arrays, not caches, and are
        kept.
        """
        self.cache_generation += 1
        self._support = {0: _EMPTY_SUPPORT}
        self._unitpure_cache = {}

    def evaluate(self, root: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function at ``root`` under an assignment of external vars."""
        values: Dict[int, bool] = {0: False}
        for node in self.cone_nodes(root):
            if node == 0:
                continue
            if self.is_input(node):
                values[node] = assignment[self._input_label[node]]
            else:
                f0, f1 = self._fanin0[node], self._fanin1[node]
                v0 = values[node_of(f0)] ^ is_complemented(f0)
                v1 = values[node_of(f1)] ^ is_complemented(f1)
                values[node] = v0 and v1
        return values[node_of(root)] ^ is_complemented(root)

    # ------------------------------------------------------------------
    # rebuild-based operations
    # ------------------------------------------------------------------
    def rebuild(
        self,
        roots: Sequence[int],
        leaf_map: Dict[int, int],
        target: Optional["Aig"] = None,
    ) -> List[int]:
        """Re-express ``roots`` with input nodes substituted via ``leaf_map``.

        ``leaf_map`` maps *external variables* to replacement edges (in
        ``target``, which defaults to ``self``).  Inputs not mentioned map
        to themselves.  Returns the list of rebuilt root edges.
        """
        target = target if target is not None else self
        counters = self.counters
        counters.rebuild_passes += 1
        cache: Dict[int, int] = {0: FALSE}  # node -> rebuilt edge (uncomplemented view)
        for root in roots:
            for node in self.cone_nodes(root):
                if node in cache:
                    continue
                counters.nodes_visited += 1
                if self.is_input(node):
                    label = self._input_label[node]
                    if label in leaf_map:
                        cache[node] = leaf_map[label]
                    else:
                        cache[node] = target.var(label)
                else:
                    f0, f1 = self._fanin0[node], self._fanin1[node]
                    e0 = cache[node_of(f0)] ^ (f0 & 1)
                    e1 = cache[node_of(f1)] ^ (f1 & 1)
                    cache[node] = target.land(e0, e1)
        return [cache[node_of(r)] ^ (r & 1) for r in roots]

    def cofactor(self, root: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``root`` with respect to an external variable."""
        return self.rebuild([root], {var: TRUE if value else FALSE})[0]

    def compose(self, root: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute external variables by edges."""
        return self.rebuild([root], dict(substitution))[0]

    def rename(self, root: int, mapping: Dict[int, int]) -> int:
        """Rename external variables (var -> var)."""
        return self.rebuild([root], {v: self.var(w) for v, w in mapping.items()})[0]

    def exists(self, root: int, var: int) -> int:
        """Existential quantification of one external variable."""
        cof0, cof1 = self.cofactor2(root, var)
        return self.lor(cof0, cof1)

    def forall(self, root: int, var: int) -> int:
        """Universal quantification of one external variable."""
        cof0, cof1 = self.cofactor2(root, var)
        return self.land(cof0, cof1)

    # ------------------------------------------------------------------
    # fused kernel: single-pass substitution / cofactoring / elimination
    # ------------------------------------------------------------------
    def restrict(self, root: int, assignment: Dict[int, bool]) -> int:
        """Substitute constants for several external variables in one pass.

        Unlike ``rebuild``, the traversal never descends into (and never
        re-strashes) a node whose cone is disjoint from ``assignment`` —
        such nodes are *shared* with the original cone.  Equivalent to a
        chain of :meth:`cofactor` calls, in a single traversal.
        """
        if root < 2 or not assignment:
            return root
        touched = frozenset(assignment)
        if self.backend == "numpy":
            depends = self._np.depends_mask(touched)
            if not depends[root >> 1]:
                return root
            return self._restrict_masked(root, assignment, depends)
        support_of = self.support_of
        if support_of(root).isdisjoint(touched):
            return root
        counters = self.counters
        counters.fused_passes += 1
        cache: Dict[int, int] = {0: FALSE}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if support_of(edge_of(node)).isdisjoint(touched):
                cache[node] = edge_of(node)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):
                cache[node] = TRUE if assignment[self._input_label[node]] else FALSE
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            r0 = cache.get(node_of(f0))
            r1 = cache.get(node_of(f1))
            if r0 is None or r1 is None:
                if r0 is None:
                    stack.append(node_of(f0))
                if r1 is None:
                    stack.append(node_of(f1))
                continue
            cache[node] = self.land(r0 ^ (f0 & 1), r1 ^ (f1 & 1))
            counters.nodes_visited += 1
            stack.pop()
        return cache[node_of(root)] ^ (root & 1)

    def _restrict_masked(
        self, root: int, assignment: Dict[int, bool], depends: List[bool]
    ) -> int:
        """`restrict` with the share test precomputed as a dependency mask.

        ``depends[node]`` is exactly ``not support_of(node).isdisjoint
        (assignment)``, so the traversal makes identical decisions and
        counts identical work to the python path.
        """
        counters = self.counters
        counters.fused_passes += 1
        cache: Dict[int, int] = {0: FALSE}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if not depends[node]:
                cache[node] = edge_of(node)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):
                cache[node] = TRUE if assignment[self._input_label[node]] else FALSE
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            r0 = cache.get(node_of(f0))
            r1 = cache.get(node_of(f1))
            if r0 is None or r1 is None:
                if r0 is None:
                    stack.append(node_of(f0))
                if r1 is None:
                    stack.append(node_of(f1))
                continue
            cache[node] = self.land(r0 ^ (f0 & 1), r1 ^ (f1 & 1))
            counters.nodes_visited += 1
            stack.pop()
        return cache[node_of(root)] ^ (root & 1)

    def cofactor2(self, root: int, var: int) -> Tuple[int, int]:
        """Both Shannon cofactors of ``root`` w.r.t. ``var`` in one pass.

        Nodes independent of ``var`` are shared between the input cone
        and both cofactors; the rest of the cone is visited exactly once
        (instead of twice for two :meth:`cofactor` calls).
        """
        if root < 2:
            return root, root
        if self.backend == "numpy":
            depends = self._np.depends_mask((var,))
            if not depends[root >> 1]:
                return root, root
            return self._cofactor2_masked(root, depends)
        support_of = self.support_of
        if var not in support_of(root):
            return root, root
        counters = self.counters
        counters.fused_passes += 1
        # node -> (0-cofactor edge, 1-cofactor edge), uncomplemented view
        cache: Dict[int, Tuple[int, int]] = {0: (FALSE, FALSE)}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if var not in support_of(edge_of(node)):
                edge = edge_of(node)
                cache[node] = (edge, edge)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):  # the variable itself
                cache[node] = (FALSE, TRUE)
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            p0 = cache.get(node_of(f0))
            p1 = cache.get(node_of(f1))
            if p0 is None or p1 is None:
                if p0 is None:
                    stack.append(node_of(f0))
                if p1 is None:
                    stack.append(node_of(f1))
                continue
            c0, c1 = f0 & 1, f1 & 1
            cache[node] = (
                self.land(p0[0] ^ c0, p1[0] ^ c1),
                self.land(p0[1] ^ c0, p1[1] ^ c1),
            )
            counters.nodes_visited += 1
            stack.pop()
        e0, e1 = cache[node_of(root)]
        sign = root & 1
        return e0 ^ sign, e1 ^ sign

    def _cofactor2_masked(self, root: int, depends: List[bool]) -> Tuple[int, int]:
        """`cofactor2` with the per-node ``var in support`` test replaced
        by the precomputed dependency mask (identical traversal)."""
        counters = self.counters
        counters.fused_passes += 1
        cache: Dict[int, Tuple[int, int]] = {0: (FALSE, FALSE)}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if not depends[node]:
                edge = edge_of(node)
                cache[node] = (edge, edge)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):  # the variable itself
                cache[node] = (FALSE, TRUE)
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            p0 = cache.get(node_of(f0))
            p1 = cache.get(node_of(f1))
            if p0 is None or p1 is None:
                if p0 is None:
                    stack.append(node_of(f0))
                if p1 is None:
                    stack.append(node_of(f1))
                continue
            c0, c1 = f0 & 1, f1 & 1
            cache[node] = (
                self.land(p0[0] ^ c0, p1[0] ^ c1),
                self.land(p0[1] ^ c0, p1[1] ^ c1),
            )
            counters.nodes_visited += 1
            stack.pop()
        e0, e1 = cache[node_of(root)]
        sign = root & 1
        return e0 ^ sign, e1 ^ sign

    def eliminate_universal_fused(
        self,
        root: int,
        var: int,
        dependents: Iterable[int],
        fresh: Callable[[], int],
    ) -> Tuple[int, int, Dict[int, int]]:
        """Theorem-1 kernel: both cofactors *and* the dependent rename of
        the 1-cofactor in a single cone traversal.

        ``dependents`` are the existential variables whose dependency
        sets contain ``var``; each one actually used while building the
        1-cofactor is renamed to a fresh variable obtained from
        ``fresh()``.  Returns ``(cofactor0, renamed_cofactor1, copies)``
        where ``copies`` maps originals to their fresh names, filtered
        to the copies that survive simplification (i.e. that occur in
        the returned 1-cofactor).

        Sharing rule: a node is reused verbatim on the 0-side whenever
        its cone misses ``var``, and on the 1-side whenever its cone
        also misses every dependent (otherwise the rename forces a
        rebuild even though the cofactor is trivial).
        """
        dependents = frozenset(dependents)
        if root < 2:
            return root, root, {}
        if self.backend == "numpy":
            dep_var, dep_rel = self._np.depends_mask2(var, dependents)
            if not dep_var[root >> 1]:
                return root, root, {}
            return self._eliminate_fused_masked(root, var, fresh, dep_var, dep_rel)
        support_of = self.support_of
        root_support = support_of(root)
        if var not in root_support:
            return root, root, {}
        relevant = dependents | {var}
        counters = self.counters
        counters.fused_passes += 1
        copies: Dict[int, int] = {}
        copy_edges: Dict[int, int] = {}

        def renamed_input(label: int) -> int:
            edge = copy_edges.get(label)
            if edge is None:
                copies[label] = fresh()
                edge = self.var(copies[label])
                copy_edges[label] = edge
            return edge

        cache: Dict[int, Tuple[int, int]] = {0: (FALSE, FALSE)}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            node_support = support_of(edge_of(node))
            if node_support.isdisjoint(relevant):
                edge = edge_of(node)
                cache[node] = (edge, edge)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):
                label = self._input_label[node]
                if label == var:
                    cache[node] = (FALSE, TRUE)
                else:  # a dependent: identical on the 0-side, renamed on the 1-side
                    cache[node] = (edge_of(node), renamed_input(label))
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            p0 = cache.get(node_of(f0))
            p1 = cache.get(node_of(f1))
            if p0 is None or p1 is None:
                if p0 is None:
                    stack.append(node_of(f0))
                if p1 is None:
                    stack.append(node_of(f1))
                continue
            c0, c1 = f0 & 1, f1 & 1
            if var in node_support:
                e0 = self.land(p0[0] ^ c0, p1[0] ^ c1)
            else:  # cofactoring is trivial here; only the rename matters
                e0 = edge_of(node)
                counters.nodes_shared += 1
            cache[node] = (e0, self.land(p0[1] ^ c0, p1[1] ^ c1))
            counters.nodes_visited += 1
            stack.pop()
        e0, e1 = cache[node_of(root)]
        sign = root & 1
        cofactor0, cofactor1 = e0 ^ sign, e1 ^ sign
        if copies:
            # The same pass's support data tells us which copies survived
            # the one-level simplifications — no extra cone walk.
            survivors = self.support_of(cofactor1) if cofactor1 > 1 else _EMPTY_SUPPORT
            copies = {y: y2 for y, y2 in copies.items() if y2 in survivors}
        return cofactor0, cofactor1, copies

    def _eliminate_fused_masked(
        self,
        root: int,
        var: int,
        fresh: Callable[[], int],
        dep_var: List[bool],
        dep_rel: List[bool],
    ) -> Tuple[int, int, Dict[int, int]]:
        """Theorem-1 kernel with both classifications precomputed as masks:
        ``dep_var[node]`` = cone contains ``var`` (0-side sharing),
        ``dep_rel[node]`` = cone touches ``var`` or any dependent
        (1-side sharing).  Same traversal and counters as the python
        path."""
        counters = self.counters
        counters.fused_passes += 1
        copies: Dict[int, int] = {}
        copy_edges: Dict[int, int] = {}

        def renamed_input(label: int) -> int:
            edge = copy_edges.get(label)
            if edge is None:
                copies[label] = fresh()
                edge = self.var(copies[label])
                copy_edges[label] = edge
            return edge

        cache: Dict[int, Tuple[int, int]] = {0: (FALSE, FALSE)}
        stack = [node_of(root)]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            if not dep_rel[node]:
                edge = edge_of(node)
                cache[node] = (edge, edge)
                counters.nodes_shared += 1
                stack.pop()
                continue
            if self.is_input(node):
                label = self._input_label[node]
                if label == var:
                    cache[node] = (FALSE, TRUE)
                else:  # a dependent: identical on the 0-side, renamed on the 1-side
                    cache[node] = (edge_of(node), renamed_input(label))
                counters.nodes_visited += 1
                stack.pop()
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            p0 = cache.get(node_of(f0))
            p1 = cache.get(node_of(f1))
            if p0 is None or p1 is None:
                if p0 is None:
                    stack.append(node_of(f0))
                if p1 is None:
                    stack.append(node_of(f1))
                continue
            c0, c1 = f0 & 1, f1 & 1
            if dep_var[node]:
                e0 = self.land(p0[0] ^ c0, p1[0] ^ c1)
            else:  # cofactoring is trivial here; only the rename matters
                e0 = edge_of(node)
                counters.nodes_shared += 1
            cache[node] = (e0, self.land(p0[1] ^ c0, p1[1] ^ c1))
            counters.nodes_visited += 1
            stack.pop()
        e0, e1 = cache[node_of(root)]
        sign = root & 1
        cofactor0, cofactor1 = e0 ^ sign, e1 ^ sign
        if copies:
            # Survivor filtering needs the 1-cofactor's support once; a
            # single vectorized cone sweep, no per-node cache fills.
            survivors = (
                self._np.cone_support(cofactor1 >> 1)
                if cofactor1 > 1
                else _EMPTY_SUPPORT
            )
            copies = {y: y2 for y, y2 in copies.items() if y2 in survivors}
        return cofactor0, cofactor1, copies

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def extract(self, roots: Sequence[int]) -> Tuple["Aig", List[int]]:
        """Garbage-collect: copy only the cones of ``roots`` into a fresh manager.

        The fresh manager starts with empty metadata caches and a bumped
        ``cache_generation`` (node numbering changes, so per-node data
        held outside the manager is stale), but *shares* this manager's
        :class:`KernelCounters` and backend so work accounting and
        kernel selection survive compaction.
        """
        fresh = Aig(backend=self.backend)
        fresh.counters = self.counters
        fresh.cache_generation = self.cache_generation + 1
        new_roots = self.rebuild(roots, {}, target=fresh)
        return fresh, new_roots

    def __repr__(self) -> str:
        ands = sum(1 for n in range(1, self.num_nodes) if self.is_and(n))
        return f"Aig(inputs={len(self._input_node)}, ands={ands}, backend={self.backend})"
