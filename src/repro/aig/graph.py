"""Structurally hashed And-Inverter Graphs with complemented edges.

The representation follows the AIGER convention: an *edge* is an integer
``2*node + c`` where ``c`` is the complement bit; node ``0`` is the
constant-false node, so edge ``0`` denotes FALSE and edge ``1`` TRUE.
Input nodes carry an external variable label (the DIMACS variable of the
formula layer); AND nodes have exactly two fanin edges.

Structural hashing guarantees that no two AND nodes have the same
(ordered) fanin pair, and one-level simplification rules
(``x & x = x``, ``x & !x = 0``, constant folding) are applied on
construction.  All heavy operations (cofactor, compose, quantification)
are implemented as iterative rebuilds, so Python's recursion limit is
never an issue even for deep graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

FALSE = 0
TRUE = 1


def edge_of(node: int, complemented: bool = False) -> int:
    return (node << 1) | int(complemented)


def node_of(edge: int) -> int:
    return edge >> 1


def is_complemented(edge: int) -> bool:
    return bool(edge & 1)


def complement(edge: int) -> int:
    return edge ^ 1


class Aig:
    """An AIG manager holding a DAG of AND nodes over labelled inputs."""

    _NO_FANIN = -1

    def __init__(self) -> None:
        # node 0 is the constant-false node
        self._fanin0: List[int] = [self._NO_FANIN]
        self._fanin1: List[int] = [self._NO_FANIN]
        self._input_label: List[int] = [0]  # external var for inputs, 0 otherwise
        self._input_node: Dict[int, int] = {}
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def var(self, external_var: int) -> int:
        """Return the edge for an input labelled by ``external_var`` (creating it)."""
        if external_var <= 0:
            raise ValueError("external variables must be positive")
        node = self._input_node.get(external_var)
        if node is None:
            node = self._new_node(self._NO_FANIN, self._NO_FANIN, external_var)
            self._input_node[external_var] = node
        return edge_of(node)

    def literal(self, lit: int) -> int:
        """Return the edge for a DIMACS literal."""
        edge = self.var(abs(lit))
        return complement(edge) if lit < 0 else edge

    def land(self, a: int, b: int) -> int:
        """AND of two edges with one-level simplification and strashing."""
        if a == FALSE or b == FALSE or a == complement(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(a, b, 0)
            self._strash[key] = node
        return edge_of(node)

    def lor(self, a: int, b: int) -> int:
        return complement(self.land(complement(a), complement(b)))

    def lxor(self, a: int, b: int) -> int:
        return self.lor(self.land(a, complement(b)), self.land(complement(a), b))

    def lxnor(self, a: int, b: int) -> int:
        return complement(self.lxor(a, b))

    def lite(self, cond: int, then_edge: int, else_edge: int) -> int:
        """If-then-else: ``cond ? then : else``."""
        return self.lor(self.land(cond, then_edge), self.land(complement(cond), else_edge))

    def land_many(self, edges: Iterable[int]) -> int:
        """Balanced conjunction of arbitrarily many edges."""
        work = list(edges)
        if not work:
            return TRUE
        while len(work) > 1:
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(self.land(work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def lor_many(self, edges: Iterable[int]) -> int:
        return complement(self.land_many(complement(e) for e in edges))

    def _new_node(self, fanin0: int, fanin1: int, label: int) -> int:
        self._fanin0.append(fanin0)
        self._fanin1.append(fanin1)
        self._input_label.append(label)
        return len(self._fanin0) - 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_input(self, node: int) -> bool:
        return node != 0 and self._fanin0[node] == self._NO_FANIN

    def is_and(self, node: int) -> bool:
        return self._fanin0[node] != self._NO_FANIN

    def is_const(self, node: int) -> bool:
        return node == 0

    def fanins(self, node: int) -> Tuple[int, int]:
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def input_label(self, node: int) -> int:
        if not self.is_input(node):
            raise ValueError(f"node {node} is not an input")
        return self._input_label[node]

    @property
    def num_nodes(self) -> int:
        """Total node count in the manager (including dead nodes)."""
        return len(self._fanin0)

    def cone_nodes(self, root: int) -> List[int]:
        """Nodes in the transitive fanin cone of ``root`` (topological order)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack = [node_of(root)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            if self.is_and(node):
                f0, f1 = self._fanin0[node], self._fanin1[node]
                pending = [n for n in (node_of(f0), node_of(f1)) if n not in seen]
                if pending:
                    stack.append(node)
                    stack.extend(pending)
                    continue
            seen.add(node)
            order.append(node)
        return order

    def cone_size(self, root: int) -> int:
        """Number of AND nodes in the cone of ``root``."""
        return sum(1 for n in self.cone_nodes(root) if self.is_and(n))

    def support(self, root: int) -> Set[int]:
        """External variables the function of ``root`` structurally depends on."""
        return {
            self._input_label[n] for n in self.cone_nodes(root) if self.is_input(n)
        }

    def evaluate(self, root: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function at ``root`` under an assignment of external vars."""
        values: Dict[int, bool] = {0: False}
        for node in self.cone_nodes(root):
            if node == 0:
                continue
            if self.is_input(node):
                values[node] = assignment[self._input_label[node]]
            else:
                f0, f1 = self._fanin0[node], self._fanin1[node]
                v0 = values[node_of(f0)] ^ is_complemented(f0)
                v1 = values[node_of(f1)] ^ is_complemented(f1)
                values[node] = v0 and v1
        return values[node_of(root)] ^ is_complemented(root)

    # ------------------------------------------------------------------
    # rebuild-based operations
    # ------------------------------------------------------------------
    def rebuild(
        self,
        roots: Sequence[int],
        leaf_map: Dict[int, int],
        target: Optional["Aig"] = None,
    ) -> List[int]:
        """Re-express ``roots`` with input nodes substituted via ``leaf_map``.

        ``leaf_map`` maps *external variables* to replacement edges (in
        ``target``, which defaults to ``self``).  Inputs not mentioned map
        to themselves.  Returns the list of rebuilt root edges.
        """
        target = target if target is not None else self
        cache: Dict[int, int] = {0: FALSE}  # node -> rebuilt edge (uncomplemented view)
        for root in roots:
            for node in self.cone_nodes(root):
                if node in cache:
                    continue
                if self.is_input(node):
                    label = self._input_label[node]
                    if label in leaf_map:
                        cache[node] = leaf_map[label]
                    else:
                        cache[node] = target.var(label)
                else:
                    f0, f1 = self._fanin0[node], self._fanin1[node]
                    e0 = cache[node_of(f0)] ^ (f0 & 1)
                    e1 = cache[node_of(f1)] ^ (f1 & 1)
                    cache[node] = target.land(e0, e1)
        return [cache[node_of(r)] ^ (r & 1) for r in roots]

    def cofactor(self, root: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``root`` with respect to an external variable."""
        return self.rebuild([root], {var: TRUE if value else FALSE})[0]

    def compose(self, root: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute external variables by edges."""
        return self.rebuild([root], dict(substitution))[0]

    def rename(self, root: int, mapping: Dict[int, int]) -> int:
        """Rename external variables (var -> var)."""
        return self.rebuild([root], {v: self.var(w) for v, w in mapping.items()})[0]

    def exists(self, root: int, var: int) -> int:
        """Existential quantification of one external variable."""
        return self.lor(self.cofactor(root, var, False), self.cofactor(root, var, True))

    def forall(self, root: int, var: int) -> int:
        """Universal quantification of one external variable."""
        return self.land(self.cofactor(root, var, False), self.cofactor(root, var, True))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def extract(self, roots: Sequence[int]) -> Tuple["Aig", List[int]]:
        """Garbage-collect: copy only the cones of ``roots`` into a fresh manager."""
        fresh = Aig()
        new_roots = self.rebuild(roots, {}, target=fresh)
        return fresh, new_roots

    def __repr__(self) -> str:
        ands = sum(1 for n in range(1, self.num_nodes) if self.is_and(n))
        return f"Aig(inputs={len(self._input_node)}, ands={ands})"
