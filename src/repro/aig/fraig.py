"""FRAIG-style functional reduction by simulation and SAT sweeping.

A FRAIG (Mishchenko et al.) is an AIG in which no two nodes compute the
same function up to complement.  We follow the classical flow:

1. simulate the whole graph under a batch of input patterns, hashing
   nodes into candidate equivalence classes by signature (signatures
   are canonicalized up to complement);
2. for each candidate pair, prove or refute equivalence with a SAT call
   on a miter; **counterexamples refine the simulation patterns** — the
   SAT model of a refuted merge is absorbed as a new pattern bit, which
   splits the false equivalence class and spares every later member of
   it another wasted SAT call;
3. rebuild the graph, replacing every node by its class representative.

HQS runs this "from time to time" between elimination steps to keep the
matrix AIG small (Section II-C).  :class:`FraigEngine` is the stateful
form of the pass: it keeps the accumulated patterns (including absorbed
counterexamples) and the per-node simulation words across sweep rounds,
and drives its SAT queries through a shared
:class:`~repro.sat.incremental.AigSatSession` so learned clauses
persist from sweep to sweep.  :func:`fraig_root` remains the one-shot
entry point.

Simulation words live in a backend-specific *word table*:
:class:`_PyWordTable` keeps the historical ``Dict[int, int]`` Python
bignums; managers on the numpy backend use
:class:`~repro.aig._npkernels.NumpyWordTable`, a ``(nodes, words)``
``uint64`` array simulated one level group at a time.  Both expose the
same dict-like face (``get``/``items``/``keys``/``in``) plus
``simulate``/``canon``/``absorb``, and both make identical merge
decisions — the class structure depends only on which node words are
equal or complementary, not on the table's internal bit order.

Missing external variables no longer ``KeyError`` out of
:func:`simulate`: they are filled with deterministic fresh random words
(a pure function of the seed, label and width) and written back into
the caller's pattern map, so an engine sharing that map absorbs the
fill into its state.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..sat.incremental import AigSatSession
from .graph import Aig, FALSE, TRUE, complement, is_complemented, node_of

#: Default pattern seed (HQS's publication year, as elsewhere in repro).
DEFAULT_SEED = 2015


class FraigOptions:
    """Tunables for the sweeping pass."""

    def __init__(
        self,
        num_patterns: int = 64,
        max_sat_conflicts: int = 2000,
        seed: int = DEFAULT_SEED,
        use_counterexamples: bool = True,
        max_extra_patterns: int = 256,
    ):
        self.num_patterns = num_patterns
        self.max_sat_conflicts = max_sat_conflicts
        self.seed = seed
        # Absorb SAT models of refuted merges as new simulation patterns
        # (classical CEGAR refinement).  Off reproduces the plain
        # signature-only candidate scheme for comparisons.
        self.use_counterexamples = use_counterexamples
        # Upper bound on absorbed counterexample bits per engine, so a
        # pathological cone cannot grow the words without limit.
        self.max_extra_patterns = max_extra_patterns


def _pattern_fill(seed: int):
    """A ``pattern_word`` resolver that back-fills absent labels.

    The fill is a deterministic function of ``(seed, label, width)`` —
    independent of call order — and is stored back into the pattern
    map, so later queries (and an engine sharing the map) see the same
    word.
    """

    def resolve(patterns: Dict[int, int], label: int, width: int) -> int:
        word = patterns.get(label)
        if word is None:
            rng = random.Random((seed * 0x9E3779B1) ^ (label * 0x85EBCA77))
            word = rng.getrandbits(width) if width else 0
            patterns[label] = word
        return word

    return resolve


class _PyWordTable:
    """Per-node simulation words as Python bignums (reference backend).

    The canonical signature phase is the LSB of the node's word; an
    absorbed counterexample shifts every word left and lands in that
    LSB.  (The numpy table appends at the MSB instead — the bit orders
    differ, but merge decisions only depend on equality/complement of
    whole words, which any fixed bit permutation preserves.)
    """

    is_numpy = False

    def __init__(self) -> None:
        self.width = 0
        self._words: Dict[int, int] = {}

    # dict-like face (tests and callers introspect the cached words)
    def __contains__(self, node: int) -> bool:
        return node in self._words

    def __getitem__(self, node: int) -> int:
        return self._words[node]

    def get(self, node: int, default: Optional[int] = None) -> Optional[int]:
        return self._words.get(node, default)

    def keys(self):
        return self._words.keys()

    def items(self):
        return self._words.items()

    def word(self, node: int) -> int:
        return self._words[node]

    def mark_constant(self, width: int) -> None:
        self._words[0] = 0
        self.width = width

    def simulate(self, aig: Aig, root: int, patterns: Dict[int, int],
                 width: int, pattern_word=None) -> None:
        """Fill words for every not-yet-known node in the cone of ``root``."""
        resolve = pattern_word if pattern_word is not None else (
            lambda mapping, label, _width: mapping[label]
        )
        mask = (1 << width) - 1
        words = self._words
        for node in aig.cone_nodes(root):
            if node in words:
                continue
            if node == 0:
                words[node] = 0
            elif aig.is_input(node):
                words[node] = resolve(patterns, aig.input_label(node), width) & mask
            else:
                f0, f1 = aig.fanins(node)
                w0 = words[node_of(f0)] ^ (mask if is_complemented(f0) else 0)
                w1 = words[node_of(f1)] ^ (mask if is_complemented(f1) else 0)
                words[node] = w0 & w1
        self.width = width

    def canon(self, node: int) -> Tuple[int, bool]:
        """Canonical (up to complement) signature key and phase bit."""
        mask = (1 << self.width) - 1
        word = self._words[node]
        phase = bool(word & 1)
        return ((word ^ mask) if phase else word, phase)

    def absorb(self, aig: Aig, cone: List[int], assignment: Dict[int, bool],
               patterns: Dict[int, int]) -> None:
        """Append the distinguishing input as one new bit to every word."""
        for label in patterns:
            bit = 1 if assignment.get(label, False) else 0
            patterns[label] = (patterns[label] << 1) | bit
        words = self._words
        bits: Dict[int, int] = {}
        for node in cone:
            if node == 0:
                bit = 0
            elif aig.is_input(node):
                bit = 1 if assignment.get(aig.input_label(node), False) else 0
            else:
                f0, f1 = aig.fanins(node)
                b0 = bits[node_of(f0)] ^ (1 if is_complemented(f0) else 0)
                b1 = bits[node_of(f1)] ^ (1 if is_complemented(f1) else 0)
                bit = b0 & b1
            bits[node] = bit
            words[node] = (words[node] << 1) | bit
        self.width += 1


def _new_word_table(aig: Aig):
    """Word table matching the manager's kernel backend."""
    if aig.backend == "numpy":
        from ._npkernels import NumpyWordTable

        return NumpyWordTable(aig._np)
    return _PyWordTable()


def simulate(
    aig: Aig,
    root: int,
    patterns: Dict[int, int],
    width: int,
    seed: int = DEFAULT_SEED,
) -> Dict[int, int]:
    """Bit-parallel simulation of the cone of ``root``.

    ``patterns`` maps external variables to ``width``-bit words; returns
    the word computed at every node in the cone.  Labels absent from
    ``patterns`` are filled with deterministic fresh random words
    (seeded by ``seed``) and written back into ``patterns``.
    """
    table = _new_word_table(aig)
    table.simulate(aig, root, patterns, width, pattern_word=_pattern_fill(seed))
    return {node: table.word(node) for node in aig.cone_nodes(root)}


class FraigEngine:
    """Stateful sweeper: patterns, simulation words and SAT state persist.

    One engine serves many :meth:`sweep` calls.  Between calls it keeps:

    * the pattern words per external variable — including every absorbed
      counterexample bit, so a distinguishing input found in round *k*
      keeps splitting classes in round *k+n*;
    * the per-node simulation word table of the most recent result
      manager — when the next sweep arrives on the same manager (HQS
      appends elimination nodes in place), only the new nodes are
      simulated;
    * optionally a shared :class:`AigSatSession` whose learned clauses
      carry across sweeps (pass one explicitly or per ``sweep`` call).
    """

    def __init__(
        self,
        options: Optional[FraigOptions] = None,
        session: Optional[AigSatSession] = None,
    ):
        self.options = options or FraigOptions()
        self.session = session
        self._rng = random.Random(self.options.seed)
        self._patterns: Dict[int, int] = {}
        self._width = 0
        self.counterexamples_absorbed = 0
        self.sweeps = 0
        #: Sweeps that ran out of their time slice mid-pass and finished
        #: in structural-hashing-only mode (no further SAT merges).
        self.degraded_sweeps = 0
        self.last_sweep_degraded = False
        # Simulation-word table for the manager produced by the last
        # sweep.  Keyed by identity (plus pattern width): nodes are
        # append-only with immutable fanins, so cached words stay valid
        # for the lifetime of that manager object.
        self._sim_aig: Optional[Aig] = None
        self._sim_words = _PyWordTable()

    # ------------------------------------------------------------------
    # pattern bookkeeping
    # ------------------------------------------------------------------
    def _ensure_patterns(self, labels: Iterable[int]) -> None:
        if self._width == 0:
            self._width = self.options.num_patterns
        for label in labels:
            if label not in self._patterns:
                self._patterns[label] = self._rng.getrandbits(self._width)

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def sweep(
        self,
        aig: Aig,
        root: int,
        session: Optional[AigSatSession] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[Aig, int]:
        """Functionally reduce the cone of ``root``; returns a fresh manager.

        The result computes the same function; equivalent (or antivalent)
        internal nodes are merged when a SAT call proves the merge sound.

        ``deadline`` (a ``time.monotonic`` timestamp) bounds the SAT
        work: once it passes, the sweep *degrades* to
        structural-hashing-only compaction — the rebuild into the fresh
        manager continues (which already merges structurally identical
        nodes) but no further merge candidates are proved by SAT.  The
        degradation is recorded in ``degraded_sweeps`` /
        ``last_sweep_degraded``; the result stays sound either way.
        """
        options = self.options
        self.last_sweep_degraded = False
        if root in (TRUE, FALSE):
            return Aig(backend=aig.backend), root
        self.sweeps += 1

        session = session or self.session
        if session is None:
            session = AigSatSession(aig)
        else:
            session.rebind(aig)

        cone = aig.cone_nodes(root)
        self._ensure_patterns(
            aig.input_label(n) for n in cone if aig.is_input(n)
        )
        # Reuse the cached word table when sweeping the same manager
        # again (HQS appends elimination nodes in place between rounds);
        # otherwise simulate the cone from scratch.
        if aig is self._sim_aig:
            table = self._sim_words
        else:
            table = _new_word_table(aig)
        table.simulate(
            aig, root, self._patterns, self._width,
            pattern_word=_pattern_fill(options.seed),
        )
        canon_of = table.canon

        # Candidate classes keyed by canonical signature.  ``reps`` holds
        # every registered representative so classes can be re-keyed when
        # a counterexample changes the signatures.
        classes: Dict[object, Tuple[int, bool]] = {}
        reps: List[int] = []

        def rebuild_classes() -> None:
            classes.clear()
            for rep in reps:
                canon, phase = canon_of(rep)
                if canon not in classes:
                    classes[canon] = (rep, phase)

        fresh = Aig(backend=aig.backend)
        rebuilt: Dict[int, int] = {0: FALSE}

        def node_edge(fanin: int) -> int:
            return rebuilt[node_of(fanin)] ^ (fanin & 1)

        budget = options.max_extra_patterns
        sat_enabled = True

        for node in cone:
            if node == 0:
                continue
            if aig.is_input(node):
                rebuilt[node] = fresh.var(aig.input_label(node))
                continue
            f0, f1 = aig.fanins(node)
            candidate = fresh.land(node_edge(f0), node_edge(f1))
            merged = False
            while sat_enabled:
                if deadline is not None and time.monotonic() > deadline:
                    # Time slice spent: finish the pass strash-only.
                    sat_enabled = False
                    self.degraded_sweeps += 1
                    self.last_sweep_degraded = True
                    break
                canon, phase = canon_of(node)
                entry = classes.get(canon)
                if entry is None:
                    break
                other_node, other_phase = entry
                same_phase = phase == other_phase
                a = node << 1
                b = (other_node << 1) | (0 if same_phase else 1)
                verdict = session.equivalent(
                    a, b, conflict_limit=options.max_sat_conflicts
                )
                if verdict:
                    other_edge = rebuilt[other_node]
                    rebuilt[node] = (
                        other_edge if same_phase else complement(other_edge)
                    )
                    merged = True
                    break
                if (
                    verdict is False
                    and options.use_counterexamples
                    and budget > 0
                ):
                    # Refuted with a model: absorb it, re-key the classes
                    # and retry — the new bit separates this node from the
                    # refuted representative, so the loop terminates.
                    budget -= 1
                    session.stats.counterexamples += 1
                    table.absorb(aig, cone, session.model_inputs(), self._patterns)
                    self._width = table.width
                    self.counterexamples_absorbed += 1
                    rebuild_classes()
                    continue
                # Refuted without a usable model (conflict limit, or
                # refinement disabled): leave the collision in place, as
                # the signature-only scheme always did.
                break
            if not merged:
                canon, phase = canon_of(node)
                if canon not in classes:
                    classes[canon] = (node, phase)
                    reps.append(node)
                rebuilt[node] = candidate

        new_root = rebuilt[node_of(root)] ^ (root & 1)
        compact, (final_root,) = fresh.extract([new_root])
        self._cache_result_words(compact, final_root)
        return compact, final_root

    def _cache_result_words(self, compact: Aig, root: int) -> None:
        """Pre-simulate the result manager so the next sweep on it only
        has to simulate nodes appended after this one."""
        self._sim_aig = compact
        table = _new_word_table(compact)
        self._sim_words = table
        if root in (TRUE, FALSE):
            table.mark_constant(self._width)
            return
        table.simulate(
            compact, root, self._patterns, self._width,
            pattern_word=_pattern_fill(self.options.seed),
        )


def fraig_root(
    aig: Aig,
    root: int,
    options: Optional[FraigOptions] = None,
    session: Optional[AigSatSession] = None,
) -> Tuple[Aig, int]:
    """One-shot sweep of the cone of ``root``; returns a fresh manager.

    Creates a throwaway :class:`FraigEngine`; long-running callers (the
    HQS main loop) should hold an engine instead so patterns, simulation
    words and SAT state persist across rounds.
    """
    return FraigEngine(options, session=session).sweep(aig, root)
