"""FRAIG-style functional reduction by simulation and SAT sweeping.

A FRAIG (Mishchenko et al.) is an AIG in which no two nodes compute the
same function up to complement.  We approximate the classical flow:

1. simulate the whole graph under a batch of random input patterns,
   hashing nodes into candidate equivalence classes by signature
   (signatures are canonicalized up to complement);
2. for each candidate pair, prove or refute equivalence with a SAT call
   on a miter; counterexamples refine the simulation patterns;
3. rebuild the graph, replacing every node by its class representative.

HQS runs this "from time to time" between elimination steps to keep the
matrix AIG small (Section II-C).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..sat.solver import SAT, UNSAT, CdclSolver
from .cnf_bridge import aig_to_cnf
from .graph import Aig, FALSE, TRUE, complement, is_complemented, node_of


class FraigOptions:
    """Tunables for the sweeping pass."""

    def __init__(
        self,
        num_patterns: int = 64,
        max_sat_conflicts: int = 2000,
        seed: int = 2015,
    ):
        self.num_patterns = num_patterns
        self.max_sat_conflicts = max_sat_conflicts
        self.seed = seed


def simulate(aig: Aig, root: int, patterns: Dict[int, int], width: int) -> Dict[int, int]:
    """Bit-parallel simulation of the cone of ``root``.

    ``patterns`` maps external variables to ``width``-bit words; returns
    the word computed at every node in the cone.
    """
    mask = (1 << width) - 1
    words: Dict[int, int] = {}
    for node in aig.cone_nodes(root):
        if node == 0:
            words[node] = 0
        elif aig.is_input(node):
            words[node] = patterns[aig.input_label(node)] & mask
        else:
            f0, f1 = aig.fanins(node)
            w0 = words[node_of(f0)] ^ (mask if is_complemented(f0) else 0)
            w1 = words[node_of(f1)] ^ (mask if is_complemented(f1) else 0)
            words[node] = w0 & w1
    return words


def fraig_root(aig: Aig, root: int, options: Optional[FraigOptions] = None) -> Tuple[Aig, int]:
    """Functionally reduce the cone of ``root``; returns a fresh manager.

    The result computes the same function; equivalent (or antivalent)
    internal nodes are merged when a SAT call proves the merge sound.
    """
    options = options or FraigOptions()
    if root in (TRUE, FALSE):
        return Aig(), root

    rng = random.Random(options.seed)
    support = sorted(aig.support(root))
    width = options.num_patterns
    patterns = {v: rng.getrandbits(width) for v in support}
    words = simulate(aig, root, patterns, width)
    mask = (1 << width) - 1

    cnf, _root_lit = aig_to_cnf(aig, root)
    solver = CdclSolver()
    solver.add_clauses(cnf.clauses)
    # Recover the node -> CNF variable map by re-deriving it the same way
    # aig_to_cnf does (deterministic cone order).
    node_var: Dict[int, int] = {}
    max_label = max(
        (aig.input_label(n) for n in aig.cone_nodes(root) if aig.is_input(n)),
        default=0,
    )
    next_var = max_label
    for node in aig.cone_nodes(root):
        if node == 0:
            next_var += 1
            node_var[node] = next_var
        elif aig.is_input(node):
            node_var[node] = aig.input_label(node)
        else:
            next_var += 1
            node_var[node] = next_var

    # Candidate classes keyed by canonical signature.
    representative: Dict[int, int] = {}  # node -> replacement edge (in new AIG terms)
    classes: Dict[int, Tuple[int, bool]] = {}  # canon signature -> (repr node, repr phase)

    fresh = Aig()
    rebuilt: Dict[int, int] = {0: FALSE}

    def node_edge(fanin: int) -> int:
        return rebuilt[node_of(fanin)] ^ (fanin & 1)

    for node in aig.cone_nodes(root):
        if node == 0:
            continue
        if aig.is_input(node):
            rebuilt[node] = fresh.var(aig.input_label(node))
            continue
        f0, f1 = aig.fanins(node)
        candidate = fresh.land(node_edge(f0), node_edge(f1))
        # canonical signature: choose phase so the lowest bit is 0
        word = words[node]
        phase = bool(word & 1)
        canon = (word ^ mask) if phase else word
        merged = False
        if canon in classes:
            other_node, other_phase = classes[canon]
            # verify equivalence: node == other (xor phases) via SAT
            same_phase = phase == other_phase
            a, b = node_var[node], node_var[other_node]
            eq = _prove_equal(solver, a, b, same_phase, options.max_sat_conflicts)
            if eq:
                other_edge = rebuilt[other_node]
                rebuilt[node] = other_edge if same_phase else complement(other_edge)
                merged = True
        if not merged:
            if canon not in classes:
                classes[canon] = (node, phase)
            rebuilt[node] = candidate

    new_root = rebuilt[node_of(root)] ^ (root & 1)
    compact, (final_root,) = fresh.extract([new_root])
    return compact, final_root


def _prove_equal(
    solver: CdclSolver, a: int, b: int, same_phase: bool, conflict_limit: int
) -> bool:
    """Prove ``a == b`` (or ``a == !b`` when not ``same_phase``) under the
    node-consistency CNF already loaded in ``solver``."""
    b_pos = b if same_phase else -b
    first = solver.solve([a, -b_pos], conflict_limit=conflict_limit)
    if first != UNSAT:
        return False
    second = solver.solve([-a, b_pos], conflict_limit=conflict_limit)
    return second == UNSAT
