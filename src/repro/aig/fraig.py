"""FRAIG-style functional reduction by simulation and SAT sweeping.

A FRAIG (Mishchenko et al.) is an AIG in which no two nodes compute the
same function up to complement.  We follow the classical flow:

1. simulate the whole graph under a batch of input patterns, hashing
   nodes into candidate equivalence classes by signature (signatures
   are canonicalized up to complement);
2. for each candidate pair, prove or refute equivalence with a SAT call
   on a miter; **counterexamples refine the simulation patterns** — the
   SAT model of a refuted merge is absorbed as a new pattern bit, which
   splits the false equivalence class and spares every later member of
   it another wasted SAT call;
3. rebuild the graph, replacing every node by its class representative.

HQS runs this "from time to time" between elimination steps to keep the
matrix AIG small (Section II-C).  :class:`FraigEngine` is the stateful
form of the pass: it keeps the accumulated patterns (including absorbed
counterexamples) and the per-node simulation words across sweep rounds,
and drives its SAT queries through a shared
:class:`~repro.sat.incremental.AigSatSession` so learned clauses
persist from sweep to sweep.  :func:`fraig_root` remains the one-shot
entry point.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Tuple

from ..sat.incremental import AigSatSession
from .graph import Aig, FALSE, TRUE, complement, is_complemented, node_of


class FraigOptions:
    """Tunables for the sweeping pass."""

    def __init__(
        self,
        num_patterns: int = 64,
        max_sat_conflicts: int = 2000,
        seed: int = 2015,
        use_counterexamples: bool = True,
        max_extra_patterns: int = 256,
    ):
        self.num_patterns = num_patterns
        self.max_sat_conflicts = max_sat_conflicts
        self.seed = seed
        # Absorb SAT models of refuted merges as new simulation patterns
        # (classical CEGAR refinement).  Off reproduces the plain
        # signature-only candidate scheme for comparisons.
        self.use_counterexamples = use_counterexamples
        # Upper bound on absorbed counterexample bits per engine, so a
        # pathological cone cannot grow the words without limit.
        self.max_extra_patterns = max_extra_patterns


def simulate(aig: Aig, root: int, patterns: Dict[int, int], width: int) -> Dict[int, int]:
    """Bit-parallel simulation of the cone of ``root``.

    ``patterns`` maps external variables to ``width``-bit words; returns
    the word computed at every node in the cone.
    """
    mask = (1 << width) - 1
    words: Dict[int, int] = {}
    for node in aig.cone_nodes(root):
        if node == 0:
            words[node] = 0
        elif aig.is_input(node):
            words[node] = patterns[aig.input_label(node)] & mask
        else:
            f0, f1 = aig.fanins(node)
            w0 = words[node_of(f0)] ^ (mask if is_complemented(f0) else 0)
            w1 = words[node_of(f1)] ^ (mask if is_complemented(f1) else 0)
            words[node] = w0 & w1
    return words


class FraigEngine:
    """Stateful sweeper: patterns, simulation words and SAT state persist.

    One engine serves many :meth:`sweep` calls.  Between calls it keeps:

    * the pattern words per external variable — including every absorbed
      counterexample bit, so a distinguishing input found in round *k*
      keeps splitting classes in round *k+n*;
    * the per-node simulation words of the most recent result manager —
      when the next sweep arrives on the same manager (HQS appends
      elimination nodes in place), only the new nodes are simulated;
    * optionally a shared :class:`AigSatSession` whose learned clauses
      carry across sweeps (pass one explicitly or per ``sweep`` call).
    """

    def __init__(
        self,
        options: Optional[FraigOptions] = None,
        session: Optional[AigSatSession] = None,
    ):
        self.options = options or FraigOptions()
        self.session = session
        self._rng = random.Random(self.options.seed)
        self._patterns: Dict[int, int] = {}
        self._width = 0
        self.counterexamples_absorbed = 0
        self.sweeps = 0
        #: Sweeps that ran out of their time slice mid-pass and finished
        #: in structural-hashing-only mode (no further SAT merges).
        self.degraded_sweeps = 0
        self.last_sweep_degraded = False
        # Simulation-word cache for the manager produced by the last
        # sweep.  Keyed by identity (plus pattern width): nodes are
        # append-only with immutable fanins, so cached words stay valid
        # for the lifetime of that manager object.
        self._sim_aig: Optional[Aig] = None
        self._sim_words: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # pattern bookkeeping
    # ------------------------------------------------------------------
    def _ensure_patterns(self, labels) -> None:
        if self._width == 0:
            self._width = self.options.num_patterns
        for label in labels:
            if label not in self._patterns:
                self._patterns[label] = self._rng.getrandbits(self._width)

    def _absorb_counterexample(
        self,
        aig: Aig,
        cone: List[int],
        words: Dict[int, int],
        assignment: Dict[int, bool],
    ) -> None:
        """Append the distinguishing input as one new bit to every word."""
        self._width += 1
        for label in self._patterns:
            bit = 1 if assignment.get(label, False) else 0
            self._patterns[label] = (self._patterns[label] << 1) | bit
        bits: Dict[int, int] = {}
        for node in cone:
            if node == 0:
                bit = 0
            elif aig.is_input(node):
                bit = 1 if assignment.get(aig.input_label(node), False) else 0
            else:
                f0, f1 = aig.fanins(node)
                b0 = bits[node_of(f0)] ^ (1 if is_complemented(f0) else 0)
                b1 = bits[node_of(f1)] ^ (1 if is_complemented(f1) else 0)
                bit = b0 & b1
            bits[node] = bit
            words[node] = (words[node] << 1) | bit
        self.counterexamples_absorbed += 1

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def sweep(
        self,
        aig: Aig,
        root: int,
        session: Optional[AigSatSession] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[Aig, int]:
        """Functionally reduce the cone of ``root``; returns a fresh manager.

        The result computes the same function; equivalent (or antivalent)
        internal nodes are merged when a SAT call proves the merge sound.

        ``deadline`` (a ``time.monotonic`` timestamp) bounds the SAT
        work: once it passes, the sweep *degrades* to
        structural-hashing-only compaction — the rebuild into the fresh
        manager continues (which already merges structurally identical
        nodes) but no further merge candidates are proved by SAT.  The
        degradation is recorded in ``degraded_sweeps`` /
        ``last_sweep_degraded``; the result stays sound either way.
        """
        options = self.options
        self.last_sweep_degraded = False
        if root in (TRUE, FALSE):
            return Aig(), root
        self.sweeps += 1

        session = session or self.session
        if session is None:
            session = AigSatSession(aig)
        else:
            session.rebind(aig)

        cone = aig.cone_nodes(root)
        self._ensure_patterns(
            aig.input_label(n) for n in cone if aig.is_input(n)
        )
        # Reuse cached words when sweeping the same manager again (HQS
        # appends elimination nodes in place between rounds); otherwise
        # simulate the cone from scratch.
        if aig is self._sim_aig:
            words = self._sim_words
        else:
            words = {}
        mask = (1 << self._width) - 1
        for node in cone:
            if node in words:
                continue
            if node == 0:
                words[node] = 0
            elif aig.is_input(node):
                words[node] = self._patterns[aig.input_label(node)] & mask
            else:
                f0, f1 = aig.fanins(node)
                w0 = words[node_of(f0)] ^ (mask if is_complemented(f0) else 0)
                w1 = words[node_of(f1)] ^ (mask if is_complemented(f1) else 0)
                words[node] = w0 & w1

        def canon_of(node: int) -> Tuple[int, bool]:
            word = words[node]
            phase = bool(word & 1)
            return ((word ^ mask) if phase else word, phase)

        # Candidate classes keyed by canonical signature.  ``reps`` holds
        # every registered representative so classes can be re-keyed when
        # a counterexample changes the signatures.
        classes: Dict[int, Tuple[int, bool]] = {}
        reps: List[int] = []

        def rebuild_classes() -> None:
            classes.clear()
            for rep in reps:
                canon, phase = canon_of(rep)
                if canon not in classes:
                    classes[canon] = (rep, phase)

        fresh = Aig()
        rebuilt: Dict[int, int] = {0: FALSE}

        def node_edge(fanin: int) -> int:
            return rebuilt[node_of(fanin)] ^ (fanin & 1)

        budget = options.max_extra_patterns
        sat_enabled = True

        for node in cone:
            if node == 0:
                continue
            if aig.is_input(node):
                rebuilt[node] = fresh.var(aig.input_label(node))
                continue
            f0, f1 = aig.fanins(node)
            candidate = fresh.land(node_edge(f0), node_edge(f1))
            merged = False
            while sat_enabled:
                if deadline is not None and time.monotonic() > deadline:
                    # Time slice spent: finish the pass strash-only.
                    sat_enabled = False
                    self.degraded_sweeps += 1
                    self.last_sweep_degraded = True
                    break
                canon, phase = canon_of(node)
                entry = classes.get(canon)
                if entry is None:
                    break
                other_node, other_phase = entry
                same_phase = phase == other_phase
                a = node << 1
                b = (other_node << 1) | (0 if same_phase else 1)
                verdict = session.equivalent(
                    a, b, conflict_limit=options.max_sat_conflicts
                )
                if verdict:
                    other_edge = rebuilt[other_node]
                    rebuilt[node] = (
                        other_edge if same_phase else complement(other_edge)
                    )
                    merged = True
                    break
                if (
                    verdict is False
                    and options.use_counterexamples
                    and budget > 0
                ):
                    # Refuted with a model: absorb it, re-key the classes
                    # and retry — the new bit separates this node from the
                    # refuted representative, so the loop terminates.
                    budget -= 1
                    session.stats.counterexamples += 1
                    self._absorb_counterexample(
                        aig, cone, words, session.model_inputs()
                    )
                    mask = (1 << self._width) - 1
                    rebuild_classes()
                    continue
                # Refuted without a usable model (conflict limit, or
                # refinement disabled): leave the collision in place, as
                # the signature-only scheme always did.
                break
            if not merged:
                canon, phase = canon_of(node)
                if canon not in classes:
                    classes[canon] = (node, phase)
                    reps.append(node)
                rebuilt[node] = candidate

        new_root = rebuilt[node_of(root)] ^ (root & 1)
        compact, (final_root,) = fresh.extract([new_root])
        self._cache_result_words(compact, final_root)
        return compact, final_root

    def _cache_result_words(self, compact: Aig, root: int) -> None:
        """Pre-simulate the result manager so the next sweep on it only
        has to simulate nodes appended after this one."""
        self._sim_aig = compact
        if root in (TRUE, FALSE):
            self._sim_words = {0: 0}
            return
        self._sim_words = simulate(compact, root, self._patterns, self._width)


def fraig_root(
    aig: Aig,
    root: int,
    options: Optional[FraigOptions] = None,
    session: Optional[AigSatSession] = None,
) -> Tuple[Aig, int]:
    """One-shot sweep of the cone of ``root``; returns a fresh manager.

    Creates a throwaway :class:`FraigEngine`; long-running callers (the
    HQS main loop) should hold an engine instead so patterns, simulation
    words and SAT state persist across rounds.
    """
    return FraigEngine(options, session=session).sweep(aig, root)
