"""ASCII AIGER (``aag``) reader/writer for combinational AIGs.

AIGER is the de-facto exchange format of the AIG world (ABC, aigpp,
model checkers).  Only the combinational subset is supported — latches
are rejected — which is all the DQBF pipeline needs.

Conventions match the AIGER spec: literal ``0`` is FALSE, ``1`` TRUE,
inputs get literals ``2, 4, ...`` and AND gates follow.  On parsing,
input *i* (1-based) becomes external variable ``i`` unless the symbol
table provides ``i<pos> <number>`` entries with numeric names.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .graph import FALSE, TRUE, Aig, complement, is_complemented, node_of


class AigerError(ValueError):
    """Raised on malformed AIGER input."""


def write_aiger(
    aig: Aig,
    roots: Sequence[int],
    comments: Sequence[str] = (),
) -> str:
    """Serialize the cones of ``roots`` in ASCII AIGER format.

    Inputs are emitted in ascending order of their external variable
    label; the symbol table records the labels so a round trip restores
    them.
    """
    # collect the union of cones in topological order
    seen: set = set()
    order: List[int] = []
    for root in roots:
        for node in aig.cone_nodes(root):
            if node not in seen:
                seen.add(node)
                order.append(node)

    inputs = sorted(
        (aig.input_label(n), n) for n in order if aig.is_input(n)
    )
    ands = [n for n in order if aig.is_and(n)]

    # assign AIGER indices: inputs first, then AND gates
    aiger_index: Dict[int, int] = {0: 0}
    for position, (_label, node) in enumerate(inputs, start=1):
        aiger_index[node] = position
    next_index = len(inputs) + 1

    def lit_of(edge: int) -> int:
        index = aiger_index[node_of(edge)]
        return 2 * index + (1 if is_complemented(edge) else 0)

    and_lines: List[str] = []
    for node in ands:
        aiger_index[node] = next_index
        next_index += 1
        f0, f1 = aig.fanins(node)
        lhs = 2 * aiger_index[node]
        rhs = sorted((lit_of(f0), lit_of(f1)), reverse=True)
        and_lines.append(f"{lhs} {rhs[0]} {rhs[1]}")

    max_index = next_index - 1
    lines = [f"aag {max_index} {len(inputs)} 0 {len(roots)} {len(ands)}"]
    lines += [str(2 * aiger_index[node]) for _label, node in inputs]
    lines += [str(lit_of(root)) for root in roots]
    lines += and_lines
    for position, (label, _node) in enumerate(inputs):
        lines.append(f"i{position} {label}")
    for position in range(len(roots)):
        lines.append(f"o{position} o{position}")
    if comments:
        lines.append("c")
        lines.extend(comments)
    return "\n".join(lines) + "\n"


def parse_aiger(text: str) -> Tuple[Aig, List[int], Dict[int, int]]:
    """Parse ASCII AIGER into ``(aig, output_edges, input_labels)``.

    ``input_labels`` maps input position (1-based) to the external
    variable used in the returned AIG (taken from numeric ``i`` symbols
    when present, else the position itself).
    """
    lines = [line.rstrip("\n") for line in text.splitlines()]
    if not lines:
        raise AigerError("empty input")
    header = lines[0].split()
    if len(header) != 6 or header[0] != "aag":
        raise AigerError(f"malformed header {lines[0]!r} (only ASCII 'aag' supported)")
    try:
        max_index, num_inputs, num_latches, num_outputs, num_ands = map(int, header[1:])
    except ValueError as exc:
        raise AigerError("non-integer header field") from exc
    if num_latches:
        raise AigerError("latches are not supported (combinational AIGs only)")

    body = lines[1:]
    needed = num_inputs + num_outputs + num_ands
    if len(body) < needed:
        raise AigerError("truncated AIGER body")

    input_lits = [_int(body[i]) for i in range(num_inputs)]
    output_lits = [
        _int(body[num_inputs + i]) for i in range(num_outputs)
    ]
    and_specs = []
    for i in range(num_ands):
        parts = body[num_inputs + num_outputs + i].split()
        if len(parts) != 3:
            raise AigerError(f"malformed AND line {body[num_inputs + num_outputs + i]!r}")
        and_specs.append(tuple(map(int, parts)))

    # symbol table: numeric input names override default labels
    input_labels: Dict[int, int] = {i + 1: i + 1 for i in range(num_inputs)}
    for line in body[needed:]:
        if line == "c":
            break
        if line.startswith("i"):
            try:
                pos_text, name = line[1:].split(None, 1)
                position = int(pos_text)
                input_labels[position + 1] = int(name)
            except ValueError:
                continue  # non-numeric symbol: keep default

    aig = Aig()
    edge_of_lit: Dict[int, int] = {0: FALSE, 1: TRUE}
    for position, lit in enumerate(input_lits, start=1):
        if lit % 2 or lit == 0:
            raise AigerError(f"invalid input literal {lit}")
        edge = aig.var(input_labels[position])
        edge_of_lit[lit] = edge
        edge_of_lit[lit + 1] = complement(edge)

    def resolve(lit: int) -> int:
        edge = edge_of_lit.get(lit)
        if edge is None:
            raise AigerError(f"literal {lit} used before definition")
        return edge

    for lhs, rhs0, rhs1 in and_specs:
        if lhs % 2 or lhs == 0:
            raise AigerError(f"invalid AND lhs {lhs}")
        edge = aig.land(resolve(rhs0), resolve(rhs1))
        edge_of_lit[lhs] = edge
        edge_of_lit[lhs + 1] = complement(edge)

    outputs = [resolve(lit) for lit in output_lits]
    return aig, outputs, input_labels


def _int(line: str) -> int:
    try:
        return int(line.strip())
    except ValueError as exc:
        raise AigerError(f"expected integer line, got {line!r}") from exc


def save_aiger(aig: Aig, roots: Sequence[int], path: str) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_aiger(aig, roots))


def load_aiger(path: str) -> Tuple[Aig, List[int], Dict[int, int]]:
    with open(path, "r", encoding="ascii") as handle:
        return parse_aiger(handle.read())
