"""Vectorized numpy kernels over the struct-of-arrays AIG core.

This module is only imported when a manager runs on the ``numpy``
backend (see :mod:`repro.aig.backend`).  :class:`NumpyKernels` mirrors
the manager's flat parallel node arrays (``fanin0``, ``fanin1``, input
labels, levels) into ``int64`` ndarrays grown with amortized doubling
and synced lazily — scalar node construction stays on Python lists,
which are faster to append to, while the hot sweeps below run at C
speed:

* **cone marking** — breadth-first frontier expansion over the fanin
  arrays; node ids ascend fanin-before-node, so the marked ids in
  ascending order are a topological order of the cone;
* **dependency masks** — "does the cone of node *n* contain any of
  these external variables", one boolean per node, computed by a single
  level-ordered array sweep.  The fused elimination kernels consult
  this mask for their share-vs-rebuild classification instead of
  filling per-node frozenset support caches;
* **support / level queries** — the structural support of a root is the
  label set of the inputs inside its cone mask (levels are maintained
  eagerly by the core and never need a sweep);
* **bit-parallel simulation** — :class:`NumpyWordTable` keeps one row
  of ``uint64`` pattern words per node and simulates whole level groups
  at a time, replacing the per-node Python-bignum dictionary of the
  historical FRAIG path.

Level groups (the AND nodes bucketed by level, ascending) are the
backbone of every sweep: levels are strictly fanin-monotone, so
processing groups in order guarantees operands are ready, and each
group is one vectorized gather/combine/scatter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .backend import get_numpy

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def _int_to_words(np, value: int, num_words: int):
    """Little-endian split of a Python bignum into ``uint64`` words."""
    return np.frombuffer(
        (value & ((1 << (_WORD_BITS * num_words)) - 1)).to_bytes(
            num_words * 8, "little"
        ),
        dtype=np.uint64,
    ).copy()


def _words_to_int(row) -> int:
    """Recombine a ``uint64`` word row into a Python bignum."""
    return int.from_bytes(row.tobytes(), "little")


class NumpyKernels:
    """Array mirror + vectorized kernels for one :class:`Aig` manager."""

    def __init__(self, aig) -> None:
        self._aig = aig
        self._np = get_numpy()
        self._cap = 0
        self._synced = 0  # nodes mirrored so far (sync watermark)
        self._f0 = self._f1 = self._label = self._level = None
        self._f0n = self._f1n = None  # fanin node ids (edges >> 1)
        self._groups_n = -1  # node count the cached level groups refer to
        self._groups: List = []

    # ------------------------------------------------------------------
    # array mirror
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Mirror nodes appended since the last sync; returns node count."""
        aig = self._aig
        f0_list = aig._fanin0
        n = len(f0_list)
        if n > self._cap:
            self._grow(max(2 * self._cap, n, 1024))
        start = self._synced
        if start < n:
            np = self._np
            self._f0[start:n] = f0_list[start:n]
            self._f1[start:n] = aig._fanin1[start:n]
            self._label[start:n] = aig._input_label[start:n]
            self._level[start:n] = aig._level[start:n]
            np.right_shift(self._f0[start:n], 1, out=self._f0n[start:n])
            np.right_shift(self._f1[start:n], 1, out=self._f1n[start:n])
            self._synced = n
        return n

    def _grow(self, capacity: int) -> None:
        np = self._np
        for name in ("_f0", "_f1", "_label", "_level", "_f0n", "_f1n"):
            fresh = np.empty(capacity, dtype=np.int64)
            old = getattr(self, name)
            if old is not None:
                fresh[: self._synced] = old[: self._synced]
            setattr(self, name, fresh)
        self._cap = capacity

    def _and_level_groups(self) -> List:
        """AND-node ids bucketed by level, ascending (cached per count)."""
        n = self.sync()
        if self._groups_n == n:
            return self._groups
        np = self._np
        and_ids = np.nonzero(self._f0[:n] >= 0)[0]
        groups: List = []
        if and_ids.size:
            levels = self._level[and_ids]
            order = and_ids[np.argsort(levels, kind="stable")]
            sorted_levels = self._level[order]
            # group boundaries: one slice per distinct level value
            cuts = np.nonzero(sorted_levels[1:] != sorted_levels[:-1])[0] + 1
            start = 0
            for cut in cuts.tolist() + [order.size]:
                groups.append(order[start:cut])
                start = cut
        self._groups_n = n
        self._groups = groups
        return groups

    # ------------------------------------------------------------------
    # cone marking
    # ------------------------------------------------------------------
    def cone_mask(self, node: int):
        """Boolean per-node mask of the transitive fanin cone of ``node``.

        One descending level sweep: fanin levels are strictly smaller,
        so by the time a group is processed every mark that can reach it
        from above has been scattered.  Each group is filtered to its
        marked members first, so work stays proportional to the cone
        (plus one boolean gather per group).
        """
        np = self._np
        n = self.sync()
        mask = np.zeros(n, dtype=bool)
        mask[node] = True
        node_level = int(self._level[node])
        f0n, f1n = self._f0n, self._f1n
        for ids in reversed(self._and_level_groups()):
            if int(self._level[ids[0]]) > node_level:
                continue
            ids = ids[mask[ids]]
            if ids.size:
                mask[f0n[ids]] = True
                mask[f1n[ids]] = True
        return mask

    def cone_support(self, node: int) -> frozenset:
        """External variables labelling the inputs inside the cone."""
        mask = self.cone_mask(node)
        labels = self._label[: mask.size][mask]
        labels = labels[labels > 0]
        return frozenset(labels.tolist())

    def cone_and_count(self, root: int) -> int:
        """Number of AND nodes in the cone of a root edge."""
        mask = self.cone_mask(root >> 1)
        return int(self._np.count_nonzero(mask & (self._f0[: mask.size] >= 0)))

    # ------------------------------------------------------------------
    # dependency masks (share-vs-rebuild classification)
    # ------------------------------------------------------------------
    def depends_mask(self, labels: Iterable[int]) -> List[bool]:
        """Per-node flag: does the cone of the node contain any label?

        Equivalent to ``not support_of(node).isdisjoint(labels)`` for
        every node at once; returned as a plain list for fast scalar
        indexing in the rebuild loops.
        """
        np = self._np
        n = self.sync()
        dep = self._seed_mask(labels, n)
        f0n, f1n = self._f0n, self._f1n
        for ids in self._and_level_groups():
            dep[ids] = dep[f0n[ids]] | dep[f1n[ids]]
        return dep.tolist()

    def depends_mask2(
        self, var: int, others: Iterable[int]
    ) -> Tuple[List[bool], List[bool]]:
        """One sweep computing (depends on ``var``, depends on ``var`` or
        any of ``others``) — the two classifications the fused Theorem-1
        kernel needs."""
        np = self._np
        n = self.sync()
        dep_var = np.equal(self._label[:n], var)
        dep_rel = dep_var | self._seed_mask(others, n)
        f0n, f1n = self._f0n, self._f1n
        for ids in self._and_level_groups():
            dep_var[ids] = dep_var[f0n[ids]] | dep_var[f1n[ids]]
            dep_rel[ids] = dep_rel[f0n[ids]] | dep_rel[f1n[ids]]
        return dep_var.tolist(), dep_rel.tolist()

    def _seed_mask(self, labels: Iterable[int], n: int):
        np = self._np
        labels = list(labels)
        if not labels:
            return np.zeros(n, dtype=bool)
        if len(labels) == 1:
            return np.equal(self._label[:n], labels[0])
        # labels are positive and non-input nodes carry label 0, so a
        # plain membership test marks exactly the matching input nodes
        return np.isin(self._label[:n], np.array(labels, dtype=np.int64))

    # ------------------------------------------------------------------
    # misc vectorized queries
    # ------------------------------------------------------------------
    def count_depending_ands(self, root: int, var: int) -> int:
        """AND nodes in the cone of ``root`` whose cone contains ``var``."""
        np = self._np
        n = self.sync()
        dep = np.equal(self._label[:n], var)
        f0n, f1n = self._f0n, self._f1n
        for ids in self._and_level_groups():
            dep[ids] = dep[f0n[ids]] | dep[f1n[ids]]
        mask = self.cone_mask(root >> 1)
        return int(np.count_nonzero(mask & dep & (self._f0[:n] >= 0)))

    def input_fanout_counts(self, root: int, labels) -> Dict[int, int]:
        """Direct fanout count of each label's input node inside the cone."""
        np = self._np
        mask = self.cone_mask(root >> 1)
        n = mask.size
        ands = np.nonzero(mask & (self._f0[:n] >= 0))[0]
        if not ands.size:
            return {}
        children = np.concatenate((self._f0n[ands], self._f1n[ands]))
        child_labels = self._label[children]
        child_labels = child_labels[child_labels > 0]
        wanted = set(labels)
        uniq, counts = np.unique(child_labels, return_counts=True)
        return {
            int(label): int(count)
            for label, count in zip(uniq.tolist(), counts.tolist())
            if label in wanted
        }

    def find_pures(self, root: int) -> Dict[int, bool]:
        """Vectorized negation-parity propagation (Theorem 6 pures).

        ``parity[node]`` is a 2-bit mask: bit 0 = reachable from the
        root with an even number of negations, bit 1 = odd.  Levels are
        strictly fanin-monotone, so one descending level sweep
        propagates final parities parents-before-children.
        """
        np = self._np
        n = self.sync()
        parity = np.zeros(n, dtype=np.uint8)
        parity[root >> 1] = 1 << (root & 1)
        f0, f1, f0n, f1n = self._f0, self._f1, self._f0n, self._f1n
        for ids in reversed(self._and_level_groups()):
            active = parity[ids] != 0
            if not active.any():
                continue
            ids = ids[active]
            p = parity[ids]
            swapped = ((p & 1) << 1) | (p >> 1)
            np.bitwise_or.at(
                parity, f0n[ids], np.where((f0[ids] & 1) == 1, swapped, p)
            )
            np.bitwise_or.at(
                parity, f1n[ids], np.where((f1[ids] & 1) == 1, swapped, p)
            )
        inputs = np.nonzero((self._label[:n] > 0) & (parity > 0) & (parity < 3))[0]
        return {
            int(self._label[node]): bool(parity[node] == 1)
            for node in inputs.tolist()
        }


class NumpyWordTable:
    """Per-node simulation words as a ``(nodes, words)`` ``uint64`` array.

    The drop-in replacement for the FRAIG engine's ``Dict[int, int]``
    bignum table: one row per node, bit *i* of the pattern stored
    little-endian as bit ``i % 64`` of word ``i // 64``.  Simulation
    runs level group by level group; counterexample absorption sets one
    new bit column in place instead of shifting every word.
    """

    is_numpy = True

    def __init__(self, kernels: NumpyKernels) -> None:
        self._kernels = kernels
        self._np = kernels._np
        self.width = 0
        self._num_words = 0
        self._rows = 0
        self._words = None
        self._known = None
        self._full = None  # complement mask vector for the current width

    # -- storage -------------------------------------------------------
    def _ensure(self, rows: int, width: int) -> None:
        np = self._np
        num_words = max(1, (width + _WORD_BITS - 1) // _WORD_BITS)
        if self._words is None or rows > self._rows or num_words > self._num_words:
            cap = max(self._rows * 2, rows, 1024)
            fresh = np.zeros((cap, num_words), dtype=np.uint64)
            known = np.zeros(cap, dtype=bool)
            if self._words is not None:
                fresh[: self._rows, : self._num_words] = self._words[: self._rows]
                known[: self._rows] = self._known[: self._rows]
            self._words = fresh
            self._known = known
            self._rows = cap
            self._num_words = num_words
        if width != self.width or self._full is None:
            self._full = _int_to_words(
                np, (1 << width) - 1 if width else 0, self._num_words
            )
            self.width = width

    # -- the dict-like face used by tests and callers ------------------
    def __contains__(self, node: int) -> bool:
        return self._known is not None and node < self._rows and bool(self._known[node])

    def __getitem__(self, node: int) -> int:
        if node not in self:
            raise KeyError(node)
        return self.word(node)

    def get(self, node: int, default: Optional[int] = None) -> Optional[int]:
        if node not in self:
            return default
        return self.word(node)

    def keys(self):
        if self._known is None:
            return []
        return self._np.nonzero(self._known)[0].tolist()

    def mark_constant(self, width: int) -> None:
        """Record only the constant node (used for constant sweep results)."""
        self._ensure(1, max(width, 1))
        self._known[0] = True
        self.width = width

    def word(self, node: int) -> int:
        """The node's pattern word as a Python bignum (width bits)."""
        mask = (1 << self.width) - 1 if self.width else 0
        return _words_to_int(self._words[node]) & mask

    def items(self):
        np = self._np
        if self._known is None:
            return
        for node in np.nonzero(self._known)[0].tolist():
            yield node, self.word(node)

    # -- simulation ----------------------------------------------------
    def simulate(self, aig, root: int, patterns: Dict[int, int], width: int,
                 pattern_word=None) -> None:
        """Fill words for every not-yet-known node in the cone of ``root``.

        ``pattern_word(patterns, label, width)`` resolves the word of an
        external variable (and may back-fill missing labels); it
        defaults to a plain ``dict`` lookup.
        """
        np = self._np
        kernels = self._kernels
        n = kernels.sync()
        self._ensure(n, width)
        cone = kernels.cone_mask(root >> 1)
        todo = cone & ~self._known[:n]
        if not todo.any():
            return
        label = kernels._label[:n]
        resolve = pattern_word if pattern_word is not None else (
            lambda mapping, lab, _width: mapping[lab]
        )
        width_mask = (1 << width) - 1
        inputs = np.nonzero(todo & (label > 0))[0]
        if inputs.size:
            # one frombuffer over a joined blob instead of one ndarray
            # round trip per input — the resolver loop is the only
            # remaining per-input Python work
            num_bytes = self._num_words * 8
            get = patterns.get
            chunks = []
            for lab in label[inputs].tolist():
                value = get(lab)
                if value is None:
                    value = resolve(patterns, int(lab), width)
                chunks.append((value & width_mask).to_bytes(num_bytes, "little"))
            blob = b"".join(chunks)
            self._words[inputs, : self._num_words] = np.frombuffer(
                blob, dtype=np.uint64
            ).reshape(inputs.size, self._num_words)
        # the constant node's row is all-zero by construction
        f0, f1 = kernels._f0, kernels._f1
        f0n, f1n = kernels._f0n, kernels._f1n
        full = self._full
        words = self._words
        for ids in kernels._and_level_groups():
            ids = ids[todo[ids]]
            if not ids.size:
                continue
            w0 = words[f0n[ids]]
            w1 = words[f1n[ids]]
            w0[(f0[ids] & 1).astype(bool)] ^= full
            w1[(f1[ids] & 1).astype(bool)] ^= full
            words[ids] = w0 & w1
        self._known[:n] |= cone

    def canon(self, node: int) -> Tuple[bytes, bool]:
        """Canonical (up to complement) signature key and phase bit."""
        row = self._words[node]
        phase = bool(row[0] & self._np.uint64(1))
        if phase:
            row = row ^ self._full
        return row.tobytes(), phase

    def absorb(self, aig, cone, assignment: Dict[int, bool],
               patterns: Dict[int, int]) -> None:
        """Append the distinguishing input as one new bit column.

        ``cone`` is the ascending node-id list of the current sweep's
        cone; every pattern word and every cone-node word gains the new
        bit at position ``width`` (no shifting), after which the table's
        width grows by one.
        """
        np = self._np
        kernels = self._kernels
        position = self.width
        word_index, bit_index = divmod(position, _WORD_BITS)
        n = kernels.sync()
        self._ensure(n, position + 1)
        for label in patterns:
            if assignment.get(label, False):
                patterns[label] |= 1 << position
        # one-bit simulation of the counterexample over the cone
        in_cone = np.zeros(n, dtype=bool)
        cone_ids = np.array(cone, dtype=np.int64)
        in_cone[cone_ids] = True
        label = kernels._label[:n]
        bit = np.zeros(n, dtype=bool)
        for node in np.nonzero(in_cone & (label > 0))[0].tolist():
            bit[node] = assignment.get(int(label[node]), False)
        f0, f1 = kernels._f0, kernels._f1
        f0n, f1n = kernels._f0n, kernels._f1n
        for ids in kernels._and_level_groups():
            ids = ids[in_cone[ids]]
            if not ids.size:
                continue
            b0 = bit[f0n[ids]] ^ (f0[ids] & 1).astype(bool)
            b1 = bit[f1n[ids]] ^ (f1[ids] & 1).astype(bool)
            bit[ids] = b0 & b1
        column = bit[cone_ids].astype(np.uint64) << np.uint64(bit_index)
        self._words[cone_ids, word_index] |= column

