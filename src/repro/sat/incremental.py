"""Incremental SAT service over AIG cones.

Every SAT query of the HQS inner loop — FRAIG miter checks, semantic
constant tests, implication probes — used to Tseitin-encode the cone
from scratch into a throwaway :class:`~repro.sat.solver.CdclSolver`,
discarding all learned clauses after each answer.  The
:class:`AigSatSession` replaces that with the incremental discipline of
FRAIG sweeping (Mishchenko et al.) and clausal-abstraction QBF solvers:

* **one long-lived solver per AIG manager.**  The clause database only
  ever grows; learned clauses persist across queries, across sweep
  rounds, and across elimination steps.
* **lazy, deduplicated encoding.**  A node is Tseitin-encoded at most
  once per manager generation; queries on overlapping cones pay only
  for the nodes not yet in the clause database.
* **assumption-based queries.**  Nothing is asserted permanently, so
  miter, constant and implication questions about arbitrary roots can
  be interleaved freely on the same solver.
* **generation-aware rebinding.**  Elimination compacts (``extract``)
  and FRAIG rebuilds replace the manager; :meth:`rebind` drops only the
  per-node variable map.  External input labels keep their solver
  variables across rebinds, and the old generation's definitional
  clauses remain sound (each auxiliary is functionally determined by
  the inputs), so learned clauses over inputs keep pruning the search
  in later rounds.

``persistent=False`` degrades the session to the historical
fresh-solver-per-query behaviour while keeping the same counters,
which is what `benchmarks/bench_satsweep.py` compares against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..errors import TimeoutExceeded
from .solver import SAT, UNKNOWN, UNSAT, CdclSolver

if TYPE_CHECKING:  # pragma: no cover - import cycle: aig.fraig uses this module
    from ..aig.graph import Aig

# AIGER edge encoding (kept inline so this module does not import
# repro.aig, which itself imports repro.sat for the FRAIG sweeper).
FALSE = 0
TRUE = 1


def _node_of(edge: int) -> int:
    return edge >> 1


class SatServiceStats:
    """Counters of one SAT session (exported as ``sat_*`` solver stats).

    ``learnts_reused`` accumulates, per query, the number of learned
    clauses already in the database when the query started — the reuse
    a fresh-solver-per-query discipline forfeits.  ``encode_cache_hits``
    counts nodes (and fully cached roots) whose Tseitin encoding was
    skipped because a previous query already emitted it.
    """

    _FIELDS = (
        "queries",
        "sat_answers",
        "unsat_answers",
        "unknown_answers",
        "conflicts",
        "decisions",
        "propagations",
        "nodes_encoded",
        "clauses_encoded",
        "encode_cache_hits",
        "learnts_reused",
        "counterexamples",
        "solver_resets",
        "rebinds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SatServiceStats({inner})"


class AigSatSession:
    """A persistent SAT solver bound to (successive generations of) an AIG.

    Typical use::

        session = AigSatSession(aig)
        if session.equivalent(edge_a, edge_b):
            ...                       # merge proven; learned clauses kept
        session.is_satisfiable(root)  # reuses everything encoded so far
        aig2, (root2,) = aig.extract([root])
        session.rebind(aig2)          # keep solver, re-key the node map
    """

    def __init__(
        self,
        aig: Aig,
        persistent: bool = True,
        solver: Optional[CdclSolver] = None,
        stats: Optional[SatServiceStats] = None,
        max_clauses: Optional[int] = None,
        guard=None,
    ) -> None:
        self.aig = aig
        self.generation = aig.cache_generation
        self.persistent = persistent
        self.stats = stats if stats is not None else SatServiceStats()
        self.max_clauses = max_clauses
        #: Optional :class:`~repro.core.guard.ResourceGuard`: every query
        #: charges its conflicts there, so a solver-wide SAT-conflict
        #: budget covers FRAIG miters, constant checks and endgames
        #: without each call site doing its own accounting.
        self.guard = guard
        self._solver = solver if solver is not None else CdclSolver()
        #: external input label -> solver variable (survives rebinds)
        self._input_var: Dict[int, int] = {}
        #: AIG node -> solver variable (valid for the current generation)
        self._node_var: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def rebind(self, aig: Aig) -> "AigSatSession":
        """Point the session at ``aig`` (same or new manager/generation).

        A no-op when the binding is already current.  Otherwise the
        per-node variable map is dropped; the solver — including input
        variables and all learned clauses — is kept in persistent mode,
        unless the clause database outgrew ``max_clauses``.
        """
        if aig is self.aig and aig.cache_generation == self.generation:
            return self
        self.aig = aig
        self.generation = aig.cache_generation
        self._node_var = {}
        self.stats.rebinds += 1
        if not self.persistent:
            self._fresh_solver()
        elif (
            self.max_clauses is not None
            and self._solver.statistics["clauses"] > self.max_clauses
        ):
            self._fresh_solver()
        return self

    def _fresh_solver(self) -> None:
        self._solver = CdclSolver()
        self._input_var = {}
        self._node_var = {}
        self.stats.solver_resets += 1

    @property
    def solver(self) -> CdclSolver:
        """The underlying solver (for statistics inspection)."""
        return self._solver

    # ------------------------------------------------------------------
    # lazy Tseitin encoding
    # ------------------------------------------------------------------
    def _add(self, clause) -> None:
        self._solver.add_clause(clause)
        self.stats.clauses_encoded += 1

    def _var_for_input(self, label: int) -> int:
        var = self._input_var.get(label)
        if var is None:
            var = self._solver.new_var()
            self._input_var[label] = var
        return var

    def lit_of(self, edge: int) -> int:
        """Solver literal equisatisfiable with the function at ``edge``.

        Encodes exactly the not-yet-encoded part of the cone as a side
        effect; nothing is asserted.
        """
        node = edge >> 1
        var = self._node_var.get(node)
        if var is None:
            self._encode_cone(edge)
            var = self._node_var[node]
        else:
            self.stats.encode_cache_hits += 1
        return -var if edge & 1 else var

    def _encode_cone(self, edge: int) -> None:
        aig = self.aig
        node_var = self._node_var
        stats = self.stats
        for node in aig.cone_nodes(edge):
            if node in node_var:
                stats.encode_cache_hits += 1
                continue
            if node == 0:
                var = self._solver.new_var()
                self._add([-var])
            elif aig.is_input(node):
                var = self._var_for_input(aig.input_label(node))
            else:
                var = self._solver.new_var()
                f0, f1 = aig.fanins(node)
                a = self._fanin_lit(f0)
                b = self._fanin_lit(f1)
                self._add([-var, a])
                self._add([-var, b])
                self._add([var, -a, -b])
            node_var[node] = var
            stats.nodes_encoded += 1

    def _fanin_lit(self, edge: int) -> int:
        var = self._node_var[edge >> 1]
        return -var if edge & 1 else var

    # ------------------------------------------------------------------
    # queries (assumption-based; nothing is ever asserted)
    # ------------------------------------------------------------------
    def _solve(
        self,
        assumptions,
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> str:
        solver = self._solver
        stats = self.stats
        before = solver.statistics
        stats.queries += 1
        stats.learnts_reused += before["learnts"]
        status = solver.solve(
            assumptions, conflict_limit=conflict_limit, deadline=deadline
        )
        after = solver.statistics
        spent = after["conflicts"] - before["conflicts"]
        stats.conflicts += spent
        stats.decisions += after["decisions"] - before["decisions"]
        stats.propagations += after["propagations"] - before["propagations"]
        if self.guard is not None:
            self.guard.charge_conflicts(spent)
        if status == SAT:
            stats.sat_answers += 1
        elif status == UNSAT:
            stats.unsat_answers += 1
        else:
            stats.unknown_answers += 1
        return status

    def is_satisfiable(self, root: int, deadline: Optional[float] = None) -> bool:
        """Semantic constant-0 test: is the function at ``root`` satisfiable?

        Raises :class:`~repro.errors.TimeoutExceeded` when ``deadline``
        passes mid-solve.
        """
        if root == FALSE:
            return False
        if root == TRUE:
            return True
        if not self.persistent:
            self._fresh_solver()
        status = self._solve([self.lit_of(root)], deadline=deadline)
        if status == UNKNOWN:
            raise TimeoutExceeded()
        return status == SAT

    def is_tautology(self, root: int, deadline: Optional[float] = None) -> bool:
        """Semantic constant-1 test via the complement."""
        return not self.is_satisfiable(root ^ 1, deadline)

    def implies(
        self, a: int, b: int, conflict_limit: Optional[int] = None
    ) -> Optional[bool]:
        """Does the function at ``a`` imply the function at ``b``?

        ``None`` when the conflict limit was exhausted before an answer.
        """
        if a == FALSE or b == TRUE or a == b:
            return True
        if not self.persistent:
            self._fresh_solver()
        status = self._solve(
            [self.lit_of(a), -self.lit_of(b)], conflict_limit=conflict_limit
        )
        if status == UNKNOWN:
            return None
        return status == UNSAT

    def equivalent(
        self, a: int, b: int, conflict_limit: Optional[int] = None
    ) -> Optional[bool]:
        """Miter check: do ``a`` and ``b`` compute the same function?

        Returns ``True`` (proved), ``False`` (refuted — a distinguishing
        input assignment is then available via :meth:`model_inputs`), or
        ``None`` when the conflict limit was exhausted.
        """
        if a == b:
            return True
        if a == (b ^ 1):
            return False if a in (TRUE, FALSE) else self._refute_complement(a)
        if not self.persistent:
            self._fresh_solver()
        la, lb = self.lit_of(a), self.lit_of(b)
        status = self._solve([la, -lb], conflict_limit=conflict_limit)
        if status == SAT:
            return False
        if status == UNKNOWN:
            return None
        status = self._solve([-la, lb], conflict_limit=conflict_limit)
        if status == SAT:
            return False
        if status == UNKNOWN:
            return None
        return True

    def _refute_complement(self, a: int) -> Optional[bool]:
        """``a`` vs ``!a``: syntactically antivalent, produce a witness model."""
        if not self.persistent:
            self._fresh_solver()
        status = self._solve([self.lit_of(a)])
        if status == UNKNOWN:  # pragma: no cover - no limit passed
            return None
        if status == UNSAT:
            # a is constant false: refuted with the all-default assignment
            status = self._solve([-self.lit_of(a)])
        return False

    def model_inputs(self) -> Dict[int, bool]:
        """Input-label assignment from the last :data:`SAT` answer.

        Labels the solver never saw default to ``False`` on the caller's
        side (they are simply absent from the returned dict).
        """
        model = self._solver.model()
        return {
            label: model.get(var, False)
            for label, var in self._input_var.items()
        }
