"""SAT solving substrate: a CDCL solver, an incremental AIG-bound
session service, and a DPLL test oracle."""

from .incremental import AigSatSession, SatServiceStats
from .simple import count_models, dpll_solve
from .solver import SAT, UNKNOWN, UNSAT, CdclSolver, solve_cnf

__all__ = [
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "CdclSolver",
    "AigSatSession",
    "SatServiceStats",
    "solve_cnf",
    "dpll_solve",
    "count_models",
]
