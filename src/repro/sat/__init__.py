"""SAT solving substrate: a CDCL solver and a DPLL test oracle."""

from .simple import count_models, dpll_solve
from .solver import SAT, UNKNOWN, UNSAT, CdclSolver, solve_cnf

__all__ = [
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "CdclSolver",
    "solve_cnf",
    "dpll_solve",
    "count_models",
]
