"""A CDCL SAT solver (the ``antom`` stand-in of the reproduction).

Implements the standard modern architecture: two-watched-literal
propagation, first-UIP conflict analysis with clause minimization, VSIDS
branching with phase saving, Luby restarts, LBD-based learned-clause
deletion, and an incremental assumption interface (needed by the MaxSAT
layer and by FRAIG sweeping).

Literals follow the DIMACS convention externally; internally literal
``l`` is encoded as ``2*v`` (positive) or ``2*v+1`` (negative) so watch
lists can live in flat lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


def _encode(lit: int) -> int:
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def _decode(enc: int) -> int:
    var = enc >> 1
    return var if (enc & 1) == 0 else -var


def _negate(enc: int) -> int:
    return enc ^ 1


class _Clause:
    """A clause in the solver database."""

    __slots__ = ("lits", "learnt", "lbd", "activity")

    def __init__(self, lits: List[int], learnt: bool = False, lbd: int = 0):
        self.lits = lits
        self.learnt = learnt
        self.lbd = lbd
        self.activity = 0.0


class CdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve() == SAT
        model = solver.model()          # {var: bool}
        assert solver.solve([-2]) == UNSAT
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._watches: List[List[_Clause]] = [[], []]
        self._assign: List[int] = [0]          # 0 unassigned, 1 true, -1 false (per var)
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._trail: List[int] = []            # encoded literals
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._polarity: List[bool] = [False]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order: List[int] = []            # lazy heap (indices = vars)
        self._heap_pos: List[int] = [-1]
        self._ok = True
        self._model: Dict[int, bool] = {}
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._failed_assumptions: List[int] = []
        self._seen: List[int] = [0]

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._heap_pos.append(-1)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._heap_insert(self.num_vars)
        return self.num_vars

    def ensure_vars(self, max_var: int) -> None:
        while self.num_vars < max_var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` if the database became trivially UNSAT."""
        if not self._ok:
            return False
        seen: Set[int] = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(abs(lit))
            enc = _encode(lit)
            if _negate(enc) in seen:
                return True  # tautology
            if enc in seen:
                continue
            seen.add(enc)
            clause.append(enc)

        # Adding clauses is only supported at decision level 0.
        self._backtrack(0)
        clause = [e for e in clause if self._value(e) != -1]
        if any(self._value(e) == 1 for e in clause):
            return True
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        record = _Clause(clause)
        self._clauses.append(record)
        self._attach(record)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """Solve under assumptions.

        Returns :data:`SAT`, :data:`UNSAT`, or :data:`UNKNOWN` when the
        optional ``conflict_limit`` was exhausted or the wall-clock
        ``deadline`` (a ``time.monotonic`` timestamp) passed.

        ``conflict_limit`` is a *per-call* budget: it counts conflicts
        from this call's entry, not over the solver's lifetime, so
        incremental sessions issuing many limited queries are not
        starved by earlier work.
        """
        if not self._ok:
            return UNSAT
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        self._model = {}
        self._failed_assumptions = []
        self._backtrack(0)
        assumption_encs = [_encode(lit) for lit in assumptions]

        restarts = 0
        budget = self._conflicts + conflict_limit if conflict_limit is not None else -1
        import time as _time

        while True:
            limit = _luby(restarts) * 100
            status = self._search(limit, assumption_encs, budget)
            if status is not None:
                self._backtrack(0)
                return status
            restarts += 1
            if budget >= 0 and self._conflicts >= budget:
                self._backtrack(0)
                return UNKNOWN
            if deadline is not None and _time.monotonic() > deadline:
                self._backtrack(0)
                return UNKNOWN

    def model(self) -> Dict[int, bool]:
        """Return the satisfying assignment from the last :data:`SAT` answer."""
        return dict(self._model)

    def model_value(self, var: int) -> Optional[bool]:
        return self._model.get(var)

    def failed_assumptions(self) -> List[int]:
        """Subset of assumptions responsible for the last :data:`UNSAT` answer."""
        return list(self._failed_assumptions)

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "conflicts": self._conflicts,
            "decisions": self._decisions,
            "propagations": self._propagations,
            "clauses": len(self._clauses),
            "learnts": len(self._learnts),
        }

    # ------------------------------------------------------------------
    # core search
    # ------------------------------------------------------------------
    def _search(
        self, conflict_budget: int, assumptions: List[int], global_budget: int
    ) -> Optional[str]:
        local_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                local_conflicts += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return UNSAT
                learnt, backtrack_level = self._analyze(conflict)
                if self._decision_level() <= len(assumptions):
                    # Conflict depends only on assumptions: compute the core.
                    self._analyze_final(conflict, assumptions)
                    self._ok = True
                    return UNSAT
                self._backtrack(max(backtrack_level, 0))
                self._record_learnt(learnt)
                self._decay_activities()
                if 0 <= global_budget <= self._conflicts:
                    return None
                if local_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return None
            else:
                # assumption handling
                next_decision = None
                while self._decision_level() < len(assumptions):
                    enc = assumptions[self._decision_level()]
                    value = self._value(enc)
                    if value == 1:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if value == -1:
                        self._failed_from_assumption(enc, assumptions)
                        return UNSAT
                    next_decision = enc
                    break
                if next_decision is None:
                    next_decision = self._pick_branch()
                    if next_decision is None:
                        self._model = {
                            v: self._assign[v] == 1 for v in range(1, self.num_vars + 1)
                        }
                        return SAT
                    self._decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(next_decision, None)

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            enc = self._trail[self._qhead]
            self._qhead += 1
            self._propagations += 1
            false_lit = _negate(enc)
            watchers = self._watches[false_lit]
            i = 0
            j = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Make sure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watchers[j] = clause
                j += 1
                if self._value(first) == -1:
                    # conflict: copy the remaining watchers and bail out
                    while i < len(watchers):
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[j:]
        return None

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        learnt: List[int] = [0]  # reserve slot for the asserting literal
        seen = self._seen
        counter = 0
        enc = -1
        index = len(self._trail) - 1
        reason: Optional[_Clause] = conflict
        current_level = self._decision_level()

        while True:
            assert reason is not None
            if reason.learnt:
                self._bump_clause(reason)
            start = 0 if enc == -1 else 1
            for k in range(start, len(reason.lits)):
                q = reason.lits[k]
                var = q >> 1
                if seen[var] == 0 and self._level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal to expand from the trail
            while seen[self._trail[index] >> 1] == 0:
                index -= 1
            enc = self._trail[index]
            index -= 1
            var = enc >> 1
            reason = self._reason[var]
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
        learnt[0] = _negate(enc)

        # Minimize: drop literals implied by the rest of the clause.
        cached = {lit >> 1 for lit in learnt}
        minimized = [learnt[0]]
        for lit in learnt[1:]:
            if not self._redundant(lit, cached):
                minimized.append(lit)
        # compute backtrack level and clean the seen markers
        for lit in learnt:
            self._seen[lit >> 1] = 0
        if len(minimized) == 1:
            level = 0
        else:
            max_index = 1
            for k in range(2, len(minimized)):
                if self._level[minimized[k] >> 1] > self._level[minimized[max_index] >> 1]:
                    max_index = k
            minimized[1], minimized[max_index] = minimized[max_index], minimized[1]
            level = self._level[minimized[1] >> 1]
        return minimized, level

    def _redundant(self, enc: int, cached: Set[int]) -> bool:
        reason = self._reason[enc >> 1]
        if reason is None:
            return False
        for other in reason.lits:
            var = other >> 1
            if var == enc >> 1:
                continue
            if self._level[var] == 0 or var in cached:
                continue
            return False
        return True

    def _analyze_final(self, conflict: _Clause, assumptions: List[int]) -> None:
        """Compute the subset of assumptions implying the conflict."""
        assumption_vars = {enc >> 1 for enc in assumptions}
        core: Set[int] = set()
        seen: Set[int] = set()
        stack = [lit >> 1 for lit in conflict.lits]
        while stack:
            var = stack.pop()
            if var in seen or self._level[var] == 0:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                if var in assumption_vars:
                    core.add(var)
            else:
                stack.extend(lit >> 1 for lit in reason.lits)
        self._failed_assumptions = [
            _decode(enc) for enc in assumptions if (enc >> 1) in core
        ]

    def _failed_from_assumption(self, enc: int, assumptions: List[int]) -> None:
        """An assumption is already false; derive the failing subset."""
        core_vars: Set[int] = set()
        stack = [enc >> 1]
        seen: Set[int] = set()
        assumption_vars = {a >> 1 for a in assumptions}
        while stack:
            var = stack.pop()
            if var in seen or self._level[var] == 0:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                if var in assumption_vars:
                    core_vars.add(var)
            else:
                stack.extend(lit >> 1 for lit in reason.lits)
        core_vars.add(enc >> 1)
        self._failed_assumptions = [
            _decode(a) for a in assumptions if (a >> 1) in core_vars
        ]

    def _record_learnt(self, lits: List[int]) -> None:
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return
        levels = {self._level[lit >> 1] for lit in lits}
        clause = _Clause(lits, learnt=True, lbd=len(levels))
        self._learnts.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(lits[0], clause)
        if len(self._learnts) > 4000 + 8 * len(self._clauses):
            self._reduce_db()

    def _reduce_db(self) -> None:
        self._learnts.sort(key=lambda c: (c.lbd, -c.activity))
        keep = len(self._learnts) // 2
        locked = {id(self._reason[lit >> 1]) for lit in self._trail if self._reason[lit >> 1]}
        survivors: List[_Clause] = []
        for index, clause in enumerate(self._learnts):
            if index < keep or clause.lbd <= 2 or id(clause) in locked:
                survivors.append(clause)
            else:
                self._detach(clause)
        self._learnts = survivors

    # ------------------------------------------------------------------
    # assignment bookkeeping
    # ------------------------------------------------------------------
    def _value(self, enc: int) -> int:
        """1 = true, -1 = false, 0 = unassigned (for an encoded literal)."""
        raw = self._assign[enc >> 1]
        if raw == 0:
            return 0
        return raw if (enc & 1) == 0 else -raw

    def _enqueue(self, enc: int, reason: Optional[_Clause]) -> bool:
        value = self._value(enc)
        if value == 1:
            return True
        if value == -1:
            return False
        var = enc >> 1
        self._assign[var] = 1 if (enc & 1) == 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._polarity[var] = (enc & 1) == 0
        self._trail.append(enc)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for enc in reversed(self._trail[boundary:]):
            var = enc >> 1
            self._assign[var] = 0
            self._reason[var] = None
            if self._heap_pos[var] < 0:
                self._heap_insert(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    def _detach(self, clause: _Clause) -> None:
        for enc in clause.lits[:2]:
            watchers = self._watches[enc]
            try:
                watchers.remove(clause)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # VSIDS order (binary heap over activities)
    # ------------------------------------------------------------------
    def _heap_insert(self, var: int) -> None:
        self._order.append(var)
        self._heap_pos[var] = len(self._order) - 1
        self._heap_up(len(self._order) - 1)

    def _heap_up(self, index: int) -> None:
        order = self._order
        activity = self._activity
        var = order[index]
        while index > 0:
            parent = (index - 1) >> 1
            if activity[order[parent]] >= activity[var]:
                break
            order[index] = order[parent]
            self._heap_pos[order[index]] = index
            index = parent
        order[index] = var
        self._heap_pos[var] = index

    def _heap_down(self, index: int) -> None:
        order = self._order
        activity = self._activity
        size = len(order)
        var = order[index]
        while True:
            left = 2 * index + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and activity[order[right]] > activity[order[left]]:
                best = right
            if activity[order[best]] <= activity[var]:
                break
            order[index] = order[best]
            self._heap_pos[order[index]] = index
            index = best
        order[index] = var
        self._heap_pos[var] = index

    def _heap_pop(self) -> Optional[int]:
        if not self._order:
            return None
        top = self._order[0]
        last = self._order.pop()
        self._heap_pos[top] = -1
        if self._order:
            self._order[0] = last
            self._heap_pos[last] = 0
            self._heap_down(0)
        return top

    def _pick_branch(self) -> Optional[int]:
        while True:
            var = self._heap_pop()
            if var is None:
                return None
            if self._assign[var] == 0:
                return (var << 1) | (0 if self._polarity[var] else 1)

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[var] >= 0:
            self._heap_up(self._heap_pos[var])

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (0-indexed)."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


def solve_cnf(
    clauses: Iterable[Iterable[int]], assumptions: Sequence[int] = ()
) -> Tuple[str, Dict[int, bool]]:
    """One-shot convenience wrapper: returns ``(status, model)``."""
    solver = CdclSolver()
    solver.add_clauses(clauses)
    status = solver.solve(assumptions)
    return status, solver.model() if status == SAT else {}
