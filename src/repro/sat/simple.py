"""A deliberately tiny DPLL solver used as a test oracle.

No heuristics beyond unit propagation and pure-literal elimination;
correctness over speed.  The CDCL solver in :mod:`repro.sat.solver` is
property-tested against this implementation on random formulas.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..formula.lits import var_of


def dpll_solve(clauses: Iterable[Iterable[int]]) -> Optional[Dict[int, bool]]:
    """Return a model as ``{var: bool}`` or ``None`` if unsatisfiable."""
    frozen = [tuple(clause) for clause in clauses]
    model = _dpll([set(c) for c in frozen], {})
    if model is None:
        return None
    # Fill unconstrained variables with False for a total model.
    for clause in frozen:
        for lit in clause:
            model.setdefault(var_of(lit), False)
    return model


def _dpll(clauses: List[set], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
    clauses = [set(c) for c in clauses]
    assignment = dict(assignment)

    changed = True
    while changed:
        changed = False
        # unit propagation
        for clause in clauses:
            if len(clause) == 1:
                lit = next(iter(clause))
                conflict = _assign(clauses, assignment, lit)
                if conflict:
                    return None
                changed = True
                break
        if changed:
            continue
        # pure literal elimination
        literals = {lit for clause in clauses for lit in clause}
        for lit in literals:
            if -lit not in literals:
                _assign(clauses, assignment, lit)
                changed = True
                break

    if not clauses:
        return assignment
    if any(not clause for clause in clauses):
        return None

    lit = next(iter(min(clauses, key=len)))
    for choice in (lit, -lit):
        branch = [set(c) for c in clauses]
        branch_assignment = dict(assignment)
        if not _assign(branch, branch_assignment, choice):
            result = _dpll(branch, branch_assignment)
            if result is not None:
                return result
    return None


def _assign(clauses: List[set], assignment: Dict[int, bool], lit: int) -> bool:
    """Apply ``lit``; simplify in place.  Returns ``True`` on conflict."""
    assignment[var_of(lit)] = lit > 0
    remaining = []
    conflict = False
    for clause in clauses:
        if lit in clause:
            continue
        if -lit in clause:
            clause = clause - {-lit}
            if not clause:
                conflict = True
        remaining.append(clause)
    clauses[:] = remaining
    return conflict


def count_models(clauses: Iterable[Iterable[int]], variables: List[int]) -> int:
    """Exhaustively count models over ``variables`` (oracle for tests)."""
    import itertools

    frozen = [tuple(c) for c in clauses]
    count = 0
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        ok = True
        for clause in frozen:
            if not any(
                (lit > 0) == assignment.get(var_of(lit), False) for lit in clause
            ):
                ok = False
                break
        if ok:
            count += 1
    return count
