"""Process-supervision primitives shared by the parallel runners.

Extracted from :mod:`repro.experiments.parallel` so the benchmark
harness (one-shot worker per (instance, solver) pair) and the solver
service (:mod:`repro.service.pool`, long-lived warm workers) share one
notion of how workers are forked, how much slack a cooperative budget
gets before a hard kill, and how a possibly-wedged process is reaped.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional


def mp_context():
    """Prefer ``fork`` so runtime-registered solvers reach the workers.

    Under ``spawn`` (macOS/Windows default) workers rebuild module state
    from imports, so dynamically registered solvers and monkeypatched
    options are lost; every platform that offers ``fork`` gets it.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def default_grace(time_limit: Optional[float]) -> float:
    """Slack granted past the cooperative budget before a hard kill.

    A solver that honours its :class:`~repro.core.guard.ResourceGuard`
    returns shortly after the budget expires; the grace covers result
    serialization and scheduling noise.  Unlimited budgets still get a
    small fixed grace for supervisor-initiated cancellation.
    """
    if time_limit is None:
        return 5.0
    return max(1.0, 0.25 * time_limit)


def reap(process, conn=None, timeout: float = 5.0) -> None:
    """Join ``process``, escalating to ``kill`` if it ignores terminate.

    Closes ``conn`` (the supervisor's pipe end) afterwards so a wedged
    worker cannot keep the pipe buffer — and therefore the supervisor —
    alive.
    """
    process.join(timeout=timeout)
    if process.is_alive():  # pragma: no cover - stuck in the kernel
        process.kill()
        process.join()
    if conn is not None:
        conn.close()
