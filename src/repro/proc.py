"""Process-supervision primitives shared by the parallel runners.

Extracted from :mod:`repro.experiments.parallel` so the benchmark
harness (one-shot worker per (instance, solver) pair) and the solver
service (:mod:`repro.service.pool`, long-lived warm workers) share one
notion of how workers are forked, how much slack a cooperative budget
gets before a hard kill, and how a possibly-wedged process is reaped.
"""

from __future__ import annotations

import multiprocessing
import os
import stat
from typing import Iterable, Optional


def mp_context():
    """Prefer ``fork`` so runtime-registered solvers reach the workers.

    Under ``spawn`` (macOS/Windows default) workers rebuild module state
    from imports, so dynamically registered solvers and monkeypatched
    options are lost; every platform that offers ``fork`` gets it.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def close_foreign_sockets(keep: Iterable[int] = ()) -> int:
    """Close socket fds a forked worker inherited but does not own.

    A worker forked while the server is serving inherits duplicates of
    every live fd — the TCP listener and every open client connection
    included.  Those duplicates are not just clutter: as long as the
    worker holds one, the kernel never sends FIN when the server closes
    (or aborts) that connection, so a client blocked on a reply waits
    out its full socket timeout instead of seeing EOF immediately.

    Call this first thing in a worker entry, keeping only the fds the
    worker actually uses (its command pipe).  Only *sockets* are
    closed: pipes (``multiprocessing`` plumbing, the resource tracker)
    and regular files are left alone, and so are fds 0-2.  Without
    ``/proc/self/fd`` (non-Linux) this is a no-op — leaking the dups is
    safe, merely slower for the unlucky client.

    Returns the number of fds closed.
    """
    keep_fds = set(keep)
    try:
        inherited = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - no procfs on this platform
        return 0
    closed = 0
    for fd in inherited:
        if fd < 3 or fd in keep_fds:
            continue
        try:
            if not stat.S_ISSOCK(os.fstat(fd).st_mode):
                continue
            os.close(fd)
        except OSError:  # the listdir fd itself, or a racing close
            continue
        closed += 1
    return closed


def default_grace(time_limit: Optional[float]) -> float:
    """Slack granted past the cooperative budget before a hard kill.

    A solver that honours its :class:`~repro.core.guard.ResourceGuard`
    returns shortly after the budget expires; the grace covers result
    serialization and scheduling noise.  Unlimited budgets still get a
    small fixed grace for supervisor-initiated cancellation.
    """
    if time_limit is None:
        return 5.0
    return max(1.0, 0.25 * time_limit)


def reap(process, conn=None, timeout: float = 5.0) -> None:
    """Join ``process``, escalating to ``kill`` if it ignores terminate.

    Closes ``conn`` (the supervisor's pipe end) afterwards so a wedged
    worker cannot keep the pipe buffer — and therefore the supervisor —
    alive.

    Tolerates racing reapers: when a supervisor heartbeat thread and a
    hard-kill request path go after the same pid, the loser sees a
    child that is already waited on (``ECHILD`` from ``waitpid``, a
    ``ProcessLookupError`` from the kill, or a ``ValueError`` from a
    process object another path already closed).  All of those mean
    "the process is gone", which is exactly what reaping wanted — so
    they are absorbed rather than raised into the request path.
    """
    try:
        process.join(timeout=timeout)
    except (OSError, ValueError, AssertionError):
        # already reaped elsewhere (ECHILD), object closed, or joined
        # from a state multiprocessing did not expect: nothing to wait on
        pass
    try:
        if process.is_alive():  # pragma: no cover - stuck in the kernel
            process.kill()
            process.join()
    except (OSError, ValueError, ProcessLookupError, AssertionError):
        pass  # pragma: no cover - lost the race with another reaper
    if conn is not None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe torn down concurrently
            pass
