"""Regenerate Fig. 4 of the paper: per-instance runtime scatter HQS vs IDQ.

The figure plots, for every benchmark instance, IDQ's runtime against
HQS's runtime on log-log axes; timeouts/memouts sit on the "TO"/"MO"
border lines.  We emit the underlying series as a list of points (and
optionally a CSV) — the claims to check are *positional*: almost all
points below the diagonal, HQS's solved set a superset of IDQ's, and
maximum speedups of several orders of magnitude.

Run as a module::

    python -m repro.experiments.fig4 [output.csv] [--jobs N] [--log results.jsonl --resume]

With ``--jobs``/``--log`` the sweep goes through the fault-tolerant
parallel runner (hard timeouts, crash containment, JSONL resume); the
scatter itself is built from whatever records come back, so a crashed
solver costs one point, not the figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .runner import BenchConfig, RunRecord, run_suite


class ScatterPoint:
    """One instance's coordinates in the Fig. 4 scatter."""

    def __init__(
        self,
        name: str,
        family: str,
        hqs_time: float,
        idq_time: float,
        hqs_status: str,
        idq_status: str,
    ):
        self.name = name
        self.family = family
        self.hqs_time = hqs_time
        self.idq_time = idq_time
        self.hqs_status = hqs_status
        self.idq_status = idq_status

    @property
    def hqs_solved(self) -> bool:
        return self.hqs_status in ("SAT", "UNSAT")

    @property
    def idq_solved(self) -> bool:
        return self.idq_status in ("SAT", "UNSAT")

    @property
    def speedup(self) -> Optional[float]:
        """IDQ time / HQS time where both solved."""
        if not (self.hqs_solved and self.idq_solved) or self.hqs_time <= 0:
            return None
        return self.idq_time / max(self.hqs_time, 1e-6)

    def as_csv_row(self) -> str:
        return (
            f"{self.name},{self.family},{self.hqs_time:.6f},{self.idq_time:.6f},"
            f"{self.hqs_status},{self.idq_status}"
        )


def build_scatter(records: Sequence[RunRecord]) -> List[ScatterPoint]:
    """Pair up HQS/IDQ records per instance."""
    by_instance: Dict[str, Dict[str, RunRecord]] = {}
    for record in records:
        by_instance.setdefault(record.instance.name, {})[record.solver] = record
    points = []
    for name, runs in sorted(by_instance.items()):
        if "HQS" not in runs or "IDQ" not in runs:
            continue
        hqs, idq = runs["HQS"], runs["IDQ"]
        points.append(
            ScatterPoint(
                name,
                hqs.instance.family,
                hqs.result.runtime,
                idq.result.runtime,
                hqs.result.status,
                idq.result.status,
            )
        )
    return points


def scatter_summary(
    points: Sequence[ScatterPoint], epsilon: float = 0.05
) -> Dict[str, object]:
    """The qualitative claims of Fig. 4 as checkable numbers.

    ``epsilon`` is a timer floor: the paper's log-log axes start at
    0.1 s, so runtime differences below ``epsilon`` seconds are treated
    as on-diagonal rather than letting scheduler noise decide the side.
    """
    both = [p for p in points if p.hqs_solved and p.idq_solved]
    below_diagonal = sum(1 for p in both if p.hqs_time <= p.idq_time + epsilon)
    speedups = [p.speedup for p in both if p.speedup is not None]
    hqs_only = [p for p in points if p.hqs_solved and not p.idq_solved]
    idq_only = [p for p in points if p.idq_solved and not p.hqs_solved]
    return {
        "points": len(points),
        "both_solved": len(both),
        "below_diagonal": below_diagonal,
        "below_diagonal_fraction": below_diagonal / len(both) if both else None,
        "max_speedup": max(speedups) if speedups else None,
        "median_speedup": sorted(speedups)[len(speedups) // 2] if speedups else None,
        "hqs_only_solved": len(hqs_only),
        "idq_only_solved": len(idq_only),
    }


def ascii_scatter(
    points: Sequence[ScatterPoint],
    width: int = 56,
    height: int = 24,
    floor: float = 1e-3,
) -> str:
    """Render the Fig. 4 scatter as ASCII art (log-log axes).

    ``*`` marks instances solved by both solvers, ``>`` instances only
    HQS solved (right/top border, like the paper's TO/MO lines), ``<``
    instances only IDQ solved.  The diagonal is drawn with ``.``.
    """
    import math

    if not points:
        return "(no points)"
    times = [max(p.hqs_time, floor) for p in points] + [
        max(p.idq_time, floor) for p in points
    ]
    lo = math.log10(min(times))
    hi = math.log10(max(times)) + 0.2
    span = max(hi - lo, 1e-9)

    def col(t: float) -> int:
        return min(width - 1, int((math.log10(max(t, floor)) - lo) / span * (width - 1)))

    def row(t: float) -> int:
        return min(height - 1, int((math.log10(max(t, floor)) - lo) / span * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for i in range(min(width, height)):
        grid[height - 1 - int(i * (height - 1) / (width - 1))][i] = "."
    for p in points:
        if p.hqs_solved and p.idq_solved:
            mark = "*"
            x, y = col(p.hqs_time), row(p.idq_time)
        elif p.hqs_solved:
            mark = ">"
            x, y = col(p.hqs_time), height - 1  # IDQ on the TO border
        elif p.idq_solved:
            mark = "<"
            x, y = width - 1, row(p.idq_time)
        else:
            continue
        grid[height - 1 - y][x] = mark
    lines = ["IDQ time ^  (* both, > HQS-only, < IDQ-only, . diagonal)"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width + "> HQS time")
    return "\n".join(lines)


def to_csv(points: Sequence[ScatterPoint]) -> str:
    header = "instance,family,hqs_time,idq_time,hqs_status,idq_status"
    return "\n".join([header] + [p.as_csv_row() for p in points]) + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig4",
        description="Regenerate the Fig. 4 runtime scatter (HQS vs IDQ)",
    )
    parser.add_argument("csv", nargs="?", default=None, help="optional CSV output path")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_BENCH_JOBS or 1)",
    )
    parser.add_argument("--log", default=None, help="JSONL result log to append to")
    parser.add_argument(
        "--resume", action="store_true",
        help="skip (instance, solver) pairs already recorded in --log",
    )
    return parser


def main(argv: Sequence[str] = ()) -> List[ScatterPoint]:
    args = build_parser().parse_args(list(argv))
    config = BenchConfig(jobs=args.jobs)
    print(f"Fig. 4 reproduction with {config!r}")
    records = run_suite(config, log_path=args.log, resume=args.resume)
    points = build_scatter(records)
    summary = scatter_summary(points)
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print()
    print(ascii_scatter(points))
    if args.csv:
        with open(args.csv, "w", encoding="ascii") as handle:
            handle.write(to_csv(points))
        print(f"scatter series written to {args.csv}")
    return points


if __name__ == "__main__":
    main(sys.argv[1:])
