"""Fault-tolerant parallel execution for the benchmark harness.

The paper's evaluation (Section IV) races HQS against the baselines over
hundreds of PEC instances under a 2 h timeout and 8 GB memout.  The
serial :func:`repro.experiments.runner.run_suite` replays that in-process
with only *cooperative* ``Limits.check_time()`` checks, so one stuck or
crashing solver stalls or aborts the whole sweep.  This module supplies
the production execution layer:

hard timeouts
    every (instance, solver) pair runs in its own worker process; a
    solver that never reaches a cooperative check is killed at a hard
    wall-clock deadline and recorded as ``TIMEOUT`` with
    ``stats["hard_timeout"] = 1``.

crash containment
    a worker exception becomes an ``ERROR`` record (traceback preserved
    in the JSONL log), a wrong definitive answer a ``MISMATCH`` record;
    the remaining pairs keep running either way.

persistence + resume
    records stream to a JSONL log as they complete; restarting with
    ``resume=True`` skips already-recorded (instance, solver) pairs and
    tolerates a truncated final line from an interrupted run.

portfolio racing
    several solver configurations race on one instance; the first
    definitive (SAT/UNSAT) answer wins and the losers are cancelled.

Workers are forked when the platform allows it so that test- or
user-registered entries in :data:`repro.experiments.runner.SOLVERS` are
inherited; under ``spawn`` the registry is rebuilt from the module, so
dynamically registered solvers must be importable.

Instances are shipped to workers by pickling.  Regenerating a suite
shard instead (for distributed workers) requires only the
``(family, count, scale, seed)`` tuple — which is why ``BenchConfig``
reads ``REPRO_BENCH_SEED`` and :func:`repro.pec.families.generate_family`
uses a process-stable family hash.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import durable, faults
from ..core.result import ERROR, MEMOUT, MISMATCH, TIMEOUT, UNKNOWN, Limits, SolveResult
from ..pec.encode import PecInstance
from ..pec.families import FAMILIES
from ..proc import close_foreign_sockets, default_grace, mp_context, reap
from .runner import (
    SOLVERS,
    BenchConfig,
    RunRecord,
    _check_expected,
    generate_suite,
    supports_checkpoint,
)

#: Seconds between supervisor polls of the live worker set.
POLL_INTERVAL = 0.02


# ``mp_context``/``default_grace``/``reap`` live in :mod:`repro.proc`
# (shared with the service worker pool); ``_mp_context`` is kept as an
# alias for external callers of the historical name.
_mp_context = mp_context


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _worker_entry(conn, instance: PecInstance, solver_name: str,
                  time_limit: Optional[float], node_limit: Optional[int],
                  checkpoint: Optional[str] = None) -> None:
    """Solve one (instance, solver) pair and ship the outcome back.

    ``checkpoint`` (for solvers that support it) makes the attempt
    resumable: the solver picks up a matching snapshot left by a
    previous killed/crashed worker and rewrites it as it progresses.
    """
    started = time.monotonic()
    # A worker forked from a host with live sockets (a service, a
    # notebook) must not hold their fds open past the host's close.
    close_foreign_sockets(keep=(conn.fileno(),))
    # Chaos hook: a scheduled crash/wedge/slow fault for this worker
    # (plan inherited via fork, or re-read from REPRO_FAULTS under
    # spawn).  The supervisor must turn it into ERROR/TIMEOUT records.
    faults.apply_worker_fault(faults.fire("parallel.worker"))
    try:
        solver = SOLVERS[solver_name]
        limits = Limits(time_limit=time_limit, node_limit=node_limit)
        kwargs = {}
        if checkpoint is not None and supports_checkpoint(solver):
            kwargs["checkpoint"] = checkpoint
        result = solver(instance.formula.copy(), limits, **kwargs)
        result = _check_expected(instance, solver_name, result)
        payload = result.as_dict()
    except BaseException:
        payload = {
            "status": ERROR,
            "runtime": time.monotonic() - started,
            "stats": {"worker_error": 1.0},
            "error": traceback.format_exc(),
        }
    try:
        conn.send(payload)
        conn.close()
    except (BrokenPipeError, OSError):  # supervisor already gave up on us
        pass


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------

class _Job:
    """One live worker process and its bookkeeping."""

    def __init__(self, ctx, instance: PecInstance, solver: str,
                 time_limit: Optional[float], node_limit: Optional[int],
                 grace: float, checkpoint: Optional[str] = None):
        self.instance = instance
        self.solver = solver
        recv, send = ctx.Pipe(duplex=False)
        self.conn = recv
        self.process = ctx.Process(
            target=_worker_entry,
            args=(send, instance, solver, time_limit, node_limit, checkpoint),
            daemon=True,
        )
        self.process.start()
        send.close()
        self.started = time.monotonic()
        self.deadline = (
            None if time_limit is None else self.started + time_limit + grace
        )

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def poll(self) -> Optional[Dict[str, object]]:
        """Return the result payload once the job is finished, else ``None``.

        Finishing means: the worker sent a payload, the worker died
        without sending one (``ERROR``), or the hard deadline passed
        (kill + ``TIMEOUT``).
        """
        if self.conn.poll(0):
            try:
                payload = self.conn.recv()
            except (EOFError, OSError):
                payload = None
            if payload is not None:
                self._reap()
                return payload
            return self._dead_payload()
        if not self.process.is_alive():
            # died without sending anything (segfault, os._exit, kill)
            return self._dead_payload()
        if self.deadline is not None and time.monotonic() > self.deadline:
            return self._kill_payload()
        return None

    def cancel(self) -> None:
        """Terminate a loser leg (portfolio) or an abandoned job."""
        if self.process.is_alive():
            self.process.terminate()
        self._reap()

    def _reap(self) -> None:
        reap(self.process, self.conn)

    def _dead_payload(self) -> Dict[str, object]:
        exitcode = self.process.exitcode
        self._reap()
        return {
            "status": ERROR,
            "runtime": self.elapsed(),
            "stats": {"worker_error": 1.0,
                      "exitcode": float(exitcode if exitcode is not None else -1)},
            "error": f"worker exited with code {exitcode} before reporting a result",
        }

    def _kill_payload(self) -> Dict[str, object]:
        elapsed = self.elapsed()
        self.process.terminate()
        self._reap()
        return {
            "status": TIMEOUT,
            "runtime": elapsed,
            "stats": {"hard_timeout": 1.0},
        }


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------

class ResultLog:
    """Append-only JSONL store of run records, keyed by (instance, solver).

    Designed for crash-resume: records are flushed line-by-line as they
    complete, each line carries a trailing CRC-32 (see
    :mod:`repro.durable`) so a torn append is *detected* rather than
    loaded as a shorter-but-valid record, and re-running with
    ``resume=True`` skips pairs that already have a verified record.
    Legacy lines without a checksum still load.  :meth:`load` counts
    what it had to discard in :attr:`corrupt_lines` — zero on a healthy
    log — so lost records are observable instead of silently re-run.

    Torn tails are *isolated*: a record is only appended after the
    writer makes sure the file currently ends in a newline (checking
    the tail byte when it opens an existing file, tracking its own
    writes afterwards).  A torn append therefore corrupts exactly one
    record — its own — instead of gluing itself to the next good one.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self._tail_dirty = False
        #: Lines discarded by the last :meth:`load` (checksum mismatch,
        #: torn tail, unparsable JSON, missing key fields).
        self.corrupt_lines = 0

    def load(self) -> Dict[Tuple[str, str], Dict[str, object]]:
        done: Dict[Tuple[str, str], Dict[str, object]] = {}
        self.corrupt_lines = 0
        if not os.path.exists(self.path):
            return done
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload, verdict = durable.unframe_line(line)
                if verdict == "corrupt":
                    self.corrupt_lines += 1
                    continue  # detected torn/corrupt record: re-run the pair
                try:
                    entry = json.loads(payload)
                    key = (str(entry["instance"]), str(entry["solver"]))
                    entry["status"]  # noqa: B018 - validate required field
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue  # truncated/corrupt legacy line: re-run that pair
                done[key] = entry
        return done

    def append(self, entry: Dict[str, object]) -> None:
        """Durably append one checksummed record: write, flush *and* fsync.

        ``--resume`` treats the log as the ground truth of which pairs
        already ran; a record that was reported but lost to the page
        cache in a hard kill would be silently re-run (and a reader of
        the live log could act on a result that then vanishes).  The
        fsync makes append-then-crash leave exactly the acknowledged
        records behind, never a replayed or half-written one — and the
        per-line CRC makes the half-written case detectable when the
        crash wins anyway.  The write is a :mod:`repro.faults` site
        (``log.append``): a ``torn`` fault flushes only a prefix of the
        line, an ``ioerror`` fault raises :class:`OSError`.
        """
        if self._handle is None:
            self._open()
        line = durable.frame_line(json.dumps(entry, sort_keys=True))
        fault = faults.fire("log.append")
        if fault is not None and fault.kind == "ioerror":
            raise OSError(f"injected ioerror at log.append ({fault.spec()})")
        if fault is not None and fault.kind == "torn":
            line = line[: max(1, int(len(line) * fault.args.get("keep", 0.5)))]
        if self._tail_dirty:
            # Fence off the torn tail so this record starts its own line.
            self._handle.write("\n")
        self._handle.write(line)
        self._tail_dirty = not line.endswith("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _open(self) -> None:
        """Open for append, noting whether the existing tail is torn."""
        self._tail_dirty = False
        try:
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                self._tail_dirty = probe.read(1) != b"\n"
        except (OSError, ValueError):  # missing or empty file
            pass
        # This *is* the durable framing layer: every line written through
        # this handle is CRC-framed and fsynced by append().
        self._handle = open(self.path, "a", encoding="utf-8")  # hqs-lint: disable=RPR004

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def record_to_entry(record: RunRecord) -> Dict[str, object]:
    """Flatten a :class:`RunRecord` into its JSONL form."""
    entry: Dict[str, object] = {
        "instance": record.instance.name,
        "family": record.instance.family,
        "solver": record.solver,
    }
    entry.update(record.result.as_dict())
    error = getattr(record, "error", None)
    if error:
        entry["error"] = error
    return entry


def _record_from_payload(instance: PecInstance, solver: str,
                         payload: Dict[str, object]) -> RunRecord:
    record = RunRecord(instance, solver, SolveResult.from_dict(payload))
    if payload.get("error"):
        record.error = str(payload["error"])
    return record


# ----------------------------------------------------------------------
# pool scheduler
# ----------------------------------------------------------------------

def run_records(
    instances: Sequence[PecInstance],
    solvers: Sequence[str],
    config: BenchConfig,
    jobs: int = 1,
    log: Optional[ResultLog] = None,
    done: Optional[Dict[Tuple[str, str], Dict[str, object]]] = None,
    grace: Optional[float] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Run every (instance, solver) pair through the worker pool.

    Results come back in deterministic (instance, solver) order
    regardless of completion order.  ``done`` maps already-recorded
    pairs (from :meth:`ResultLog.load`) to their entries; those pairs
    are not re-run.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    grace = default_grace(config.timeout) if grace is None else grace
    done = done or {}
    ctx = _mp_context()

    order: List[Tuple[str, str]] = []
    by_name: Dict[str, PecInstance] = {}
    queue: List[Tuple[PecInstance, str]] = []
    results: Dict[Tuple[str, str], RunRecord] = {}
    for instance in instances:
        by_name[instance.name] = instance
        for solver in solvers:
            key = (instance.name, solver)
            order.append(key)
            if key in done:
                results[key] = _record_from_payload(instance, solver, done[key])
            else:
                queue.append((instance, solver))

    pending = list(reversed(queue))  # pop() from the front of the suite
    live: List[_Job] = []
    try:
        while pending or live:
            while pending and len(live) < jobs:
                instance, solver = pending.pop()
                live.append(_Job(ctx, instance, solver,
                                 config.timeout, config.node_limit, grace,
                                 checkpoint=config.checkpoint_path(
                                     instance.name, solver)))
            finished_any = False
            for job in list(live):
                payload = job.poll()
                if payload is None:
                    continue
                finished_any = True
                live.remove(job)
                record = _record_from_payload(job.instance, job.solver, payload)
                results[(job.instance.name, job.solver)] = record
                if log is not None:
                    log.append(record_to_entry(record))
                if on_record is not None:
                    on_record(record)
            if not finished_any and live:
                time.sleep(POLL_INTERVAL)
    finally:
        for job in live:  # interrupted: don't leak workers
            job.cancel()
    return [results[key] for key in order]


# ----------------------------------------------------------------------
# portfolio racing
# ----------------------------------------------------------------------

def portfolio_label(solvers: Sequence[str]) -> str:
    return "PORTFOLIO[" + "+".join(solvers) + "]"


#: Preference order for the recorded status when no leg wins a race.
_LOSS_ORDER = (MISMATCH, MEMOUT, TIMEOUT, UNKNOWN, ERROR)


def run_portfolio(
    instance: PecInstance,
    solvers: Sequence[str],
    config: BenchConfig,
    grace: Optional[float] = None,
) -> RunRecord:
    """Race ``solvers`` on one instance; first definitive answer wins.

    All legs start together, each on a child budget carved out of one
    shared :class:`Limits` clock, so the race as a whole respects the
    per-instance budget.  On the first SAT/UNSAT the remaining legs are
    cancelled.  If no leg answers, the recorded status is the most
    informative loss (``MISMATCH`` > ``MEMOUT`` > ``TIMEOUT`` >
    ``UNKNOWN`` > ``ERROR``).
    """
    if not solvers:
        raise ValueError("portfolio needs at least one solver")
    budget = config.limits()
    grace = default_grace(config.timeout) if grace is None else grace
    ctx = _mp_context()
    label = portfolio_label(solvers)

    legs: List[_Job] = []
    for solver in solvers:
        child = budget.child()
        legs.append(_Job(ctx, instance, solver,
                         child.time_limit, child.node_limit, grace))
    losses: List[Tuple[str, Dict[str, object]]] = []
    winner: Optional[Tuple[str, Dict[str, object]]] = None
    try:
        while legs and winner is None:
            progressed = False
            for leg in list(legs):
                payload = leg.poll()
                if payload is None:
                    continue
                progressed = True
                legs.remove(leg)
                if str(payload["status"]) in ("SAT", "UNSAT"):
                    winner = (leg.solver, payload)
                    break
                losses.append((leg.solver, payload))
            if not progressed and legs:
                time.sleep(POLL_INTERVAL)
    finally:
        for leg in legs:
            leg.cancel()

    if winner is not None:
        solver, payload = winner
        stats = dict(payload.get("stats") or {})
        stats["portfolio_legs"] = float(len(solvers))
        stats["portfolio_winner"] = float(list(solvers).index(solver))
        stats["portfolio_cancelled"] = float(len(solvers) - 1 - len(losses))
        result = SolveResult(str(payload["status"]),
                             float(payload.get("runtime", 0.0)), stats)
        record = RunRecord(instance, label, result)
        record.winner = solver
        return record

    losses.sort(key=lambda item: _LOSS_ORDER.index(str(item[1]["status"]))
                if str(item[1]["status"]) in _LOSS_ORDER else len(_LOSS_ORDER))
    solver, payload = losses[0]
    stats = dict(payload.get("stats") or {})
    stats["portfolio_legs"] = float(len(solvers))
    result = SolveResult(str(payload["status"]),
                         float(payload.get("runtime", 0.0)), stats)
    record = RunRecord(instance, label, result)
    if payload.get("error"):
        record.error = str(payload["error"])
    return record


# ----------------------------------------------------------------------
# suite front end
# ----------------------------------------------------------------------

def run_suite_parallel(
    config: BenchConfig,
    solvers: Sequence[str] = ("HQS", "IDQ"),
    families: Sequence[str] = FAMILIES,
    jobs: int = 1,
    log_path: Optional[str] = None,
    resume: bool = False,
    portfolio: bool = False,
    grace: Optional[float] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Parallel, fault-tolerant equivalent of :func:`runner.run_suite`.

    Produces the same set of (instance, solver, status) records as the
    serial path on a healthy suite; hanging or crashing solvers cost
    only their own record.  With ``portfolio=True`` each instance gets a
    single record from racing all ``solvers`` (see
    :func:`run_portfolio`); otherwise every (instance, solver) pair is
    measured.  ``resume=True`` skips pairs already present in
    ``log_path``.
    """
    suite = generate_suite(config, families)
    instances = [inst for family in families for inst in suite[family]]

    log = ResultLog(log_path) if log_path is not None else None
    done = log.load() if (log is not None and resume) else {}
    try:
        if not portfolio:
            return run_records(instances, solvers, config, jobs=jobs,
                               log=log, done=done, grace=grace,
                               on_record=on_record)
        label = portfolio_label(solvers)
        records: List[RunRecord] = []
        for instance in instances:
            key = (instance.name, label)
            if key in done:
                record = _record_from_payload(instance, label, done[key])
            else:
                record = run_portfolio(instance, solvers, config, grace=grace)
                if log is not None:
                    log.append(record_to_entry(record))
            if on_record is not None:
                on_record(record)
            records.append(record)
        return records
    finally:
        if log is not None:
            log.close()


if __name__ == "__main__":  # pragma: no cover - thin alias for hqs-bench
    import sys

    from ..cli import bench_main

    sys.exit(bench_main(sys.argv[1:]))
