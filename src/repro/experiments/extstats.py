"""Reproduce the in-text experimental claims of Section IV.

Besides Table I and Fig. 4 the paper reports three numbers in prose:

* **S1**: HQS solves ~90% of its solved instances in under one second
  (IDQ: ~49%);
* **S2**: the MaxSAT problem for choosing elimination variables takes
  under 0.06 s on every instance;
* **S3**: the syntactic unit/pure checks take less than 4% of each
  instance's runtime.

Run as a module::

    python -m repro.experiments.extstats
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .runner import BenchConfig, RunRecord, run_suite


def fraction_solved_fast(
    records: Sequence[RunRecord], solver: str, threshold: float = 1.0
) -> Optional[float]:
    """Fraction of ``solver``'s solved instances finished within ``threshold``."""
    solved = [r for r in records if r.solver == solver and r.solved]
    if not solved:
        return None
    fast = sum(1 for r in solved if r.result.runtime < threshold)
    return fast / len(solved)


def maxsat_times(records: Sequence[RunRecord]) -> List[float]:
    """Per-instance MaxSAT selection times recorded by HQS."""
    return [
        r.result.stats["maxsat_time"]
        for r in records
        if r.solver == "HQS" and "maxsat_time" in r.result.stats
    ]


# Per-stage wall-clock timers accumulated by HqsSolver.solve(); see
# repro.core.hqs (the keys are initialized to 0.0 at the start of every
# solve, so their presence distinguishes "stage never entered" from
# "stats produced by an older checkpoint").
STAGE_TIMERS = ("time_fraig", "time_maxsat", "time_eliminate", "time_qbf")


def stage_time_totals(records: Sequence[RunRecord]) -> Dict[str, float]:
    """Suite-wide wall-clock per HQS pipeline stage.

    Sums the ``time_*`` stage timers over every HQS run (solved or not —
    an aborted run still spent the time).
    """
    totals: Dict[str, float] = {key: 0.0 for key in STAGE_TIMERS}
    for r in records:
        if r.solver != "HQS":
            continue
        for key in STAGE_TIMERS:
            totals[key] += r.result.stats.get(key, 0.0)
    return totals


def unit_pure_fractions(records: Sequence[RunRecord]) -> List[float]:
    """Per-instance share of runtime spent in unit/pure detection."""
    fractions = []
    for r in records:
        if r.solver != "HQS" or not r.solved or r.result.runtime <= 0:
            continue
        spent = r.result.stats.get("unit_pure_time", 0.0)
        fractions.append(spent / r.result.runtime)
    return fractions


def extended_stats(records: Sequence[RunRecord]) -> Dict[str, object]:
    maxsat = maxsat_times(records)
    unit_pure = unit_pure_fractions(records)
    return {
        "hqs_under_1s_fraction": fraction_solved_fast(records, "HQS"),
        "idq_under_1s_fraction": fraction_solved_fast(records, "IDQ"),
        "max_maxsat_time": max(maxsat) if maxsat else 0.0,
        "mean_maxsat_time": sum(maxsat) / len(maxsat) if maxsat else 0.0,
        "max_unit_pure_fraction": max(unit_pure) if unit_pure else 0.0,
        "mean_unit_pure_fraction": (
            sum(unit_pure) / len(unit_pure) if unit_pure else 0.0
        ),
        "stage_time_totals": stage_time_totals(records),
    }


def main() -> Dict[str, object]:
    config = BenchConfig()
    print(f"In-text statistics reproduction with {config!r}")
    records = run_suite(config)
    stats = extended_stats(records)
    for key, value in stats.items():
        print(f"  {key}: {value}")
    return stats


if __name__ == "__main__":
    main()
