"""Regenerate Table I of the paper.

For every benchmark family and both solvers the table reports: the
number of instances, solved instances split into SAT/UNSAT, unsolved
split into timeouts/memouts, and the accumulated runtime on the
instances *solved by both solvers* (the "total time" columns of the
paper).

Run as a module for a quick report::

    python -m repro.experiments.table1
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.result import MEMOUT, SAT, TIMEOUT, UNSAT
from ..pec.families import FAMILIES
from .runner import BenchConfig, RunRecord, run_suite


class FamilyRow:
    """One row of Table I for one solver."""

    def __init__(self, family: str, solver: str):
        self.family = family
        self.solver = solver
        self.instances = 0
        self.solved = 0
        self.sat = 0
        self.unsat = 0
        self.timeouts = 0
        self.memouts = 0
        self.total_time_common = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "solver": self.solver,
            "instances": self.instances,
            "solved": self.solved,
            "sat": self.sat,
            "unsat": self.unsat,
            "timeouts": self.timeouts,
            "memouts": self.memouts,
            "total_time_common": round(self.total_time_common, 3),
        }


def build_table(
    records: Sequence[RunRecord], solvers: Sequence[str] = ("HQS", "IDQ")
) -> List[FamilyRow]:
    """Aggregate run records into Table I rows (plus a 'total' row each)."""
    by_key: Dict[Tuple[str, str], FamilyRow] = {}
    families = sorted({r.instance.family for r in records}, key=_family_order)
    for family in families + ["total"]:
        for solver in solvers:
            by_key[(family, solver)] = FamilyRow(family, solver)

    # which instances were solved by all solvers (for the common-time column)
    solved_by: Dict[str, set] = {}
    runtime: Dict[Tuple[str, str], float] = {}
    for record in records:
        runtime[(record.instance.name, record.solver)] = record.result.runtime
        if record.solved:
            solved_by.setdefault(record.instance.name, set()).add(record.solver)
    common = {
        name for name, who in solved_by.items() if all(s in who for s in solvers)
    }

    for record in records:
        for family in (record.instance.family, "total"):
            row = by_key[(family, record.solver)]
            row.instances += 1
            status = record.result.status
            failure = record.result.failure
            if status == SAT:
                row.solved += 1
                row.sat += 1
            elif status == UNSAT:
                row.solved += 1
                row.unsat += 1
            elif status == TIMEOUT:
                row.timeouts += 1
            elif status == MEMOUT:
                row.memouts += 1
            elif failure is not None:
                # Guard-produced UNKNOWN: classify by the exhausted
                # resource, mirroring the legacy TIMEOUT/MEMOUT statuses.
                if failure.resource == "nodes":
                    row.memouts += 1
                else:
                    row.timeouts += 1
            if record.instance.name in common:
                row.total_time_common += record.result.runtime
    return [by_key[key] for key in sorted(by_key, key=lambda k: (_family_order(k[0]), k[1]))]


def _family_order(family: str) -> int:
    order = list(FAMILIES) + ["total"]
    return order.index(family) if family in order else len(order)


def format_table(rows: Sequence[FamilyRow]) -> str:
    """Render rows in the layout of Table I."""
    lines = [
        f"{'family':<11} {'solver':<10} {'#inst':>6} {'solved':>7} "
        f"{'(SAT/UNSAT)':>12} {'unsolved':>9} {'(TO/MO)':>9} {'total time':>11}"
    ]
    for row in rows:
        unsolved = row.timeouts + row.memouts
        lines.append(
            f"{row.family:<11} {row.solver:<10} {row.instances:>6} {row.solved:>7} "
            f"({row.sat}/{row.unsat}){'':>4} {unsolved:>6} "
            f"({row.timeouts}/{row.memouts}){'':>2} {row.total_time_common:>10.2f}s"
        )
    return "\n".join(lines)


def main() -> List[FamilyRow]:
    config = BenchConfig()
    print(f"Table I reproduction with {config!r}")
    records = run_suite(config)
    rows = build_table(records)
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
