"""One-shot report generator: every paper artifact into one markdown file.

Runs the scaled suite once and renders Table I, the Fig. 4 claims with
an ASCII scatter, and the in-text statistics, in a paper-vs-measured
layout::

    python -m repro.experiments.report report.md
    python -m repro.experiments.report            # print to stdout
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Sequence

from .extstats import extended_stats
from .fig4 import ascii_scatter, build_scatter, scatter_summary
from .runner import BenchConfig, run_suite
from .table1 import build_table, format_table

PAPER_TABLE1 = """\
| family    | HQS solved (SAT/UNSAT) | HQS (TO/MO) | IDQ solved (SAT/UNSAT) | IDQ (TO/MO) |
|-----------|------------------------|-------------|------------------------|-------------|
| adder     | 300 (42/258)           | (0/0)       | 216 (3/213)            | (84/0)      |
| bitcell   | 300 (7/293)            | (0/0)       | 190 (2/188)            | (110/0)     |
| lookahead | 300 (10/290)           | (0/0)       | 273 (4/269)            | (27/0)      |
| pec_xor   | 200 (24/176)           | (0/0)       | 200 (24/176)           | (0/0)       |
| z4        | 240 (72/168)           | (0/0)       | 111 (8/103)            | (129/0)     |
| comp      | 155 (39/116)           | (9/76)      | 25 (0/25)              | (180/35)    |
| C432      | 60 (19/41)             | (0/180)     | 20 (0/20)              | (85/135)    |
| total     | 1555 (213/1342)        | (9/256)     | 1035 (41/994)          | (615/170)   |"""


def generate_report(config: Optional[BenchConfig] = None) -> str:
    """Run the suite and render the full markdown report."""
    config = config or BenchConfig()
    start = time.monotonic()
    records = run_suite(config)
    elapsed = time.monotonic() - start

    rows = build_table(records)
    points = build_scatter(records)
    summary = scatter_summary(points)
    stats = extended_stats(records)

    lines: List[str] = []
    lines.append("# Reproduction report — Solving DQBF Through Quantifier Elimination")
    lines.append("")
    lines.append(f"Configuration: `{config!r}`; suite wall-clock {elapsed:.1f}s.")
    lines.append("")
    lines.append("## Table I")
    lines.append("")
    lines.append("Paper (1820 instances, 2h/8GB):")
    lines.append("")
    lines.append(PAPER_TABLE1)
    lines.append("")
    lines.append("Measured (scaled suite):")
    lines.append("")
    lines.append("```")
    lines.append(format_table(rows))
    lines.append("```")
    lines.append("")
    lines.append("## Fig. 4 — runtime scatter")
    lines.append("")
    for key, value in summary.items():
        lines.append(f"* {key}: {value}")
    lines.append("")
    lines.append("```")
    lines.append(ascii_scatter(points))
    lines.append("```")
    lines.append("")
    lines.append("## In-text statistics")
    lines.append("")
    lines.append("| claim | paper | measured |")
    lines.append("|---|---|---|")
    lines.append(
        "| HQS solved instances finished < 1 s | ~90% | "
        f"{_pct(stats['hqs_under_1s_fraction'])} |"
    )
    lines.append(
        "| IDQ solved instances finished < 1 s | ~49% | "
        f"{_pct(stats['idq_under_1s_fraction'])} |"
    )
    lines.append(
        f"| max MaxSAT selection time | < 0.06 s | {stats['max_maxsat_time']:.4f} s |"
    )
    lines.append(
        "| unit/pure share of runtime | < 4% | "
        f"mean {_pct(stats['mean_unit_pure_fraction'])}, "
        f"max {_pct(stats['max_unit_pure_fraction'])} |"
    )
    lines.append("")
    lines.append("## Stage timing")
    lines.append("")
    lines.append(
        "HQS wall-clock per pipeline stage, summed over the suite"
        " (`time_*` timers from `SolveResult.stats`):"
    )
    lines.append("")
    lines.append("| stage | total seconds |")
    lines.append("|---|---|")
    for key, seconds in stats["stage_time_totals"].items():
        stage = key[len("time_"):]
        lines.append(f"| {stage} | {seconds:.3f} |")
    lines.append("")
    return "\n".join(lines) + "\n"


def _pct(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    return f"{100 * value:.1f}%"


def main(argv: Sequence[str] = ()) -> int:
    report = generate_report()
    if argv:
        with open(argv[0], "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {argv[0]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
