"""Export the generated benchmark suite as DQDIMACS files.

Lets other DQBF solvers (real iDQ/HQS binaries, newer tools like DQBDD)
run on exactly the instances this reproduction benchmarks::

    python -m repro.experiments.export out_dir [--count N] [--scale S]

One file per instance, named ``<family>/<instance>.dqdimacs``, plus an
``index.csv`` with the expected status of every instance.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional, Sequence

from ..formula.dqdimacs import save_dqdimacs
from ..pec.families import EXTENSION_FAMILIES, FAMILIES, generate_family


def export_suite(
    directory: str,
    count: int = 6,
    scale: float = 1.0,
    families: Sequence[str] = FAMILIES,
    seed: int = 2015,
) -> int:
    """Write the suite to ``directory``; returns the number of instances."""
    os.makedirs(directory, exist_ok=True)
    index_lines = ["instance,family,expected,num_vars,num_clauses"]
    total = 0
    for family in families:
        family_dir = os.path.join(directory, family)
        os.makedirs(family_dir, exist_ok=True)
        for instance in generate_family(family, count, scale=scale, seed=seed):
            path = os.path.join(family_dir, f"{instance.name}.dqdimacs")
            save_dqdimacs(instance.formula, path)
            expected = {True: "SAT", False: "UNSAT", None: "UNKNOWN"}[instance.expected]
            index_lines.append(
                f"{instance.name},{family},{expected},"
                f"{instance.formula.matrix.num_vars},{len(instance.formula.matrix)}"
            )
            total += 1
    with open(os.path.join(directory, "index.csv"), "w", encoding="ascii") as handle:
        handle.write("\n".join(index_lines) + "\n")
    return total


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-export", description="export the PEC benchmark suite as DQDIMACS"
    )
    parser.add_argument("directory", help="output directory")
    parser.add_argument("--count", type=int, default=6, help="instances per family")
    parser.add_argument("--scale", type=float, default=1.0, help="size multiplier")
    parser.add_argument(
        "--families",
        nargs="*",
        default=list(FAMILIES),
        choices=list(FAMILIES) + list(EXTENSION_FAMILIES),
    )
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)
    total = export_suite(
        args.directory, args.count, args.scale, args.families, args.seed
    )
    print(f"wrote {total} instances to {args.directory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
