"""Experiment runner: solve instance pools under limits, collect records.

Mirrors the paper's experimental setup (Section IV) at laptop scale: a
per-instance wall-clock timeout stands in for the 2 h limit and an AIG
node budget stands in for the 8 GB memout.  Environment variables let
the benchmark harness scale without code changes:

``REPRO_BENCH_SCALE``        size multiplier for the circuit families
``REPRO_BENCH_COUNT``        instances per family
``REPRO_BENCH_TIMEOUT``      per-instance time limit in seconds
``REPRO_BENCH_NODELIMIT``    AIG node budget
``REPRO_BENCH_SEED``         suite generation seed (sharded workers must
                             share it to regenerate identical suites)
``REPRO_BENCH_JOBS``         worker processes for :func:`run_suite`
                             (1 = serial, in-process)
``REPRO_BENCH_CHECKPOINT``   directory for per-(instance, solver)
                             anytime checkpoints; killed or crashed
                             workers restart from their last completed
                             elimination instead of from scratch

A solver answering against an instance's known expected status is
recorded as a ``MISMATCH`` record rather than aborting the sweep; see
:mod:`repro.experiments.parallel` for hard timeouts, crash containment,
JSONL persistence/resume and portfolio racing.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.expansion import solve_expansion
from ..baselines.idq import IdqSolver
from ..core.hqs import HqsOptions, HqsSolver
from ..core.result import MISMATCH, SAT, UNSAT, Limits, SolveResult
from ..formula.dqbf import Dqbf
from ..pec.encode import PecInstance
from ..pec.families import FAMILIES, generate_family


class RunRecord:
    """One (instance, solver) measurement."""

    def __init__(self, instance: PecInstance, solver: str, result: SolveResult):
        self.instance = instance
        self.solver = solver
        self.result = result

    @property
    def solved(self) -> bool:
        return self.result.solved

    def __repr__(self) -> str:
        return f"RunRecord({self.instance.name}, {self.solver}, {self.result})"


class BenchConfig:
    """Benchmark knobs, initialized from the environment."""

    def __init__(
        self,
        scale: Optional[float] = None,
        count: Optional[int] = None,
        timeout: Optional[float] = None,
        node_limit: Optional[int] = None,
        seed: Optional[int] = None,
        jobs: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
    ):
        self.scale = (
            scale if scale is not None else float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        )
        self.count = count if count is not None else int(os.environ.get("REPRO_BENCH_COUNT", "6"))
        self.timeout = (
            timeout if timeout is not None else float(os.environ.get("REPRO_BENCH_TIMEOUT", "5.0"))
        )
        self.node_limit = node_limit if node_limit is not None else int(
            os.environ.get("REPRO_BENCH_NODELIMIT", "200000")
        )
        self.seed = seed if seed is not None else int(os.environ.get("REPRO_BENCH_SEED", "2015"))
        self.jobs = jobs if jobs is not None else int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        self.checkpoint_dir = (
            checkpoint_dir
            if checkpoint_dir is not None
            else os.environ.get("REPRO_BENCH_CHECKPOINT") or None
        )

    def limits(self) -> Limits:
        return Limits(time_limit=self.timeout, node_limit=self.node_limit)

    def checkpoint_path(self, instance_name: str, solver: str) -> Optional[str]:
        """Per-(instance, solver) checkpoint file, or ``None`` when off."""
        if self.checkpoint_dir is None:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return os.path.join(self.checkpoint_dir, f"{instance_name}.{solver}.ckpt")

    def __repr__(self) -> str:
        return (
            f"BenchConfig(scale={self.scale}, count={self.count}, "
            f"timeout={self.timeout}s, node_limit={self.node_limit}, "
            f"seed={self.seed}, jobs={self.jobs})"
        )


def _solve_bdd(formula: Dqbf, limits: Limits) -> SolveResult:
    from ..bdd.solver import solve_bdd

    return solve_bdd(formula, limits)


def _solve_dpll(formula: Dqbf, limits: Limits) -> SolveResult:
    from ..baselines.dpll import solve_dpll_dqbf

    return solve_dpll_dqbf(formula, limits)


def _solve_hqs(formula: Dqbf, limits: Limits, checkpoint: Optional[str] = None) -> SolveResult:
    return HqsSolver().solve(formula, limits, checkpoint=checkpoint)


def _solve_hqs_probe(
    formula: Dqbf, limits: Limits, checkpoint: Optional[str] = None
) -> SolveResult:
    return HqsSolver(HqsOptions(use_sat_probe=True)).solve(
        formula, limits, checkpoint=checkpoint
    )


SOLVERS: Dict[str, Callable[[Dqbf, Limits], SolveResult]] = {
    "HQS": _solve_hqs,
    "HQS_PROBE": _solve_hqs_probe,
    "IDQ": lambda formula, limits: IdqSolver().solve(formula, limits),
    "EXPANSION": lambda formula, limits: solve_expansion(formula, limits),
    "BDD": _solve_bdd,
    "DPLL": _solve_dpll,
}


def supports_checkpoint(solver: Callable) -> bool:
    """Does this registry entry take a ``checkpoint`` keyword?

    Decided by signature inspection (not by try/except on ``TypeError``,
    which would mask genuine argument bugs inside the solver).
    """
    import inspect

    try:
        return "checkpoint" in inspect.signature(solver).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C callables
        return False


def run_solver(name: str, instance: PecInstance, config: BenchConfig) -> RunRecord:
    """Run one solver on one instance under the configured limits."""
    solver = SOLVERS[name]
    kwargs = {}
    checkpoint = config.checkpoint_path(instance.name, name)
    if checkpoint is not None and supports_checkpoint(solver):
        kwargs["checkpoint"] = checkpoint
    result = solver(instance.formula.copy(), config.limits(), **kwargs)
    result = _check_expected(instance, name, result)
    return RunRecord(instance, name, result)


def _check_expected(
    instance: PecInstance, solver: str, result: SolveResult
) -> SolveResult:
    """Demote a wrong definitive answer to a ``MISMATCH`` record.

    A mid-sweep exception would abort the remaining (instance, solver)
    pairs, so a solver contradicting the instance's known status is
    recorded and the sweep keeps going — identically on the serial and
    parallel paths.  The solver's claimed status is preserved in
    ``stats["claimed_sat"]``.
    """
    if instance.expected is None or not result.solved:
        return result
    expected_status = SAT if instance.expected else UNSAT
    if result.status == expected_status:
        return result
    stats = dict(result.stats)
    stats["claimed_sat"] = 1.0 if result.status == SAT else 0.0
    return SolveResult(MISMATCH, result.runtime, stats)


def generate_suite(
    config: BenchConfig, families: Sequence[str] = FAMILIES
) -> Dict[str, List[PecInstance]]:
    """Generate the scaled benchmark suite, one instance pool per family."""
    return {
        family: generate_family(family, config.count, scale=config.scale, seed=config.seed)
        for family in families
    }


def run_suite(
    config: BenchConfig,
    solvers: Sequence[str] = ("HQS", "IDQ"),
    families: Sequence[str] = FAMILIES,
    jobs: Optional[int] = None,
    log_path: Optional[str] = None,
    resume: bool = False,
    portfolio: bool = False,
) -> List[RunRecord]:
    """Run the full comparison; returns one record per (instance, solver).

    ``jobs`` (default ``config.jobs``) selects the execution strategy:
    ``1`` without persistence runs serially in-process (the historical
    behaviour); anything else delegates to
    :func:`repro.experiments.parallel.run_suite_parallel`, which adds
    hard wall-clock timeouts, crash containment, JSONL persistence with
    ``resume``, and ``portfolio`` racing.  Both paths produce the same
    set of (instance, solver, status) records.
    """
    jobs = config.jobs if jobs is None else jobs
    if jobs != 1 or log_path is not None or resume or portfolio:
        from .parallel import run_suite_parallel

        return run_suite_parallel(
            config,
            solvers=solvers,
            families=families,
            jobs=jobs,
            log_path=log_path,
            resume=resume,
            portfolio=portfolio,
        )
    suite = generate_suite(config, families)
    records: List[RunRecord] = []
    for family in families:
        for instance in suite[family]:
            for solver in solvers:
                records.append(run_solver(solver, instance, config))
    return records
