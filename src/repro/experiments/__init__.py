"""Experiment harness: Table I, Fig. 4 and the in-text statistics."""

from .extstats import extended_stats, fraction_solved_fast
from .fig4 import ScatterPoint, build_scatter, scatter_summary, to_csv
from .runner import BenchConfig, RunRecord, generate_suite, run_solver, run_suite
from .table1 import FamilyRow, build_table, format_table

__all__ = [
    "extended_stats",
    "fraction_solved_fast",
    "ScatterPoint",
    "build_scatter",
    "scatter_summary",
    "to_csv",
    "BenchConfig",
    "RunRecord",
    "generate_suite",
    "run_solver",
    "run_suite",
    "FamilyRow",
    "build_table",
    "format_table",
]
