"""An AIG-based elimination QBF solver (the AIGSolve stand-in).

HQS hands over to this solver once the DQBF's dependency graph is
acyclic: the linearized prefix plus the *same* matrix AIG come in
directly — no CNF round trip (Section III-C: "we can feed the remaining
AIG directly into this solver").

The algorithm quantifies the innermost block variable by variable
(``exists`` = OR of cofactors, ``forall`` = AND of cofactors),
interleaved with syntactic unit/pure elimination, and short-circuits to
a single SAT call when only one quantifier block remains.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aig.cnf_bridge import is_satisfiable, is_tautology
from ..aig.graph import FALSE, TRUE, Aig
from ..aig.unitpure import detect_unit_pure
from ..core.guard import ResourceGuard
from ..formula.prefix import EXISTS, FORALL, BlockedPrefix
from ..formula.qbf import Qbf
from ..sat.incremental import AigSatSession


class QbfSolverStats:
    """Counters for one AIGSolve run."""

    def __init__(self) -> None:
        self.quantifier_eliminations = 0
        self.unit_eliminations = 0
        self.pure_eliminations = 0
        self.sat_endgames = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


def solve_aig_qbf(
    aig: Aig,
    root: int,
    prefix: BlockedPrefix,
    limits=None,
    use_unit_pure: bool = True,
    stats: Optional[QbfSolverStats] = None,
    compact_ratio: int = 4,
    fused: bool = True,
    sat_session: Optional[AigSatSession] = None,
) -> bool:
    """Decide the QBF given by ``prefix`` over the function at ``root``.

    ``prefix`` is consumed (mutated); pass a copy if it must survive.
    ``limits`` accepts a :class:`~repro.core.result.Limits` *or* a
    :class:`~repro.core.guard.ResourceGuard` — HQS hands down a guard
    slice so this back-end shares the solve's clock instead of starting
    its own; exhaustion raises the guard's
    :class:`~repro.errors.ResourceExhausted` subclass.

    ``fused`` selects the single-pass AIG kernel (``cofactor2`` for
    quantification, batched ``restrict`` for unit/pure); the naive path
    rebuilds the full cone once per cofactor and is kept for kernel
    comparisons.

    ``sat_session`` routes the SAT endgames through a persistent
    incremental solver (HQS hands down the session it used during
    elimination, so clauses learned there keep working here); without
    one each endgame builds a throwaway solver.
    """
    guard = ResourceGuard.ensure(limits)
    guard.enter_stage("qbf-backend")
    stats = stats if stats is not None else QbfSolverStats()

    while True:
        guard.check()
        if root == TRUE:
            return True
        if root == FALSE:
            return False

        # Compact when the manager carries too much garbage, then check
        # the node budget against live size.
        live = aig.cone_size(root)
        if aig.num_nodes > compact_ratio * max(live, 64):
            fresh, (root,) = aig.extract([root])
            aig = fresh
            if sat_session is not None:
                sat_session.rebind(aig)
        guard.check_nodes(aig.cone_size(root))
        guard.note(qbf_quantifier_eliminations=float(stats.quantifier_eliminations))

        support = aig.support_of(root)
        for var in prefix.variables():
            if var not in support:
                prefix.remove_variable(var)

        if use_unit_pure:
            outcome, root = _apply_unit_pure_qbf(aig, root, prefix, stats, fused, guard)
            if outcome is not None:
                return outcome
            if root in (TRUE, FALSE):
                continue

        blocks = prefix.blocks
        if not blocks:
            # No quantified variables left but non-constant matrix cannot
            # happen for closed formulas; treat defensively via SAT.
            return is_satisfiable(aig, root, guard.deadline(), sat_session)
        if len(blocks) == 1:
            quantifier, _variables = blocks[0]
            stats.sat_endgames += 1
            if quantifier == EXISTS:
                return is_satisfiable(aig, root, guard.deadline(), sat_session)
            return is_tautology(aig, root, guard.deadline(), sat_session)

        quantifier, variables = prefix.innermost_block()
        var = _cheapest_variable(aig, root, variables)
        if fused:
            cof0, cof1 = aig.cofactor2(root, var)
        else:
            cof0 = aig.cofactor(root, var, False)
            cof1 = aig.cofactor(root, var, True)
        root = aig.lor(cof0, cof1) if quantifier == EXISTS else aig.land(cof0, cof1)
        prefix.remove_variable(var)
        stats.quantifier_eliminations += 1


def solve_qbf(formula: Qbf, limits=None, **kwargs) -> bool:
    """Convenience entry point from a CNF-based :class:`Qbf`."""
    from ..aig.cnf_bridge import cnf_to_aig

    formula.validate()
    aig, root = cnf_to_aig(formula.matrix.clauses)
    prefix = BlockedPrefix(formula.prefix.blocks)
    return solve_aig_qbf(aig, root, prefix, limits, **kwargs)


def _cheapest_variable(aig: Aig, root: int, variables) -> int:
    """Pick the block variable with the fewest direct fanouts in the cone.

    Low fanout correlates with small cofactor divergence, which keeps
    the OR/AND of cofactors small — the classic AIGSolve scheduling
    heuristic, reduced to its cheapest useful form.
    """
    if len(variables) == 1:
        return variables[0]
    fanout = aig.input_fanout_counts(root, variables)
    return min(variables, key=lambda v: (fanout.get(v, 0), v))


def _apply_unit_pure_qbf(
    aig: Aig,
    root: int,
    prefix: BlockedPrefix,
    stats: QbfSolverStats,
    fused: bool = True,
    guard: Optional[ResourceGuard] = None,
):
    """Theorem 5 on a blocked prefix; returns ``(decided, root)``.

    ``fused`` applies each detection round as one batched ``restrict``
    instead of one full-cone cofactor rebuild per variable.  ``guard``
    threads the caller's budget through the fixpoint rounds.
    """
    guard = ResourceGuard.ensure(guard)
    while True:
        guard.check()
        if root in (TRUE, FALSE):
            return None, root
        info = detect_unit_pure(aig, root)
        if not info:
            return None, root
        for var in info.units:
            if prefix.quantifier_of(var) == FORALL:
                return False, root
        assignment: Dict[int, bool] = {}
        for var, forced in info.units.items():
            if prefix.quantifier_of(var) is None:
                continue
            assignment[var] = forced
            stats.unit_eliminations += 1
        for var, polarity in info.pures.items():
            quantifier = prefix.quantifier_of(var)
            if quantifier is None:
                continue
            assignment[var] = polarity if quantifier == EXISTS else not polarity
            stats.pure_eliminations += 1
        if not assignment:
            return None, root
        if fused:
            root = aig.restrict(root, assignment)
        else:
            for var, value in assignment.items():
                root = aig.cofactor(root, var, value)
        for var in assignment:
            prefix.remove_variable(var)
