"""QBF solving substrate: AIG-based elimination and a search-based oracle."""

from .aigsolve import QbfSolverStats, solve_aig_qbf, solve_qbf
from .qdpll import solve_qdpll

__all__ = ["QbfSolverStats", "solve_aig_qbf", "solve_qbf", "solve_qdpll"]
