"""A compact search-based QBF solver in the QDPLL tradition.

Splits on the outermost undecided variable, with unit propagation and
universal reduction at every node.  No learning — this solver exists as
an independent cross-check for :mod:`repro.qbf.aigsolve` and as the
"search-based" representative the paper contrasts elimination against
(DepQBF in the original experiments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.guard import ResourceGuard
from ..formula.lits import var_of
from ..formula.prefix import EXISTS, FORALL
from ..formula.qbf import Qbf


def solve_qdpll(formula: Qbf, limits=None) -> bool:
    """Decide a prenex CNF QBF by quantifier-order DPLL search.

    ``limits`` accepts a :class:`~repro.core.result.Limits` or a
    :class:`~repro.core.guard.ResourceGuard`; the search shares the
    caller's clock instead of restarting its own.
    """
    formula.validate()
    guard = ResourceGuard.ensure(limits)
    guard.enter_stage("qdpll-search")
    order: List[Tuple[int, str]] = []
    for quantifier, variables in formula.prefix.blocks:
        for var in variables:
            order.append((var, quantifier))
    quantifier_of = {var: q for var, q in order}
    clauses = [frozenset(c) for c in formula.matrix]
    position = {var: i for i, (var, _) in enumerate(order)}
    return _search(clauses, order, 0, quantifier_of, position, guard)


def _search(
    clauses: List[frozenset],
    order: List[Tuple[int, str]],
    depth: int,
    quantifier_of: Dict[int, str],
    position: Dict[int, int],
    guard: ResourceGuard,
) -> bool:
    guard.check()
    simplified = _simplify(clauses, quantifier_of, position)
    if simplified is None:
        return False
    clauses, forced = simplified
    if not clauses:
        return True

    # find outermost variable still occurring
    occurring = {var_of(lit) for clause in clauses for lit in clause}
    branch_var = None
    quantifier = None
    for var, q in order[depth:]:
        if var in occurring and var not in forced:
            branch_var = var
            quantifier = q
            break
    if branch_var is None:
        # all remaining variables are don't-cares but clauses non-empty:
        # every clause still has literals, so any assignment satisfies? No —
        # occurring variables must be quantified; this is unreachable for
        # closed formulas.
        return True

    results = []
    for value in (True, False):
        branch = _assign(clauses, branch_var, value)
        if branch is None:
            results.append(False)
        else:
            results.append(
                _search(branch, order, depth, quantifier_of, position, guard)
            )
        # short-circuit
        if quantifier == EXISTS and results[-1]:
            return True
        if quantifier == FORALL and not results[-1]:
            return False
    return results[0] if quantifier == FORALL else any(results)


def _simplify(
    clauses: List[frozenset],
    quantifier_of: Dict[int, str],
    position: Dict[int, int],
) -> Optional[Tuple[List[frozenset], Dict[int, bool]]]:
    """Unit propagation + universal reduction to fixpoint.

    Returns ``None`` on conflict, else the simplified clause list and the
    variables forced on the way.
    """
    clauses = list(clauses)
    forced: Dict[int, bool] = {}
    changed = True
    while changed:
        changed = False
        # universal reduction: drop universal literals deeper than every
        # existential literal of the clause
        reduced: List[frozenset] = []
        for clause in clauses:
            exist_positions = [
                position[var_of(lit)]
                for lit in clause
                if quantifier_of[var_of(lit)] == EXISTS
            ]
            horizon = max(exist_positions) if exist_positions else -1
            kept = frozenset(
                lit
                for lit in clause
                if quantifier_of[var_of(lit)] == EXISTS
                or position[var_of(lit)] < horizon
            )
            if kept != clause:
                changed = True
            if not kept:
                return None
            reduced.append(kept)
        clauses = reduced

        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is not None:
            lit = next(iter(unit))
            if quantifier_of[var_of(lit)] == FORALL:
                return None
            forced[var_of(lit)] = lit > 0
            clauses = _assign(clauses, var_of(lit), lit > 0)
            if clauses is None:
                return None
            changed = True
    return clauses, forced


def _assign(clauses: List[frozenset], var: int, value: bool) -> Optional[List[frozenset]]:
    true_lit = var if value else -var
    result = []
    for clause in clauses:
        if true_lit in clause:
            continue
        if -true_lit in clause:
            clause = clause - {-true_lit}
            if not clause:
                return None
        result.append(clause)
    return result
