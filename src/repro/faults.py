"""Deterministic, seeded fault injection for the serving stack.

The service survives worker crashes, torn disk writes and dropped
connections — but only the failure modes somebody thought to test.
This module makes arbitrary fault schedules *reproducible*: a
:class:`FaultPlan` is an explicit list of scheduled faults ("the 3rd
disk write at ``cache.write`` is torn", "the 5th solve crashes the
worker"), built either from a compact spec string (the ``REPRO_FAULTS``
environment variable), programmatically, or from a seeded RNG
(:meth:`FaultPlan.random`) for chaos soaks.  Replaying the same plan
against the same request schedule reproduces the same failure sequence,
which is what turns "the service wedged once in CI" into a regression
test.

Injection sites
---------------

Sites are stable string names; each site keeps its own 1-based event
counter, so "the Nth event at site S" is well defined regardless of
what other sites do:

``pool.solve``
    one solve request arriving at a warm worker (worker process side).
    Kinds: ``crash`` (the worker process exits abruptly), ``wedge``
    (the worker blocks past any deadline), ``slow`` (the reply is
    delayed by ``seconds``), ``clock`` (the request's time budget is
    collapsed to ``seconds`` — cooperative budget exhaustion).
``parallel.worker``
    one (instance, solver) worker of the benchmark runner starting.
    Kinds: ``crash``, ``wedge``, ``slow``.
``cache.write``
    one on-disk result-cache store.  Kinds: ``torn`` (the destination
    file ends up with a prefix of the record), ``ioerror`` (the write
    raises :class:`OSError`).
``checkpoint.save``
    one :class:`~repro.core.SolverCheckpoint` save.  Kinds: ``torn``,
    ``ioerror``.
``log.append``
    one result-log record append.  Kinds: ``torn``, ``ioerror``.
``server.send``
    one response line leaving the TCP front door.  Kinds: ``drop``
    (half the frame is written, then the connection is aborted),
    ``slow`` (the write is delayed by ``seconds``).

Spec grammar (one line, ``;``-separated)::

    plan  := fault (";" fault)*
    fault := site ":" kind "@" nth ["x" count] ("," key "=" value)*

``nth`` is the 1-based index of the first affected event at that site,
``count`` (default 1) how many consecutive events fault.  Example::

    REPRO_FAULTS="pool.solve:crash@2;cache.write:torn@1x2;server.send:drop@3,seconds=0.1"

Processes: the plan is carried by value.  Forked workers inherit the
parent's installed plan (each process counts its own events); spawned
processes pick the plan up again from ``REPRO_FAULTS``.  The counters
are intentionally per-process — a schedule names "the Nth event *this
process* sees at that site", which is what stays deterministic when
several workers run concurrently.

With no plan installed and no ``REPRO_FAULTS`` set, :func:`fire` is a
single attribute check — cheap enough to leave in production paths.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment variable holding a plan spec (parsed lazily, once).
ENV_VAR = "REPRO_FAULTS"

#: site -> fault kinds that make sense there (validated at plan build).
SITES: Dict[str, Tuple[str, ...]] = {
    "pool.solve": ("crash", "wedge", "slow", "clock"),
    "parallel.worker": ("crash", "wedge", "slow"),
    "cache.write": ("torn", "ioerror"),
    "checkpoint.save": ("torn", "ioerror"),
    "log.append": ("torn", "ioerror"),
    "server.send": ("drop", "slow"),
}

KINDS = tuple(sorted({kind for kinds in SITES.values() for kind in kinds}))


class FaultSpecError(ValueError):
    """Raised on a malformed plan spec or an impossible (site, kind)."""


class Fault:
    """One scheduled fault: ``kind`` at the ``nth`` event of ``site``."""

    __slots__ = ("site", "kind", "nth", "count", "args")

    def __init__(
        self,
        site: str,
        kind: str,
        nth: int,
        count: int = 1,
        args: Optional[Dict[str, float]] = None,
    ) -> None:
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (expected one of {sorted(SITES)})"
            )
        if kind not in SITES[site]:
            raise FaultSpecError(
                f"fault kind {kind!r} is not injectable at {site!r} "
                f"(supports {SITES[site]})"
            )
        if nth < 1 or count < 1:
            raise FaultSpecError(
                f"fault schedule indices are 1-based: nth={nth}, count={count}"
            )
        self.site = site
        self.kind = kind
        self.nth = nth
        self.count = count
        self.args = dict(args or {})

    @property
    def seconds(self) -> float:
        """Delay/budget argument of ``slow``/``clock`` faults."""
        return float(self.args.get("seconds", 0.25))

    def covers(self, n: int) -> bool:
        return self.nth <= n < self.nth + self.count

    def spec(self) -> str:
        text = f"{self.site}:{self.kind}@{self.nth}"
        if self.count != 1:
            text += f"x{self.count}"
        for key in sorted(self.args):
            text += f",{key}={self.args[key]:g}"
        return text

    def __repr__(self) -> str:
        return f"Fault({self.spec()!r})"


class FaultPlan:
    """A schedule of faults plus the per-site event counters.

    Thread-safe: many executor threads and the supervisor can call
    :func:`fire` concurrently.  ``plan.fired`` records every fault that
    actually triggered, for test assertions and chaos-soak reports.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self.fired: List[Tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (see module doc)."""
        faults: List[Fault] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            head, *kvs = part.split(",")
            try:
                site, _, rest = head.partition(":")
                kind, _, where = rest.partition("@")
                nth_text, _, count_text = where.partition("x")
                nth = int(nth_text)
                count = int(count_text) if count_text else 1
            except ValueError as exc:
                raise FaultSpecError(f"cannot parse fault {part!r}: {exc}") from exc
            if not kind or not where:
                raise FaultSpecError(
                    f"cannot parse fault {part!r} (want site:kind@nth)"
                )
            args: Dict[str, float] = {}
            for kv in kvs:
                key, eq, value = kv.partition("=")
                if not eq:
                    raise FaultSpecError(f"bad fault argument {kv!r} in {part!r}")
                try:
                    args[key.strip()] = float(value)
                except ValueError as exc:
                    raise FaultSpecError(
                        f"fault argument {kv!r} is not numeric"
                    ) from exc
            faults.append(Fault(site.strip(), kind.strip(), nth, count, args))
        return cls(faults)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset."""
        spec = (environ or os.environ).get(ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    @classmethod
    def random(
        cls,
        seed: int,
        events: int,
        horizon: int,
        sites: Optional[Iterable[str]] = None,
        kinds: Optional[Iterable[str]] = None,
        seconds: float = 0.05,
    ) -> "FaultPlan":
        """A seeded randomized schedule of ``events`` faults.

        Each fault picks a site, an eligible kind and a 1-based event
        index up to ``horizon``.  The same ``seed`` always yields the
        same plan — chaos soaks commit the seed, not the schedule.
        """
        rng = random.Random(seed)
        site_pool = sorted(sites) if sites is not None else sorted(SITES)
        kind_pool = set(kinds) if kinds is not None else set(KINDS)
        faults: List[Fault] = []
        for _ in range(events):
            candidates = [
                (site, kind)
                for site in site_pool
                for kind in SITES[site]
                if kind in kind_pool
            ]
            if not candidates:
                raise FaultSpecError(
                    f"no (site, kind) combination left of sites={site_pool} "
                    f"kinds={sorted(kind_pool)}"
                )
            site, kind = candidates[rng.randrange(len(candidates))]
            nth = rng.randint(1, max(1, horizon))
            args = {"seconds": seconds} if kind in ("slow", "clock") else None
            faults.append(Fault(site, kind, nth, args=args))
        return cls(faults)

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def fire(self, site: str) -> Optional[Fault]:
        """Count one event at ``site``; the scheduled fault for it, if any.

        When several faults cover the same event the first in plan
        order wins (write specs accordingly).
        """
        with self._lock:
            n = self._counters.get(site, 0) + 1
            self._counters[site] = n
            for fault in self.faults:
                if fault.site == site and fault.covers(n):
                    self.fired.append((site, fault.kind, n))
                    return fault
        return None

    def events(self, site: str) -> int:
        with self._lock:
            return self._counters.get(site, 0)

    def advance(self, site: str, count: int) -> None:
        """Fast-forward ``site``'s counter to at least ``count`` events.

        Used when a schedule spans process incarnations: a respawned
        worker is handed the number of events its slot already saw, so
        it continues the plan instead of replaying it from event 1.
        """
        with self._lock:
            self._counters[site] = max(self._counters.get(site, 0), count)

    def fired_kinds(self) -> Dict[str, int]:
        with self._lock:
            kinds: Dict[str, int] = {}
            for _site, kind, _n in self.fired:
                kinds[kind] = kinds.get(kind, 0) + 1
            return kinds

    def spec(self) -> str:
        return ";".join(fault.spec() for fault in self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r}, fired={len(self.fired)})"

    # A plan must cross process boundaries (pool workers under spawn);
    # the lock is process-local and counters start fresh per process.
    def __getstate__(self) -> Dict[str, object]:
        return {"faults": self.faults}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(state["faults"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# process-wide plan
# ----------------------------------------------------------------------

#: The installed plan; ``False`` = not yet resolved from the environment.
_active: Optional[FaultPlan] = None
_resolved = False
_install_lock = threading.Lock()


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    global _active, _resolved
    with _install_lock:
        _active = plan
        _resolved = True
    return plan


def active() -> Optional[FaultPlan]:
    """The process-wide plan (first call resolves ``REPRO_FAULTS``)."""
    global _active, _resolved
    if not _resolved:
        with _install_lock:
            if not _resolved:
                _active = FaultPlan.from_env()
                _resolved = True
    return _active


def clear() -> None:
    """Forget the installed plan *and* the env resolution (tests)."""
    global _active, _resolved
    with _install_lock:
        _active = None
        _resolved = False


def fire(site: str) -> Optional[Fault]:
    """One event at ``site`` against the process-wide plan (fast no-op
    when no plan is installed)."""
    plan = _active
    if plan is None:
        if _resolved:
            return None
        plan = active()
        if plan is None:
            return None
    return plan.fire(site)


# ----------------------------------------------------------------------
# worker-side fault behaviours (shared by pool + parallel runner)
# ----------------------------------------------------------------------

def crash_process(code: int = 66) -> None:  # pragma: no cover - exits
    """Die the way a segfault/OOM kill looks from the supervisor."""
    os._exit(code)


def wedge_process(seconds: float = 3600.0) -> None:
    """Block well past any reasonable deadline (a solver stuck in
    native code); the supervisor's hard kill is the only way out."""
    time.sleep(seconds)


def apply_worker_fault(fault: Optional[Fault]) -> Optional[Fault]:
    """Enact a ``crash``/``wedge``/``slow`` fault in a worker process.

    Returns the fault (``clock`` and unknown kinds are left for the
    caller, which knows the request's budget).
    """
    if fault is None:
        return None
    if fault.kind == "crash":  # pragma: no cover - exits the process
        crash_process()
    elif fault.kind == "wedge":
        wedge_process(fault.args.get("seconds", 3600.0))
    elif fault.kind == "slow":
        time.sleep(fault.seconds)
    return fault
