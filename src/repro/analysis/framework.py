"""Core pieces of the ``hqs-lint`` static analyzer.

The analyzer mirrors the certification stance of the ROADMAP: the
solver's cross-cutting invariants (guard threading, monotonic clocks,
durable writes, fault-site coverage, fork/async discipline, exception
hygiene) are checked by an independent pass over the source tree, not
promised by the code that is supposed to uphold them.

This module holds the rule-agnostic machinery:

* :class:`Finding` — one diagnostic, with a stable identity used by the
  committed baseline file,
* :class:`SourceFile` — a parsed source file plus per-line suppression
  comments (``# hqs-lint: disable=RPR001[,RPR002]``),
* :class:`Rule` / :class:`ProjectRule` — per-file and whole-tree rule
  base classes and the registry they register into.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

#: Suppression comment syntax, anywhere on the offending physical line.
SUPPRESS_RE = re.compile(r"#\s*hqs-lint:\s*disable=([A-Za-z0-9_,\s]+)")

ERROR = "error"
WARNING = "warning"


class Finding:
    """One diagnostic emitted by a rule.

    The identity used for baselining is ``(code, path, message)`` —
    deliberately *without* the line number, so unrelated edits above a
    grandfathered finding do not invalidate the baseline, while any
    change to what the finding says does.
    """

    __slots__ = ("code", "path", "line", "message", "severity", "symbol")

    def __init__(
        self,
        code: str,
        path: str,
        line: int,
        message: str,
        severity: str = ERROR,
        symbol: str = "",
    ):
        self.code = code
        self.path = path
        self.line = line
        self.message = message
        self.severity = severity
        self.symbol = symbol

    def key(self) -> Tuple[str, str, str]:
        return (self.code, self.path, self.message)

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.code)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.code} {self.severity}: {self.message}{sym}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.render()!r})"


def module_name_for(path: Path, explicit: Optional[str] = None) -> str:
    """Derive the dotted module name for ``path``.

    A ``src`` path component is treated as the import root (matching the
    repo's ``PYTHONPATH=src`` layout); without one, the full relative
    path is dotted.  ``__init__.py`` maps to its package.
    """
    if explicit is not None:
        return explicit
    parts = [p for p in path.parts if p not in (".", "")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SourceFile:
    """A parsed source file with suppression info and an AST parent map."""

    def __init__(self, path: Path, text: Optional[str] = None, module: Optional[str] = None):
        self.path = path
        self.rel = path.as_posix()
        self.text = path.read_text(encoding="utf-8") if text is None else text
        self.module = module_name_for(path, module)
        self.lines = self.text.split("\n")
        self.tree = ast.parse(self.text, filename=self.rel)
        self.suppressed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, 1):
            match = SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
                self.suppressed[lineno] = codes
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressed.get(finding.line)
        if not codes:
            return False
        return finding.code in codes or "ALL" in codes

    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def qualname_of(self, node: ast.AST) -> str:
        """Dotted name of the classes/functions enclosing ``node``."""
        parents = self.parents()
        chain: List[str] = []
        current = node
        while current in parents:
            current = parents[current]
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                chain.append(current.name)
        return ".".join(reversed(chain))


class Rule:
    """A per-file rule.  Subclasses set the class attributes and
    implement :meth:`check`."""

    code = "RPR000"
    name = "unnamed"
    severity = ERROR
    rationale = ""

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, src: SourceFile, options: Dict[str, object]) -> bool:
        """Package scoping: empty ``packages`` means every file."""
        packages = options.get("packages") or []
        if not packages:
            return True
        return any(
            src.module == pkg or src.module.startswith(pkg + ".") for pkg in packages
        )


class ProjectRule(Rule):
    """A whole-tree rule (cross-file consistency checks)."""

    def check_project(
        self, sources: List[SourceFile], options: Dict[str, object]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        return iter(())


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    return [REGISTRY[code] for code in sorted(REGISTRY)]


# ----------------------------------------------------------------------
# shared AST helpers used by several rules
# ----------------------------------------------------------------------

def call_source(node: ast.Call) -> str:
    """Source text of a call's function expression (``self.guard.check``)."""
    return ast.unparse(node.func)


def walk_skipping_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/lambda bodies.

    Used where reachability matters: code inside a nested ``def`` or
    ``lambda`` does not run when the enclosing block runs.  ``node``
    itself is descended into even if it is a function definition.
    """
    yield node
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_source_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            yield path
