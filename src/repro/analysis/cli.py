"""``hqs-lint`` command line front end.

Exit codes follow the convention of the other repro tools:

* ``0`` — clean (no new findings, no stale baseline entries),
* ``1`` — violations (new findings and/or stale baseline entries),
* ``2`` — usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, split_by_baseline, stale_to_dicts, write_baseline
from .config import LintConfig, load_config
from .engine import AnalysisError, analyze_sources, load_sources
from .framework import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs-lint",
        description="AST-based invariant analyzer for the repro solver stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: [tool.hqs-lint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml to read [tool.hqs-lint] from (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: [tool.hqs-lint] baseline setting)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (overrides config select)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip (overrides config ignore)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    for rule_cls in all_rules():
        print(f"{rule_cls.code} {rule_cls.name} ({rule_cls.severity})")
        doc = (rule_cls.__doc__ or "").strip().split("\n")[0]
        if doc:
            print(f"    {doc}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    if args.config is not None and not args.config.is_file():
        print(f"hqs-lint: config not found: {args.config}", file=sys.stderr)
        return 2
    try:
        config = load_config(args.config)
    except (OSError, ValueError) as exc:
        print(f"hqs-lint: bad config: {exc}", file=sys.stderr)
        return 2
    if args.select:
        config.raw["select"] = [c.strip() for c in args.select.split(",") if c.strip()]
    if args.ignore:
        config.raw["ignore"] = [c.strip() for c in args.ignore.split(",") if c.strip()]

    paths = args.paths or config.paths
    if not paths:
        print("hqs-lint: no paths to analyze", file=sys.stderr)
        return 2

    try:
        sources = load_sources(paths)
        findings = analyze_sources(sources, config)
    except AnalysisError as exc:
        print(f"hqs-lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or Path(config.baseline)

    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"hqs-lint: wrote {len(findings)} baseline entries to {baseline_path}")
        return 0

    if args.no_baseline:
        baseline = set()
    else:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"hqs-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    new, grandfathered, stale = split_by_baseline(findings, baseline)
    failed = bool(new or stale)

    if args.format == "json":
        payload = {
            "version": 1,
            "files": len(sources),
            "findings": [f.to_dict() for f in new],
            "grandfathered": [f.to_dict() for f in grandfathered],
            "stale_baseline": stale_to_dicts(stale),
            "ok": not failed,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for code, path, message in stale:
            print(
                f"{path}: {code} stale-baseline: baseline entry no longer "
                f"matches any finding: {message}"
            )
        summary = (
            f"hqs-lint: {len(sources)} files, {len(new)} new finding(s), "
            f"{len(grandfathered)} grandfathered, {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
