"""Committed-baseline handling for grandfathered findings.

The baseline is a JSON file of finding identities ``(code, path,
message)`` — no line numbers, so edits elsewhere in a file do not churn
it.  Enforcement is bidirectional:

* a finding *not* in the baseline is new and fails the run;
* a baseline entry no findings matched is *stale* and also fails the
  run, so fixed violations must be removed from the file (via
  ``hqs-lint --update-baseline``) rather than lingering as dead grants.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Set, Tuple

from .framework import Finding

BASELINE_VERSION = 1

Key = Tuple[str, str, str]


def load_baseline(path: Path) -> Set[Key]:
    """Load baseline keys; a missing file is an empty baseline."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    keys: Set[Key] = set()
    for entry in data.get("entries", []):
        keys.add((entry["code"], entry["path"], entry["message"]))
    return keys


def write_baseline(path: Path, findings: List[Finding]) -> None:
    entries = [
        {"code": code, "path": rel, "message": message}
        for code, rel, message in sorted({f.key() for f in findings})
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: List[Finding], baseline: Set[Key]
) -> Tuple[List[Finding], List[Finding], List[Key]]:
    """Partition into (new, grandfathered, stale-baseline-keys)."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    used: Set[Key] = set()
    for finding in findings:
        key = finding.key()
        if key in baseline:
            grandfathered.append(finding)
            used.add(key)
        else:
            new.append(finding)
    stale = sorted(baseline - used)
    return new, grandfathered, stale


def stale_to_dicts(stale: List[Key]) -> List[Dict[str, str]]:
    return [{"code": c, "path": p, "message": m} for c, p, m in stale]
