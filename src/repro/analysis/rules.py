"""The per-file invariant rules RPR001–RPR006.

Each rule encodes one cross-cutting convention the solver stack has
accumulated (see ``docs/lint.md`` for the catalog with rationale).  The
checks are deliberately syntactic approximations tuned against this
tree: escape hatches are spelled out per rule, and anything the
approximation cannot see can be waived per line
(``# hqs-lint: disable=RPR00x``) or per module via ``[tool.hqs-lint]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .framework import (
    ERROR,
    WARNING,
    Finding,
    Rule,
    SourceFile,
    call_source,
    register,
    walk_skipping_functions,
)

#: ResourceGuard methods that count as a cooperative check (PR 4 API).
GUARD_METHODS = ("check", "check_nodes", "ensure", "slice", "tick")

#: Identifier fragments that mark a loop as bounded by a deadline/budget
#: comparison instead of a guard object.
BOUND_MARKERS = ("deadline", "budget", "monotonic")


def _finding(rule: Rule, src: SourceFile, node: ast.AST, message: str) -> Finding:
    return Finding(
        code=rule.code,
        path=src.rel,
        line=getattr(node, "lineno", 1),
        message=message,
        severity=rule.severity,
        symbol=src.qualname_of(node),
    )


# ----------------------------------------------------------------------
# RPR001: guard threading
# ----------------------------------------------------------------------

@register
class GuardThreadingRule(Rule):
    """Unbounded loops in the solver core must reach the ResourceGuard.

    A ``while`` loop is treated as unbounded when its test is a truthy
    constant (``while True``) or a bare name the body never reassigns
    (an effectively-constant flag).  ``while worklist:`` loops that pop
    from the tested collection are worklist consumers — bounded as long
    as pushes are — and are exempt.  An unbounded loop must contain a
    guard call (``*.check()`` / ``*.check_nodes()`` / ``*.ensure()`` /
    ``*.slice()`` on something named ``guard``) or an explicit
    deadline/budget comparison; loops bounded by construction for other
    reasons go in the ``allow`` list as ``module::qualname`` entries.
    """

    code = "RPR001"
    name = "guard-threading"
    severity = ERROR
    rationale = (
        "PR 4's graceful degradation only works if every potentially "
        "long-running loop polls the cooperative ResourceGuard; a single "
        "unguarded fixpoint loop turns a budget overrun into a hang."
    )

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        allow = set(options.get("allow") or [])
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.While):
                continue
            if not self._is_unbounded(node):
                continue
            qualname = src.qualname_of(node)
            if f"{src.module}::{qualname}" in allow:
                continue
            if self._has_guard_call(node) or self._has_bound_comparison(node):
                continue
            yield _finding(
                self,
                src,
                node,
                f"unbounded 'while {ast.unparse(node.test)}' loop never calls "
                "guard.check()/ensure() and has no deadline/budget bound",
            )

    @staticmethod
    def _is_unbounded(node: ast.While) -> bool:
        test = node.test
        if isinstance(test, ast.Constant):
            return bool(test.value)
        if isinstance(test, ast.Name):
            # Worklist consumer: the body pops from the tested collection.
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in ("pop", "popleft", "popitem")
                    and isinstance(child.func.value, ast.Name)
                    and child.func.value.id == test.id
                ):
                    return False
            # Effectively constant: the body never rebinds the flag.
            for child in ast.walk(node):
                if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name) and name.id == test.id:
                                return False
                if isinstance(child, ast.Nonlocal) and test.id in child.names:
                    return False
            return True
        return False

    @staticmethod
    def _has_guard_call(node: ast.While) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
                if child.func.attr in GUARD_METHODS:
                    receiver = ast.unparse(child.func.value).lower()
                    if "guard" in receiver:
                        return True
        return False

    @staticmethod
    def _has_bound_comparison(node: ast.While) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Compare):
                text = ast.unparse(child).lower()
                if any(marker in text for marker in BOUND_MARKERS):
                    return True
        return False


# ----------------------------------------------------------------------
# RPR002: clock hygiene
# ----------------------------------------------------------------------

@register
class ClockHygieneRule(Rule):
    """Durations and deadlines must come from the monotonic clock.

    ``time.time()`` is subject to NTP steps and manual adjustment; every
    elapsed-time or deadline computation must use ``time.monotonic()``.
    The rule flags *all* ``time.time()`` calls — a genuine wall-clock
    timestamp (logged metadata, never subtracted) is waived with a
    per-line suppression or ``allow-modules``.
    """

    code = "RPR002"
    name = "clock-hygiene"
    severity = ERROR
    rationale = (
        "A wall-clock step during a solve corrupts budgets, retry "
        "backoffs and benchmark numbers; the tree was converted to "
        "time.monotonic() and this rule keeps it that way."
    )

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        if src.module in set(options.get("allow-modules") or []):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and call_source(node) == "time.time":
                yield _finding(
                    self,
                    src,
                    node,
                    "time.time() call: use time.monotonic() for durations/deadlines "
                    "(suppress if a wall-clock timestamp is really intended)",
                )


# ----------------------------------------------------------------------
# RPR003: determinism
# ----------------------------------------------------------------------

#: Module-level random functions whose use defeats seeded replay.
MODULE_RANDOM_FNS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "betavariate",
)


@register
class DeterminismRule(Rule):
    """Randomness must flow from an explicit seed.

    Flags ``random.Random()`` constructed without arguments and calls to
    the module-level ``random.*`` functions (which share hidden global
    state).  Benchmarks and soaks replay byte-identical schedules only
    when every RNG hangs off a seed threaded from the caller.
    """

    code = "RPR003"
    name = "determinism"
    severity = ERROR
    rationale = (
        "REPRO_FAULTS soaks and Table 1 reruns must replay identically; "
        "an unseeded RNG anywhere in the stack breaks bisection of "
        "chaos-found bugs."
    )

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        if src.module in set(options.get("allow-modules") or []):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            source = call_source(node)
            if source in ("random.Random", "Random") and not node.args and not node.keywords:
                yield _finding(
                    self,
                    src,
                    node,
                    "random.Random() constructed without a seed: thread an explicit "
                    "seed so runs replay deterministically",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in MODULE_RANDOM_FNS
            ):
                yield _finding(
                    self,
                    src,
                    node,
                    f"module-level random.{node.func.attr}() uses hidden global RNG "
                    "state: use a seeded random.Random instance",
                )


# ----------------------------------------------------------------------
# RPR004: durability
# ----------------------------------------------------------------------

WRITE_MODES = ("w", "wb", "a", "ab", "w+", "wb+", "a+", "ab+", "x", "xb")


@register
class DurabilityRule(Rule):
    """Writes in the service/experiments layers must go through
    ``repro.durable`` CRC framing.

    Raw ``open(..., 'w'/'a')`` and ``os.replace`` in those packages
    bypass the torn-write protection the chaos soak relies on.  Modules
    producing human-readable artifacts (reports, exports, figures) are
    listed in ``allow-modules``; the durable framing layer itself uses a
    per-line suppression.
    """

    code = "RPR004"
    name = "durability"
    severity = ERROR
    rationale = (
        "PR 7's crash-safety story holds only if every record that must "
        "survive a fault goes through write_framed/frame_line; a raw "
        "open('w') reintroduces silent torn-write corruption."
    )

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        if src.module in set(options.get("allow-modules") or []):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            source = call_source(node)
            if source == "os.replace":
                yield _finding(
                    self,
                    src,
                    node,
                    "os.replace() outside repro.durable: atomic renames belong in "
                    "the durable layer",
                )
            elif source == "open":
                mode = self._open_mode(node)
                if mode is not None and mode.replace("+", "") in (
                    "w", "wb", "a", "ab", "x", "xb"
                ):
                    yield _finding(
                        self,
                        src,
                        node,
                        f"raw open(..., {mode!r}) bypasses repro.durable framing: "
                        "use durable.write_framed/frame_line for crash-safe records",
                    )

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2:
            mode = node.args[1]
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                return mode.value
            return None
        for keyword in node.keywords:
            if keyword.arg == "mode":
                if isinstance(keyword.value, ast.Constant) and isinstance(
                    keyword.value.value, str
                ):
                    return keyword.value.value
                return None
        return None  # default mode "r": not a write


# ----------------------------------------------------------------------
# RPR005: fork/async safety
# ----------------------------------------------------------------------

#: Call sources that block the event loop outright.
ASYNC_BLOCKING_EXACT = ("time.sleep", "os.fsync", "open")
ASYNC_BLOCKING_PREFIX = ("subprocess.",)


@register
class ForkAsyncSafetyRule(Rule):
    """Async bodies must not block the loop; forks must precede threads.

    In ``async-modules``, direct statements of an ``async def`` (nested
    ``def``/``lambda`` bodies are skipped — they typically run in an
    executor) must not call ``time.sleep``, ``subprocess.*``,
    ``os.fsync``, ``open`` or any configured ``known-blocking``
    attribute suffix.  In ``fork-modules``, two fork-discipline checks:
    a ``threading.Thread`` created lexically before a ``Process(...)``
    in the same function body, and a same-module ``Process``
    ``target=`` function that never calls ``close_foreign_sockets``
    (the PR 7 forked-fd bug class).
    """

    code = "RPR005"
    name = "fork-async-safety"
    severity = ERROR
    rationale = (
        "A blocking call on the event loop stalls every connected "
        "client; a thread captured by fork() deadlocks the worker pool. "
        "Both failure modes escaped review once already."
    )

    def applies_to(self, src: SourceFile, options: Dict[str, object]) -> bool:
        modules = set(options.get("async-modules") or []) | set(
            options.get("fork-modules") or []
        )
        return src.module in modules

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        if src.module in set(options.get("async-modules") or []):
            yield from self._check_async(src, options)
        if src.module in set(options.get("fork-modules") or []):
            yield from self._check_fork(src)

    def _check_async(
        self, src: SourceFile, options: Dict[str, object]
    ) -> Iterator[Finding]:
        known_blocking = tuple(options.get("known-blocking") or [])
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in walk_skipping_functions(node):
                if not isinstance(child, ast.Call):
                    continue
                source = call_source(child)
                blocking = (
                    source in ASYNC_BLOCKING_EXACT
                    or any(source.startswith(p) for p in ASYNC_BLOCKING_PREFIX)
                    or any(
                        source == suffix or source.endswith("." + suffix)
                        for suffix in known_blocking
                    )
                )
                if blocking:
                    yield _finding(
                        self,
                        src,
                        child,
                        f"blocking call {source}() on the event loop inside "
                        f"'async def {node.name}': run it in the executor",
                    )

    def _check_fork(self, src: SourceFile) -> Iterator[Finding]:
        # (a) Thread created lexically before a Process() in one function.
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            threads: List[ast.Call] = []
            forks: List[ast.Call] = []
            for child in walk_skipping_functions(fn):
                if not isinstance(child, ast.Call):
                    continue
                source = call_source(child)
                if source.endswith("Thread"):
                    threads.append(child)
                elif source.endswith("Process"):
                    forks.append(child)
            if not threads:
                continue
            first_thread = min(threads, key=lambda call: call.lineno)
            for fork in forks:
                if first_thread.lineno < fork.lineno:
                    yield _finding(
                        self,
                        src,
                        fork,
                        f"Process() forked after a Thread was started at line "
                        f"{first_thread.lineno}: fork first, then start "
                        "threads, or the child inherits locked state",
                    )
        # (b) Same-module fork targets must drop inherited sockets.
        functions: Dict[str, ast.AST] = {}
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if not call_source(node).endswith("Process"):
                continue
            target = self._target_name(node)
            if target is None or target not in functions:
                continue
            if not self._calls_close_foreign_sockets(functions[target]):
                yield _finding(
                    self,
                    src,
                    node,
                    f"fork target {target}() never calls close_foreign_sockets(): "
                    "inherited pipe/socket fds keep peers from seeing EOF",
                )

    @staticmethod
    def _target_name(node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                return keyword.value.id
        return None

    @staticmethod
    def _calls_close_foreign_sockets(fn: ast.AST) -> bool:
        for child in ast.walk(fn):
            if isinstance(child, ast.Call):
                source = call_source(child)
                if source == "close_foreign_sockets" or source.endswith(
                    ".close_foreign_sockets"
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# RPR006: exception hygiene
# ----------------------------------------------------------------------

BROAD_TYPES = ("Exception", "BaseException")


@register
class ExceptionHygieneRule(Rule):
    """Broad handlers must not swallow failures silently.

    A bare ``except:`` or ``except Exception/BaseException`` handler
    must re-raise, reference :class:`repro.errors.FailureDiagnosis`, or
    capture the traceback (``traceback.format_exc``/``print_exc``).
    Handlers that do none of those turn crash evidence into silence —
    exactly what the robustness work (PR 4/7) exists to prevent.
    """

    code = "RPR006"
    name = "exception-hygiene"
    severity = ERROR
    rationale = (
        "The failure-diagnosis pipeline needs every broad handler to "
        "either propagate or record; a swallowing handler hides the "
        "one traceback that would explain a wedged soak."
    )

    def check(self, src: SourceFile, options: Dict[str, object]) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or self._is_broad(node.type)
            if not broad:
                continue
            if self._has_escape(node):
                continue
            what = "bare except:" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            yield _finding(
                self,
                src,
                node,
                f"{what} swallows the failure: re-raise, attach a "
                "FailureDiagnosis, or capture traceback.format_exc()",
            )

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names: List[str] = []
        if isinstance(type_node, ast.Tuple):
            names = [ast.unparse(e) for e in type_node.elts]
        else:
            names = [ast.unparse(type_node)]
        return any(name in BROAD_TYPES for name in names)

    @staticmethod
    def _has_escape(node: ast.ExceptHandler) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Name) and child.id == "FailureDiagnosis":
                return True
            if isinstance(child, ast.Attribute) and child.attr == "FailureDiagnosis":
                return True
            if isinstance(child, ast.Call):
                source = call_source(child)
                if source.endswith("format_exc") or source.endswith("print_exc"):
                    return True
        return False


__all__ = [
    "GuardThreadingRule",
    "ClockHygieneRule",
    "DeterminismRule",
    "DurabilityRule",
    "ForkAsyncSafetyRule",
    "ExceptionHygieneRule",
    "GUARD_METHODS",
    "WARNING",
]
