"""Analysis driver: collect sources, run rules, apply suppressions.

Separated from the CLI so tests (and future tooling) can run the
analyzer programmatically on synthetic trees.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional

from .config import LintConfig
from .framework import (
    Finding,
    ProjectRule,
    SourceFile,
    all_rules,
    iter_source_files,
)

# Rule modules register themselves on import.
from . import rules as _rules  # noqa: F401
from . import faultsites as _faultsites  # noqa: F401


class AnalysisError(Exception):
    """A file failed to parse (reported as a usage-level failure)."""


def load_sources(paths: Iterable[str]) -> List[SourceFile]:
    sources: List[SourceFile] = []
    for path in iter_source_files(paths):
        try:
            sources.append(SourceFile(path))
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    return sources


def analyze_sources(
    sources: List[SourceFile], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Run every enabled rule over ``sources``; suppressions applied."""
    config = config or LintConfig()
    findings: List[Finding] = []
    for rule_cls in all_rules():
        if not config.enabled(rule_cls.code):
            continue
        rule = rule_cls()
        options = config.rule_options(rule_cls.code)
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(sources, options):
                src = next((s for s in sources if s.rel == finding.path), None)
                if src is None or not src.is_suppressed(finding):
                    findings.append(finding)
            continue
        for src in sources:
            if not rule.applies_to(src, options):
                continue
            for finding in rule.check(src, options):
                if not src.is_suppressed(finding):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_paths(
    paths: Iterable[str], config: Optional[LintConfig] = None
) -> List[Finding]:
    return analyze_sources(load_sources(paths), config)
