"""``[tool.hqs-lint]`` configuration loading.

Python 3.11+ parses ``pyproject.toml`` with :mod:`tomllib`.  On the
3.9/3.10 CI legs a small fallback parser extracts just the
``tool.hqs-lint*`` tables — it understands the TOML subset this repo's
pyproject actually uses (string/bool/int scalars and possibly-multiline
string arrays) and silently skips anything else, which is safe because
only ``tool.hqs-lint`` keys are consumed.
"""

from __future__ import annotations

import copy
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - depends on interpreter version
    tomllib = None

#: Built-in defaults; pyproject values are merged over these.
DEFAULTS: Dict[str, Any] = {
    "paths": ["src"],
    "baseline": "lint-baseline.json",
    "select": [],
    "ignore": [],
    "rpr001": {
        "packages": ["repro.core", "repro.aig", "repro.sat", "repro.qbf"],
        "allow": [],
    },
    "rpr002": {"allow-modules": []},
    "rpr003": {"allow-modules": []},
    "rpr004": {
        "packages": ["repro.service", "repro.experiments"],
        "allow-modules": [],
    },
    "rpr005": {
        "async-modules": ["repro.service.server"],
        "known-blocking": [],
        "fork-modules": ["repro.service.pool", "repro.experiments.parallel", "repro.proc"],
    },
    "rpr006": {},
    "rpr007": {"sites-module": "repro.faults"},
}


class LintConfig:
    def __init__(self, raw: Optional[Dict[str, Any]] = None):
        # Deep copy: DEFAULTS holds nested lists (and a plain string)
        # that per-instance merges must never alias or mangle.
        self.raw: Dict[str, Any] = copy.deepcopy(DEFAULTS)
        for key, value in (raw or {}).items():
            if isinstance(value, dict) and isinstance(self.raw.get(key), dict):
                self.raw[key].update(value)
            else:
                self.raw[key] = value

    @property
    def paths(self) -> List[str]:
        return list(self.raw.get("paths", []))

    @property
    def baseline(self) -> str:
        return str(self.raw.get("baseline", "lint-baseline.json"))

    @property
    def select(self) -> List[str]:
        return [c.upper() for c in self.raw.get("select", [])]

    @property
    def ignore(self) -> List[str]:
        return [c.upper() for c in self.raw.get("ignore", [])]

    def rule_options(self, code: str) -> Dict[str, Any]:
        options = self.raw.get(code.lower(), {})
        return options if isinstance(options, dict) else {}

    def enabled(self, code: str) -> bool:
        code = code.upper()
        if self.select and code not in self.select:
            return False
        return code not in self.ignore


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.hqs-lint]`` from ``pyproject``, defaulting everything
    when the file or table is absent."""
    if pyproject is None:
        pyproject = Path("pyproject.toml")
    if not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
        tool = data.get("tool", {}).get("hqs-lint", {})
    else:
        tool = _parse_hqs_lint_subset(text)
    return LintConfig(_flatten(tool))


def _flatten(tool: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize ``[tool.hqs-lint.rprNNN]`` sub-tables onto lowercase keys."""
    out: Dict[str, Any] = {}
    for key, value in tool.items():
        out[key.lower() if isinstance(value, dict) else key] = value
    return out


# ----------------------------------------------------------------------
# minimal TOML-subset fallback (pre-3.11 interpreters)
# ----------------------------------------------------------------------

_SECTION_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_\-\.\"']+)\s*=\s*(.*)$")


def _parse_hqs_lint_subset(text: str) -> Dict[str, Any]:
    result: Dict[str, Any] = {}
    section: Optional[List[str]] = None
    pending_key: Optional[str] = None
    pending_value = ""

    def target_table() -> Optional[Dict[str, Any]]:
        if section is None or section[:2] != ["tool", "hqs-lint"]:
            return None
        table = result
        for part in section[2:]:
            table = table.setdefault(part, {})
        return table

    def finish_pending() -> None:
        nonlocal pending_key, pending_value
        if pending_key is None:
            return
        table = target_table()
        if table is not None:
            value = _parse_value(pending_value)
            if value is not _UNPARSED:
                table[pending_key] = value
        pending_key, pending_value = None, ""

    for raw_line in text.split("\n"):
        line = _strip_comment(raw_line)
        if pending_key is not None:
            pending_value += " " + line.strip()
            if _array_closed(pending_value):
                finish_pending()
            continue
        stripped = line.strip()
        if not stripped:
            continue
        section_match = _SECTION_RE.match(stripped)
        if section_match:
            section = [p.strip().strip("\"'") for p in section_match.group(1).split(".")]
            continue
        key_match = _KEY_RE.match(stripped)
        if not key_match:
            continue
        key = key_match.group(1).strip().strip("\"'")
        value_text = key_match.group(2).strip()
        if value_text.startswith("[") and not _array_closed(value_text):
            pending_key, pending_value = key, value_text
            continue
        table = target_table()
        if table is not None:
            value = _parse_value(value_text)
            if value is not _UNPARSED:
                table[key] = value
    finish_pending()
    return result


_UNPARSED = object()


def _strip_comment(line: str) -> str:
    out: List[str] = []
    in_string: Optional[str] = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out)


def _array_closed(text: str) -> bool:
    depth = 0
    in_string: Optional[str] = None
    for ch in text:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth <= 0


def _parse_value(text: str) -> Any:
    text = text.strip()
    if not text:
        return _UNPARSED
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        items = [item for item in _split_array(inner) if item]
        values = []
        for item in items:
            value = _parse_value(item)
            if value is _UNPARSED:
                return _UNPARSED
            values.append(value)
        return values
    if (text.startswith('"') and text.endswith('"') and len(text) >= 2) or (
        text.startswith("'") and text.endswith("'") and len(text) >= 2
    ):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        return _UNPARSED


def _split_array(inner: str) -> List[str]:
    parts: List[str] = []
    buf: List[str] = []
    depth = 0
    in_string: Optional[str] = None
    for ch in inner:
        if in_string:
            buf.append(ch)
            if ch == in_string:
                in_string = None
            continue
        if ch in ("'", '"'):
            in_string = ch
            buf.append(ch)
        elif ch == "[":
            depth += 1
            buf.append(ch)
        elif ch == "]":
            depth -= 1
            buf.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf).strip())
    return parts
