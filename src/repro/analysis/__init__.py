"""``repro.analysis`` — the ``hqs-lint`` static invariant analyzer.

An independent AST pass over the repo's own source enforcing the
cross-cutting conventions the solver stack depends on: ResourceGuard
threading (RPR001), monotonic clocks (RPR002), seeded randomness
(RPR003), durable CRC-framed writes (RPR004), fork/async discipline
(RPR005), exception hygiene (RPR006) and bidirectional fault-site
coverage (RPR007).  See ``docs/lint.md`` for the catalog.
"""

from .baseline import load_baseline, split_by_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import AnalysisError, analyze_paths, analyze_sources, load_sources
from .framework import Finding, ProjectRule, Rule, SourceFile, all_rules

__all__ = [
    "AnalysisError",
    "Finding",
    "LintConfig",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "analyze_paths",
    "analyze_sources",
    "load_baseline",
    "load_config",
    "load_sources",
    "split_by_baseline",
    "write_baseline",
]
