"""RPR007: bidirectional fault-site coverage.

``repro.faults`` declares the injection points (the ``SITES`` dict);
the rest of the tree hooks them via ``faults.fire("site")`` calls or
``fault_site="site"`` keyword arguments (the durable layer's spelling).
A declared-but-never-hooked site means the chaos soak silently skips a
failure mode; a hook naming an undeclared site raises at runtime only
when a plan actually schedules it.  Both directions fail the lint run.

Only *literal* site names participate: ``faults.fire(variable)`` (the
dispatch inside the durable layer) is invisible to the static pass by
design — the literal ``fault_site=`` at the call site is what gets
cross-checked.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from .framework import (
    ERROR,
    Finding,
    ProjectRule,
    SourceFile,
    call_source,
    literal_str,
    register,
)


@register
class FaultSiteCoverageRule(ProjectRule):
    code = "RPR007"
    name = "fault-site-coverage"
    severity = ERROR
    rationale = (
        "The chaos soak only exercises the failure modes whose sites are "
        "actually fired; drift between the SITES declaration and the "
        "hooks silently narrows coverage."
    )

    def check_project(
        self, sources: List[SourceFile], options: Dict[str, object]
    ) -> Iterator[Finding]:
        sites_module = str(options.get("sites-module") or "repro.faults")
        declaring = next((s for s in sources if s.module == sites_module), None)
        if declaring is None:
            # The sites module is outside the scanned paths; nothing to
            # cross-check against, so stay silent rather than guess.
            return
        declared, decl_line = self._declared_sites(declaring)
        if decl_line == 0:
            yield Finding(
                code=self.code,
                path=declaring.rel,
                line=1,
                message=f"no SITES dict literal found in {sites_module}",
                severity=self.severity,
            )
            return

        invocations: List[Tuple[SourceFile, int, str]] = []
        for src in sources:
            if src.module == sites_module:
                continue
            invocations.extend(self._invocations(src))

        invoked: Set[str] = {site for _, _, site in invocations}

        for site in sorted(declared - invoked):
            yield Finding(
                code=self.code,
                path=declaring.rel,
                line=decl_line,
                message=(
                    f"declared fault site '{site}' is never fired: hook it or "
                    "drop it from SITES"
                ),
                severity=self.severity,
                symbol="SITES",
            )
        for src, line, site in invocations:
            if site not in declared:
                yield Finding(
                    code=self.code,
                    path=src.rel,
                    line=line,
                    message=(
                        f"fault site '{site}' is fired but not declared in "
                        f"{sites_module}.SITES"
                    ),
                    severity=self.severity,
                )

    @staticmethod
    def _declared_sites(src: SourceFile) -> Tuple[Set[str], int]:
        for node in ast.walk(src.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "SITES":
                    if isinstance(value, ast.Dict):
                        sites = set()
                        for key in value.keys:
                            name = literal_str(key) if key is not None else None
                            if name is not None:
                                sites.add(name)
                        return sites, node.lineno
        return set(), 0

    @staticmethod
    def _invocations(src: SourceFile) -> List[Tuple[SourceFile, int, str]]:
        found: List[Tuple[SourceFile, int, str]] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            source = call_source(node)
            if source == "faults.fire" or source.endswith(".faults.fire"):
                if node.args:
                    site = literal_str(node.args[0])
                    if site is not None:
                        found.append((src, node.lineno, site))
            for keyword in node.keywords:
                if keyword.arg == "fault_site":
                    site = literal_str(keyword.value)
                    if site is not None:
                        found.append((src, keyword.value.lineno, site))
        return found
