"""Command-line interface: solve DQDIMACS files with HQS or the baselines.

Usage::

    hqs problem.dqdimacs                  # solve with HQS
    hqs --solver idq problem.dqdimacs     # solve with the iDQ baseline
    hqs --timeout 60 --stats problem.dqdimacs

Exit codes follow the (D)QBF-solver convention: 10 = SAT, 20 = UNSAT,
0 = inconclusive (timeout/memout).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baselines.expansion import solve_expansion
from .baselines.idq import IdqSolver
from .core.hqs import HqsOptions, HqsSolver
from .core.result import Limits, SAT, UNSAT
from .formula.dqdimacs import load_dqdimacs

EXIT_SAT = 10
EXIT_UNSAT = 20
EXIT_UNKNOWN = 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs",
        description="HQS: solving DQBF through quantifier elimination (DATE'15 reproduction)",
    )
    parser.add_argument("file", help="DQDIMACS input file")
    parser.add_argument(
        "--solver",
        choices=("hqs", "idq", "expansion"),
        default="hqs",
        help="solver backend (default: hqs)",
    )
    parser.add_argument("--timeout", type=float, default=None, help="time limit in seconds")
    parser.add_argument(
        "--node-limit", type=int, default=None, help="AIG node budget (memout stand-in)"
    )
    parser.add_argument("--stats", action="store_true", help="print solver statistics")
    parser.add_argument(
        "--no-preprocessing", action="store_true", help="disable CNF preprocessing"
    )
    parser.add_argument(
        "--no-unit-pure", action="store_true", help="disable unit/pure detection"
    )
    parser.add_argument(
        "--no-maxsat", action="store_true", help="disable MaxSAT elimination-set selection"
    )
    parser.add_argument(
        "--no-qbf", action="store_true", help="disable the QBF back-end (expand everything)"
    )
    parser.add_argument(
        "--sat-probe",
        action="store_true",
        help="refute via one SAT call on the all-zero branch first (Sec. IV suggestion)",
    )
    parser.add_argument(
        "--certificate",
        action="store_true",
        help="on SAT, extract and verify Skolem functions (instantiation-based)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print a trace of the solving pipeline (HQS only)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print dependency-structure metrics before solving",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    formula = load_dqdimacs(args.file)
    limits = Limits(time_limit=args.timeout, node_limit=args.node_limit)

    if args.analyze:
        from .core.depgraph import analyze_prefix

        for key, value in analyze_prefix(formula.prefix).as_dict().items():
            print(f"c {key} = {value}")

    if args.solver == "idq":
        result = IdqSolver().solve(formula, limits)
    elif args.solver == "expansion":
        result = solve_expansion(formula, limits)
    else:
        options = HqsOptions(
            use_preprocessing=not args.no_preprocessing,
            use_unit_pure=not args.no_unit_pure,
            use_maxsat_selection=not args.no_maxsat,
            use_qbf_backend=not args.no_qbf,
            use_sat_probe=args.sat_probe,
        )
        solver = HqsSolver(options, trace=args.verbose)
        result = solver.solve(formula, limits)
        for line in solver.trace:
            print(f"c {line}")

    print(f"s cnf {result.status} ({result.runtime:.3f}s)")
    if args.certificate and result.status == SAT:
        from .core.skolem import extract_certificate

        cert_result, tables = extract_certificate(load_dqdimacs(args.file), limits)
        if tables is not None:
            print("c Skolem certificate (verified):")
            for y in sorted(tables):
                table = tables[y]
                rows = sum(1 for v in table.as_full_table().values() if v)
                print(f"c   y{y}({','.join(map(str, table.deps))}): {rows} true rows")
        else:
            print(f"c certificate extraction inconclusive ({cert_result.status})")
    if args.stats:
        for key in sorted(result.stats):
            print(f"c {key} = {result.stats[key]}")
    if result.status == SAT:
        return EXIT_SAT
    if result.status == UNSAT:
        return EXIT_UNSAT
    return EXIT_UNKNOWN


if __name__ == "__main__":
    sys.exit(main())
