"""Command-line interface: solve DQDIMACS files with HQS or the baselines.

Usage::

    hqs problem.dqdimacs                  # solve with HQS
    hqs --solver idq problem.dqdimacs     # solve with the iDQ baseline
    hqs --timeout 60 --stats problem.dqdimacs

Exit codes follow the (D)QBF-solver convention: 10 = SAT, 20 = UNSAT,
0 = inconclusive.  Resource-limited runs exit with the coreutils
``timeout(1)`` convention instead — 124 when the wall clock ran out,
125 when the node (memory) budget did — and print a machine-readable
``c failure`` line naming the stage, resource and progress, never a
traceback.

A second entry point, ``hqs-bench`` (:func:`bench_main`), drives the
benchmark suite through the fault-tolerant parallel runner::

    hqs-bench --jobs 4 --log results.jsonl           # parallel sweep
    hqs-bench --jobs 4 --log results.jsonl --resume  # pick up where it died
    hqs-bench --portfolio --solvers HQS,HQS_PROBE    # race configurations
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baselines.expansion import solve_expansion
from .baselines.idq import IdqSolver
from .core.hqs import HqsOptions, HqsSolver
from .core.result import Limits, SAT, UNSAT
from .errors import ResourceExhausted
from .formula.dqdimacs import load_dqdimacs

EXIT_SAT = 10
EXIT_UNSAT = 20
EXIT_UNKNOWN = 0
#: coreutils ``timeout(1)`` conventions for resource-limited runs.
EXIT_TIMEOUT = 124
EXIT_NODELIMIT = 125


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs",
        description="HQS: solving DQBF through quantifier elimination (DATE'15 reproduction)",
    )
    parser.add_argument("file", help="DQDIMACS input file")
    parser.add_argument(
        "--solver",
        choices=("hqs", "idq", "expansion"),
        default="hqs",
        help="solver backend (default: hqs)",
    )
    parser.add_argument("--timeout", type=float, default=None, help="time limit in seconds")
    parser.add_argument(
        "--node-limit", type=int, default=None, help="AIG node budget (memout stand-in)"
    )
    parser.add_argument("--stats", action="store_true", help="print solver statistics")
    parser.add_argument(
        "--no-preprocessing", action="store_true", help="disable CNF preprocessing"
    )
    parser.add_argument(
        "--no-unit-pure", action="store_true", help="disable unit/pure detection"
    )
    parser.add_argument(
        "--no-maxsat", action="store_true", help="disable MaxSAT elimination-set selection"
    )
    parser.add_argument(
        "--no-qbf", action="store_true", help="disable the QBF back-end (expand everything)"
    )
    parser.add_argument(
        "--sat-probe",
        action="store_true",
        help="refute via one SAT call on the all-zero branch first (Sec. IV suggestion)",
    )
    parser.add_argument(
        "--certificate",
        action="store_true",
        help="on SAT, extract and verify Skolem functions (instantiation-based)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print a trace of the solving pipeline (HQS only)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print dependency-structure metrics before solving",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "anytime checkpoint file (HQS only): resume from it when "
            "present, rewrite it after each eliminated universal, remove "
            "it on completion"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    formula = load_dqdimacs(args.file)
    limits = Limits(time_limit=args.timeout, node_limit=args.node_limit)

    if args.analyze:
        from .core.depgraph import analyze_prefix

        for key, value in analyze_prefix(formula.prefix).as_dict().items():
            print(f"c {key} = {value}")

    try:
        if args.solver == "idq":
            result = IdqSolver().solve(formula, limits)
        elif args.solver == "expansion":
            result = solve_expansion(formula, limits)
        else:
            options = HqsOptions(
                use_preprocessing=not args.no_preprocessing,
                use_unit_pure=not args.no_unit_pure,
                use_maxsat_selection=not args.no_maxsat,
                use_qbf_backend=not args.no_qbf,
                use_sat_probe=args.sat_probe,
            )
            solver = HqsSolver(options, trace=args.verbose)
            result = solver.solve(formula, limits, checkpoint=args.checkpoint)
            for line in solver.trace:
                print(f"c {line}")
    except ResourceExhausted as exc:
        # Solvers funnel exhaustion into UNKNOWN results themselves;
        # this is the belt-and-braces path so no resource limit ever
        # surfaces as a traceback.
        from .core.result import UNKNOWN, exhausted_result
        from .core.guard import ResourceGuard

        result = exhausted_result(exc, ResourceGuard.ensure(limits), 0.0)
        assert result.status == UNKNOWN

    print(f"s cnf {result.status} ({result.runtime:.3f}s)")
    if result.failure is not None:
        failure = result.failure
        print(
            f"c failure stage={failure.stage} resource={failure.resource} "
            f"elapsed={failure.elapsed:.3f}"
        )
        for key in sorted(failure.progress):
            print(f"c failure progress {key} = {failure.progress[key]}")
    if args.certificate and result.status == SAT:
        from .core.skolem import extract_certificate

        # The main solve already consumed part of the budget; hand the
        # extraction a child budget so --timeout bounds the *total* run
        # (the extraction solver restarts the clock on the Limits it gets).
        cert_result, tables = extract_certificate(load_dqdimacs(args.file), limits.child())
        if tables is not None:
            print("c Skolem certificate (verified):")
            for y in sorted(tables):
                table = tables[y]
                rows = sum(1 for v in table.as_full_table().values() if v)
                print(f"c   y{y}({','.join(map(str, table.deps))}): {rows} true rows")
        else:
            print(f"c certificate extraction inconclusive ({cert_result.status})")
    if args.stats:
        for key in sorted(result.stats):
            print(f"c {key} = {result.stats[key]}")
    if result.status == SAT:
        return EXIT_SAT
    if result.status == UNSAT:
        return EXIT_UNSAT
    if result.failure is not None:
        if result.failure.resource == "nodes":
            return EXIT_NODELIMIT
        return EXIT_TIMEOUT
    # Legacy statuses from solvers not yet on the guard.
    if result.status == "TIMEOUT":
        return EXIT_TIMEOUT
    if result.status == "MEMOUT":
        return EXIT_NODELIMIT
    return EXIT_UNKNOWN


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hqs-bench",
        description=(
            "Run the scaled PEC benchmark suite through the fault-tolerant "
            "parallel runner (hard timeouts, crash containment, JSONL resume)"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_BENCH_JOBS or 1; 1 = serial)",
    )
    parser.add_argument("--log", default=None, help="JSONL result log to append to")
    parser.add_argument(
        "--resume", action="store_true",
        help="skip (instance, solver) pairs already recorded in --log",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="race all --solvers on each instance, cancel losers on first answer",
    )
    parser.add_argument(
        "--solvers", default="HQS,IDQ",
        help="comma-separated solver names (default: HQS,IDQ)",
    )
    parser.add_argument(
        "--families", default=None,
        help="comma-separated family names (default: all paper families)",
    )
    parser.add_argument("--scale", type=float, default=None, help="circuit size multiplier")
    parser.add_argument("--count", type=int, default=None, help="instances per family")
    parser.add_argument("--timeout", type=float, default=None, help="per-instance seconds")
    parser.add_argument("--node-limit", type=int, default=None, help="AIG node budget")
    parser.add_argument("--seed", type=int, default=None, help="suite generation seed")
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help=(
            "directory for per-(instance, solver) anytime checkpoints; "
            "killed or crashed workers resume from their last completed "
            "elimination (default: REPRO_BENCH_CHECKPOINT)"
        ),
    )
    parser.add_argument(
        "--table", action="store_true", help="print the Table I aggregation at the end"
    )
    return parser


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``hqs-bench`` console script."""
    from .experiments.runner import BenchConfig, run_suite
    from .pec.families import FAMILIES

    args = build_bench_parser().parse_args(argv)
    config = BenchConfig(
        scale=args.scale,
        count=args.count,
        timeout=args.timeout,
        node_limit=args.node_limit,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
    )
    if args.resume and not args.log:
        print("error: --resume requires --log", file=sys.stderr)
        return 2
    solvers = tuple(s for s in args.solvers.split(",") if s)
    families = (
        tuple(f for f in args.families.split(",") if f)
        if args.families
        else FAMILIES
    )
    print(f"c suite {config!r}")
    print(f"c solvers {','.join(solvers)} families {','.join(families)}")
    records = run_suite(
        config,
        solvers=solvers,
        families=families,
        log_path=args.log,
        resume=args.resume,
        portfolio=args.portfolio,
    )
    by_status: dict = {}
    for record in records:
        by_status[record.result.status] = by_status.get(record.result.status, 0) + 1
    summary = " ".join(f"{status}={count}" for status, count in sorted(by_status.items()))
    print(f"c records {len(records)} ({summary})")
    if args.table:
        from .experiments.table1 import build_table, format_table

        print(format_table(build_table(records, solvers=sorted({r.solver for r in records}))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
