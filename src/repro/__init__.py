"""repro — a reproduction of "Solving DQBF Through Quantifier Elimination".

(Gitina, Wimmer, Reimer, Sauer, Scholl, Becker — DATE 2015.)

The package provides:

* :mod:`repro.core` — **HQS**, the elimination-based DQBF solver with
  dependency-graph analysis, MaxSAT-selected minimum elimination sets
  and AIG-level unit/pure detection;
* :mod:`repro.formula` — DQBF/QBF/CNF containers and DQDIMACS I/O;
* :mod:`repro.aig` — the And-Inverter-Graph engine (cofactor, compose,
  quantification, FRAIG sweeping);
* :mod:`repro.sat` / :mod:`repro.maxsat` — CDCL SAT and partial MaxSAT;
* :mod:`repro.qbf` — the AIG-based QBF back-end plus a QDPLL oracle;
* :mod:`repro.baselines` — iDQ-style instantiation and [10]-style
  expansion baselines;
* :mod:`repro.pec` — partial equivalence checking of incomplete
  circuits: netlists, the PEC->DQBF encoding and benchmark families;
* :mod:`repro.experiments` — harnesses regenerating Table I, Fig. 4 and
  the in-text statistics.

Quickstart::

    from repro import Dqbf, solve_dqbf
    formula = Dqbf.build(
        universals=[1, 2],
        existentials=[(3, [1]), (4, [2])],
        clauses=[[-3, 1], [3, -1], [-4, 2], [4, -2]],
    )
    print(solve_dqbf(formula).status)   # "SAT"
"""

from .core.hqs import HqsOptions, HqsSolver, solve_dqbf
from .core.result import Limits, SolveResult
from .formula.dqbf import Dqbf
from .formula.dqdimacs import load_dqdimacs, parse_dqdimacs, save_dqdimacs, write_dqdimacs
from .formula.qbf import Qbf

__version__ = "1.0.0"

__all__ = [
    "HqsOptions",
    "HqsSolver",
    "solve_dqbf",
    "Limits",
    "SolveResult",
    "Dqbf",
    "Qbf",
    "load_dqdimacs",
    "parse_dqdimacs",
    "save_dqdimacs",
    "write_dqdimacs",
    "__version__",
]
