"""Partial MaxSAT substrate used for the minimum-elimination-set problem."""

from .solver import MaxSatResult, PartialMaxSatSolver, solve_partial_maxsat
from .totalizer import Totalizer, encode_at_most_k

__all__ = [
    "MaxSatResult",
    "PartialMaxSatSolver",
    "solve_partial_maxsat",
    "Totalizer",
    "encode_at_most_k",
]
