"""Totalizer cardinality encoding (Bailleux & Boufkhad).

Given input literals ``l_1..l_n`` the totalizer introduces output
variables ``o_1..o_n`` such that in every model ``o_i`` is true whenever
at least ``i`` inputs are true.  Upper bounds ``sum <= k`` are then
enforced by asserting (or assuming) ``¬o_{k+1}``, which is exactly how
the linear-search MaxSAT solver uses it.
"""

from __future__ import annotations

from typing import Callable, List, Sequence


class Totalizer:
    """Totalizer tree over a list of input literals.

    ``fresh_var`` must allocate a new variable on each call (typically
    ``CdclSolver.new_var``).  Clauses are emitted through ``add_clause``.
    """

    def __init__(
        self,
        inputs: Sequence[int],
        fresh_var: Callable[[], int],
        add_clause: Callable[[List[int]], object],
    ):
        self.inputs = list(inputs)
        self._fresh_var = fresh_var
        self._add_clause = add_clause
        self.outputs: List[int] = self._build(self.inputs)

    def _build(self, lits: List[int]) -> List[int]:
        if len(lits) <= 1:
            return list(lits)
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: List[int], right: List[int]) -> List[int]:
        total = len(left) + len(right)
        outputs = [self._fresh_var() for _ in range(total)]
        # sum(left) >= i and sum(right) >= j  implies  sum >= i+j
        for i in range(len(left) + 1):
            for j in range(len(right) + 1):
                if i + j == 0:
                    continue
                clause: List[int] = []
                if i > 0:
                    clause.append(-left[i - 1])
                if j > 0:
                    clause.append(-right[j - 1])
                clause.append(outputs[i + j - 1])
                self._add_clause(clause)
        return outputs

    def at_most_assumption(self, bound: int) -> List[int]:
        """Literals to assume so that at most ``bound`` inputs are true."""
        if bound >= len(self.outputs):
            return []
        return [-self.outputs[bound]]

    def at_most_clauses(self, bound: int) -> List[List[int]]:
        """Clauses that permanently enforce ``sum <= bound``."""
        if bound >= len(self.outputs):
            return []
        return [[-self.outputs[bound]]]


def encode_at_most_k(
    lits: Sequence[int],
    k: int,
    fresh_var: Callable[[], int],
    add_clause: Callable[[List[int]], object],
) -> None:
    """Convenience helper: permanently assert ``sum(lits) <= k``."""
    totalizer = Totalizer(lits, fresh_var, add_clause)
    for clause in totalizer.at_most_clauses(k):
        add_clause(clause)
