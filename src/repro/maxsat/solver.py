"""Partial MaxSAT by assumption-based linear search (the antom stand-in).

The instance consists of *hard* clauses, which must hold, and unit-weight
*soft* clauses, of which as many as possible should hold.  The solver
relaxes each soft clause with a fresh variable, builds a totalizer over
the relaxation variables and searches the optimum from below: assume
``#violated <= k`` for k = 0, 1, 2, ... until the SAT solver answers SAT.

This search direction is ideal for the HQS use case (Section III-A of
the paper): the optimum — the number of universal variables that must be
eliminated — is usually tiny, so the first few iterations settle it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..sat.solver import SAT, UNSAT, CdclSolver
from .totalizer import Totalizer


class MaxSatResult:
    """Optimum and model of a partial MaxSAT call."""

    def __init__(self, satisfiable: bool, cost: int, model: Dict[int, bool]):
        self.satisfiable = satisfiable
        self.cost = cost
        self.model = model

    def __repr__(self) -> str:
        status = "SAT" if self.satisfiable else "UNSAT"
        return f"MaxSatResult({status}, cost={self.cost})"


class PartialMaxSatSolver:
    """Accumulate hard/soft clauses, then :meth:`solve`."""

    def __init__(self) -> None:
        self._hard: List[List[int]] = []
        self._soft: List[List[int]] = []
        self._max_var = 0

    def add_hard(self, clause: Iterable[int]) -> None:
        clause = list(clause)
        self._note_vars(clause)
        self._hard.append(clause)

    def add_soft(self, clause: Iterable[int]) -> None:
        clause = list(clause)
        if not clause:
            raise ValueError("soft clauses must be non-empty")
        self._note_vars(clause)
        self._soft.append(clause)

    def _note_vars(self, clause: Sequence[int]) -> None:
        for lit in clause:
            if abs(lit) > self._max_var:
                self._max_var = abs(lit)

    def solve(self) -> MaxSatResult:
        """Return the minimum number of violated soft clauses and a model."""
        solver = CdclSolver()
        solver.ensure_vars(self._max_var)
        for clause in self._hard:
            solver.add_clause(clause)

        if solver.solve() == UNSAT:
            return MaxSatResult(False, len(self._soft), {})

        if not self._soft:
            return MaxSatResult(True, 0, solver.model())

        relax: List[int] = []
        for clause in self._soft:
            r = solver.new_var()
            relax.append(r)
            solver.add_clause(list(clause) + [r])

        totalizer = Totalizer(relax, solver.new_var, solver.add_clause)
        for bound in range(len(self._soft) + 1):
            assumptions = totalizer.at_most_assumption(bound)
            if solver.solve(assumptions) == SAT:
                return MaxSatResult(True, bound, solver.model())
        raise AssertionError("hard clauses satisfiable but no bound admitted a model")


def solve_partial_maxsat(
    hard: Iterable[Iterable[int]], soft: Iterable[Iterable[int]]
) -> MaxSatResult:
    """One-shot convenience wrapper."""
    solver = PartialMaxSatSolver()
    for clause in hard:
        solver.add_hard(clause)
    for clause in soft:
        solver.add_soft(clause)
    return solver.solve()
