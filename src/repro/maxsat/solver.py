"""Partial MaxSAT by assumption-based linear search (the antom stand-in).

The instance consists of *hard* clauses, which must hold, and unit-weight
*soft* clauses, of which as many as possible should hold.  The solver
relaxes each soft clause with a fresh variable, builds a totalizer over
the relaxation variables and searches the optimum from below: assume
``#violated <= k`` for k = 0, 1, 2, ... until the SAT solver answers SAT.

This search direction is ideal for the HQS use case (Section III-A of
the paper): the optimum — the number of universal variables that must be
eliminated — is usually tiny, so the first few iterations settle it.
Two shortcuts avoid wasted encoding work on those easy optima: if the
model of the initial hard-clause solve already satisfies every soft
clause the answer is 0 with no relaxation at all, and bound 0 is checked
by directly assuming every relaxation variable false, so the totalizer
is only built once the optimum is known to be positive.

The linear search is warm-started by construction: one solver session
spans all bounds, so clauses learned refuting ``<= k`` carry into the
``<= k+1`` attempt.  An external solver (e.g. one owned by an
:class:`~repro.sat.incremental.AigSatSession`) can be injected to extend
that sharing across MaxSAT calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import StageBudgetExceeded
from ..sat.solver import SAT, UNSAT, CdclSolver
from .totalizer import Totalizer


class MaxSatResult:
    """Optimum and model of a partial MaxSAT call.

    Besides the classic ``(satisfiable, cost, model)`` triple the result
    reports the search effort: ``conflicts``/``decisions`` summed over
    every SAT call, ``bounds_tried`` in search order, and
    ``per_bound_conflicts`` mapping each tried bound to the conflicts
    its solve cost (the hard-clause feasibility check is bound ``-1``).
    ``totalizer_built`` records whether the search ever needed the
    cardinality encoding.
    """

    def __init__(
        self,
        satisfiable: bool,
        cost: int,
        model: Dict[int, bool],
        conflicts: int = 0,
        decisions: int = 0,
        per_bound_conflicts: Optional[Dict[int, int]] = None,
        totalizer_built: bool = False,
    ):
        self.satisfiable = satisfiable
        self.cost = cost
        self.model = model
        self.conflicts = conflicts
        self.decisions = decisions
        self.per_bound_conflicts = per_bound_conflicts or {}
        self.totalizer_built = totalizer_built

    @property
    def bounds_tried(self) -> List[int]:
        return sorted(self.per_bound_conflicts)

    def __repr__(self) -> str:
        status = "SAT" if self.satisfiable else "UNSAT"
        return (
            f"MaxSatResult({status}, cost={self.cost}, "
            f"conflicts={self.conflicts})"
        )


class PartialMaxSatSolver:
    """Accumulate hard/soft clauses, then :meth:`solve`.

    ``solver`` injects an existing :class:`CdclSolver` (it must not hold
    conflicting unit assumptions; its clause database and learned
    clauses are reused and extended).  Without one a private solver is
    created per :meth:`solve` call.
    """

    def __init__(self, solver: Optional[CdclSolver] = None) -> None:
        self._hard: List[List[int]] = []
        self._soft: List[List[int]] = []
        self._max_var = 0
        self._injected = solver

    def add_hard(self, clause: Iterable[int]) -> None:
        clause = list(clause)
        self._note_vars(clause)
        self._hard.append(clause)

    def add_soft(self, clause: Iterable[int]) -> None:
        clause = list(clause)
        if not clause:
            raise ValueError("soft clauses must be non-empty")
        self._note_vars(clause)
        self._soft.append(clause)

    def _note_vars(self, clause: Sequence[int]) -> None:
        for lit in clause:
            if abs(lit) > self._max_var:
                self._max_var = abs(lit)

    def solve(
        self,
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> MaxSatResult:
        """Return the minimum number of violated soft clauses and a model.

        ``conflict_limit`` bounds the *total* conflicts across every
        bound of the linear search and ``deadline`` (a
        ``time.monotonic`` timestamp) its wall clock; exhausting either
        raises :class:`~repro.errors.StageBudgetExceeded` so a caller
        with a degradation ladder (HQS elimination-set selection) can
        fall back to a cheaper heuristic instead of sinking the solve.
        """
        solver = self._injected if self._injected is not None else CdclSolver()
        solver.ensure_vars(self._max_var)
        for clause in self._hard:
            solver.add_clause(clause)

        per_bound: Dict[int, int] = {}
        totals = {"conflicts": 0, "decisions": 0}

        def timed_solve(bound: int, assumptions: Sequence[int] = ()) -> str:
            remaining_conflicts = None
            if conflict_limit is not None:
                remaining_conflicts = conflict_limit - totals["conflicts"]
                if remaining_conflicts <= 0:
                    raise StageBudgetExceeded("maxsat conflict budget exhausted")
            before = solver.statistics
            status = solver.solve(
                assumptions,
                conflict_limit=remaining_conflicts,
                deadline=deadline,
            )
            after = solver.statistics
            spent = after["conflicts"] - before["conflicts"]
            per_bound[bound] = per_bound.get(bound, 0) + spent
            totals["conflicts"] += spent
            totals["decisions"] += after["decisions"] - before["decisions"]
            if status not in (SAT, UNSAT):
                raise StageBudgetExceeded("maxsat search budget exhausted")
            return status

        def result(satisfiable: bool, cost: int, model: Dict[int, bool],
                   totalizer_built: bool) -> MaxSatResult:
            return MaxSatResult(
                satisfiable,
                cost,
                model,
                conflicts=totals["conflicts"],
                decisions=totals["decisions"],
                per_bound_conflicts=dict(per_bound),
                totalizer_built=totalizer_built,
            )

        # Bound -1: plain feasibility of the hard clauses.
        if timed_solve(-1) == UNSAT:
            return result(False, len(self._soft), {}, False)
        model = solver.model()

        if not self._soft:
            return result(True, 0, model, False)

        def violated(assignment: Dict[int, bool]) -> int:
            return sum(
                0
                if any((lit > 0) == assignment.get(abs(lit), False) for lit in c)
                else 1
                for c in self._soft
            )

        # Shortcut 1: the feasibility model may already be optimal.
        if violated(model) == 0:
            return result(True, 0, model, False)

        relax: List[int] = []
        for clause in self._soft:
            r = solver.new_var()
            relax.append(r)
            solver.add_clause(list(clause) + [r])

        # Shortcut 2: bound 0 needs no cardinality encoding — assume
        # every relaxation variable false directly; the relaxed solver's
        # model is final if it succeeds.
        if timed_solve(0, [-r for r in relax]) == SAT:
            return result(True, 0, solver.model(), False)

        totalizer = Totalizer(relax, solver.new_var, solver.add_clause)
        for bound in range(1, len(self._soft) + 1):
            assumptions = totalizer.at_most_assumption(bound)
            if timed_solve(bound, assumptions) == SAT:
                return result(True, bound, solver.model(), True)
        raise AssertionError("hard clauses satisfiable but no bound admitted a model")


def solve_partial_maxsat(
    hard: Iterable[Iterable[int]],
    soft: Iterable[Iterable[int]],
    solver: Optional[CdclSolver] = None,
) -> MaxSatResult:
    """One-shot convenience wrapper."""
    maxsat = PartialMaxSatSolver(solver=solver)
    for clause in hard:
        maxsat.add_hard(clause)
    for clause in soft:
        maxsat.add_soft(clause)
    return maxsat.solve()
