"""Reduced ordered binary decision diagrams (ROBDDs).

The paper motivates AIGs *against* BDDs (Section II-C: AIGs are not
canonical, "allowing them to be potentially more compact than BDDs").
This package provides the BDD side of that comparison: a classic
unique-table/ITE implementation with complement edges omitted for
clarity (nodes are canonical by (var, low, high) hashing).

Used by the representation-comparison benchmark and by the BDD-backed
elimination baseline in :mod:`repro.bdd.solver`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class Bdd:
    """A BDD manager with a fixed-on-first-use variable order.

    Functions are node indices; ``0`` is FALSE and ``1`` is TRUE.
    Variables are external positive integers; their order is the order
    of first registration (override with :meth:`declare`).
    """

    FALSE = 0
    TRUE = 1

    #: hard ceiling on manager size even when callers set no budget —
    #: BDDs blow up exponentially and a runaway ``ite`` would otherwise
    #: exhaust machine memory before any caller-level check runs
    DEFAULT_NODE_LIMIT = 2_000_000

    def __init__(self, node_limit: Optional[int] = None) -> None:
        # node storage; entries 0/1 are the terminals
        self._var: List[int] = [0, 0]       # variable *level* per node
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._level_of: Dict[int, int] = {}  # external var -> level
        self._var_of_level: List[int] = []
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self.node_limit = node_limit if node_limit is not None else self.DEFAULT_NODE_LIMIT

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def declare(self, *variables: int) -> None:
        """Fix variable order by declaring variables up front."""
        for var in variables:
            if var <= 0:
                raise ValueError("variables must be positive integers")
            if var not in self._level_of:
                self._level_of[var] = len(self._var_of_level)
                self._var_of_level.append(var)

    def var(self, variable: int) -> int:
        """The function of a single variable."""
        self.declare(variable)
        level = self._level_of[variable]
        return self._make(level, self.FALSE, self.TRUE)

    def nvar(self, variable: int) -> int:
        """The function NOT(variable)."""
        self.declare(variable)
        level = self._level_of[variable]
        return self._make(level, self.TRUE, self.FALSE)

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self.node_limit is not None and len(self._var) >= self.node_limit:
                from ..errors import NodeLimitExceeded

                raise NodeLimitExceeded()
            self._var.append(level)
            self._low.append(low)
            self._high.append(high)
            node = len(self._var) - 1
            self._unique[key] = node
        return node

    def _level(self, node: int) -> int:
        if node <= 1:
            return 1 << 30  # terminals sit below every variable
        return self._var[node]

    # ------------------------------------------------------------------
    # core: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """ITE(f, g, h) = (f AND g) OR (NOT f AND h)."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(f), self._level(g), self._level(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._make(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level(node) != level:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # boolean operators
    # ------------------------------------------------------------------
    def land(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def lor(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def lnot(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def lxor(self, f: int, g: int) -> int:
        return self.ite(f, self.lnot(g), g)

    def lxnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.lnot(g))

    def land_many(self, funcs: Iterable[int]) -> int:
        result = self.TRUE
        for f in funcs:
            result = self.land(result, f)
            if result == self.FALSE:
                return result
        return result

    def lor_many(self, funcs: Iterable[int]) -> int:
        result = self.FALSE
        for f in funcs:
            result = self.lor(result, f)
            if result == self.TRUE:
                return result
        return result

    def literal(self, lit: int) -> int:
        return self.var(lit) if lit > 0 else self.nvar(-lit)

    # ------------------------------------------------------------------
    # cofactor / quantification / substitution
    # ------------------------------------------------------------------
    def restrict(self, f: int, variable: int, value: bool) -> int:
        """Shannon cofactor f|_{variable=value}."""
        self.declare(variable)
        level = self._level_of[variable]
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._level(node) > level:
                return node
            if node in cache:
                return cache[node]
            if self._level(node) == level:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._make(
                    self._var[node], walk(self._low[node]), walk(self._high[node])
                )
            cache[node] = result
            return result

        return walk(f)

    def exists(self, f: int, variable: int) -> int:
        return self.lor(
            self.restrict(f, variable, False), self.restrict(f, variable, True)
        )

    def forall(self, f: int, variable: int) -> int:
        return self.land(
            self.restrict(f, variable, False), self.restrict(f, variable, True)
        )

    def compose(self, f: int, variable: int, g: int) -> int:
        """Substitute ``g`` for ``variable`` in ``f``."""
        self.declare(variable)
        v = self.var(variable)
        # f[g/v] = ITE(g, f|v=1, f|v=0)
        return self.ite(
            g, self.restrict(f, variable, True), self.restrict(f, variable, False)
        )

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Simultaneously rename variables (target vars must be fresh or
        absent from ``f``'s support)."""
        support = self.support(f)
        overlap = set(mapping.values()) & support
        if overlap:
            raise ValueError(f"rename targets {sorted(overlap)} occur in support")
        result = f
        for old, new in mapping.items():
            result = self.compose(result, old, self.var(new))
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> Set[int]:
        seen: Set[int] = set()
        levels: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            levels.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return {self._var_of_level[level] for level in levels}

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: Set[int] = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        node = f
        while node > 1:
            variable = self._var_of_level[self._var[node]]
            node = self._high[node] if assignment[variable] else self._low[node]
        return node == self.TRUE

    def sat_count(self, f: int, variables: Sequence[int]) -> int:
        """Number of satisfying assignments over the given variables."""
        for v in variables:
            self.declare(v)
        order = sorted(self._level_of[v] for v in variables)
        position = {level: i for i, level in enumerate(order)}
        cache: Dict[int, int] = {}

        def walk(node: int) -> Tuple[int, int]:
            """Returns (count, level-index the count is normalized to)."""
            if node == self.FALSE:
                return 0, len(order)
            if node == self.TRUE:
                return 1, len(order)
            if node in cache:
                return cache[node], position[self._var[node]]
            c0, i0 = walk(self._low[node])
            c1, i1 = walk(self._high[node])
            here = position[self._var[node]]
            total = c0 * (1 << (i0 - here - 1)) + c1 * (1 << (i1 - here - 1))
            cache[node] = total
            return total, here

        count, index = walk(f)
        return count * (1 << index)

    def __repr__(self) -> str:
        return f"Bdd(nodes={self.num_nodes}, vars={len(self._var_of_level)})"


def cnf_to_bdd(
    clauses: Iterable[Iterable[int]],
    bdd: Optional[Bdd] = None,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Tuple[Bdd, int]:
    """Conjoin clause BDDs (mirror of :func:`repro.aig.cnf_bridge.cnf_to_aig`).

    BDDs can blow up exponentially during construction (the very
    phenomenon the paper's AIG choice avoids); ``node_budget`` tightens
    the manager's own node ceiling, and the optional ``deadline``
    (a ``time.monotonic`` timestamp) is checked between clauses.  Both
    raise the shared limit exceptions from :mod:`repro.errors`.
    """
    import time as _time

    from ..errors import TimeoutExceeded

    bdd = bdd if bdd is not None else Bdd()
    if node_budget is not None:
        bdd.node_limit = min(bdd.node_limit or node_budget, node_budget)
    result = Bdd.TRUE
    for clause in clauses:
        if deadline is not None and _time.monotonic() > deadline:
            raise TimeoutExceeded()
        clause_fn = bdd.lor_many(bdd.literal(lit) for lit in clause)
        result = bdd.land(result, clause_fn)
        if result == Bdd.FALSE:
            break
    return bdd, result
