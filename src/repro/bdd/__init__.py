"""ROBDD substrate: the representation the paper compares AIGs against."""

from .graph import Bdd, cnf_to_bdd
from .solver import BddEliminationSolver, solve_bdd

__all__ = ["Bdd", "cnf_to_bdd", "BddEliminationSolver", "solve_bdd"]
