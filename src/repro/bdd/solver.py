"""BDD-backed DQBF elimination — the representation counterpart to HQS.

Section II-C of the paper argues for AIGs over BDDs as the matrix
representation.  This solver runs the same elimination rules
(Theorems 1 and 2) on ROBDDs instead, giving the comparison a concrete
implementation: same strategy, canonical diagrams, no SAT endgame
needed (a BDD is constant iff it *is* the terminal).

It doubles as another independent cross-check for HQS in the tests.
"""

from __future__ import annotations

import time
from typing import Dict

from ..core.guard import ResourceGuard
from ..core.result import SAT, UNSAT, SolveResult, exhausted_result
from ..errors import ResourceExhausted
from ..formula.dqbf import Dqbf
from .graph import Bdd, cnf_to_bdd


class BddEliminationSolver:
    """Eliminate existentials (Thm. 2) and universals (Thm. 1) on BDDs."""

    def __init__(self) -> None:
        self.stats: Dict[str, int] = {}

    def solve(self, formula: Dqbf, limits=None) -> SolveResult:
        """``limits`` accepts a :class:`~repro.core.result.Limits` or a
        shared :class:`~repro.core.guard.ResourceGuard` (portfolio legs
        and cross-checks hand one down so nested solves stop restarting
        the clock)."""
        guard = ResourceGuard.ensure(limits)
        guard.enter_stage("bdd-build")
        start = time.monotonic()
        try:
            answer = self._solve_inner(formula, guard)
            status = SAT if answer else UNSAT
        except ResourceExhausted as exc:
            return exhausted_result(
                exc, guard, time.monotonic() - start, dict(self.stats)
            )
        return SolveResult(status, time.monotonic() - start, dict(self.stats))

    def _solve_inner(self, formula: Dqbf, guard: ResourceGuard) -> bool:
        formula.validate()
        work = formula.copy()
        prefix = work.prefix

        bdd = Bdd()
        # Declare universals first, existentials after: keeping dependency
        # sources above their readers is a decent static order for PEC.
        bdd.declare(*prefix.universals)
        bdd.declare(*prefix.existentials)
        bdd, root = cnf_to_bdd(
            work.matrix.clauses,
            bdd,
            node_budget=guard.node_limit,
            deadline=guard.deadline(),
        )
        next_var = max([work.matrix.num_vars] + prefix.all_variables() + [0]) + 1

        guard.enter_stage("bdd-elimination")
        eliminations = 0
        while True:
            guard.check()
            guard.check_nodes(bdd.size(root))
            guard.note(bdd_eliminations=eliminations)
            if root == Bdd.TRUE:
                return True
            if root == Bdd.FALSE:
                return False

            support = bdd.support(root)
            prefix.restrict_to(support)

            # Theorem 2: existentials depending on all universals.
            all_universals = frozenset(prefix.universals)
            eliminable = [
                y
                for y in prefix.existentials
                if prefix.dependencies(y) == all_universals
            ]
            if eliminable:
                y = eliminable[0]
                root = bdd.exists(root, y)
                prefix.remove_existential(y)
                eliminations += 1
                self.stats["existential_eliminations"] = (
                    self.stats.get("existential_eliminations", 0) + 1
                )
                continue

            if not prefix.universals:
                # only existentials left and none eliminable means support
                # pruning removed them all; root constant handled above —
                # quantify whatever remains
                for y in prefix.existentials:
                    root = bdd.exists(root, y)
                prefix.restrict_to(set())
                continue

            # Theorem 1 on the cheapest universal (fewest dependents).
            x = min(
                prefix.universals,
                key=lambda u: (len(prefix.dependents_of(u)), u),
            )
            low = bdd.restrict(root, x, False)
            high = bdd.restrict(root, x, True)
            copies: Dict[int, int] = {}
            high_support = bdd.support(high)
            for y in prefix.dependents_of(x):
                if y in high_support:
                    copies[y] = next_var
                    next_var += 1
            if copies:
                high = bdd.rename(high, copies)
            root = bdd.land(low, high)
            for y, y_copy in copies.items():
                prefix.add_existential(y_copy, prefix.dependencies(y) - {x})
            prefix.remove_universal(x)
            eliminations += 1
            self.stats["universal_eliminations"] = (
                self.stats.get("universal_eliminations", 0) + 1
            )


def solve_bdd(formula: Dqbf, limits=None) -> SolveResult:
    """Decide a DQBF with the BDD-backed elimination solver."""
    return BddEliminationSolver().solve(formula, limits)
