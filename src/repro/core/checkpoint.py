"""Anytime checkpointing of an HQS solve.

The elimination loop makes discrete, durable progress: after each
eliminated universal the state ``(AIG matrix, dependency prefix,
remaining elimination pool)`` fully determines the rest of the solve.
:class:`SolverCheckpoint` snapshots exactly that — the AIG serialized as
ASCII AIGER (numeric labels survive the round trip via the symbol
table), the prefix as explicit dependency lists, plus the counters and
guard accounting needed to report cumulative effort — so a killed or
crashed worker can be restarted from its last completed elimination
instead of from scratch.

Budget semantics on resume: the resumed run gets a *fresh* budget (a
restarted worker would otherwise be exhausted on arrival); the previous
run's elapsed time and conflicts are absorbed via
:meth:`~repro.core.guard.ResourceGuard.absorb_checkpoint` and surface
as ``prior_elapsed``/``prior_conflicts`` in the stats and in any
failure diagnosis.

Saves are atomic (write to a sibling temp file, then ``os.replace``), so
a kill mid-save leaves the previous checkpoint intact.  A fingerprint of
the input formula guards against resuming the wrong instance.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from .. import durable
from ..aig.aiger import parse_aiger, write_aiger
from ..formula.dqbf import Dqbf
from ..formula.prefix import DependencyPrefix
from .state import AigDqbf

#: Bump when the on-disk layout changes; loads refuse other versions.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised on malformed, mismatched or incompatible checkpoint files."""


def formula_fingerprint(formula: Dqbf) -> str:
    """Canonical SHA-256 digest of a DQBF (prefix + matrix).

    Public API (re-exported as :func:`repro.core.formula_fingerprint`):
    the key under which checkpoints are validated and the solver service
    caches results.  The digest is *semantic up to clause presentation*:

    * clause order and literal order within a clause do not matter
      (clauses are hashed as sorted tuples, sorted);
    * quantifier declaration order does not matter (universals and
      dependency sets are hashed sorted);
    * any edit to the matrix (adding/removing/changing a clause) or the
      prefix (variables, dependency sets) changes the digest.

    It is stable across processes, platforms and ``PYTHONHASHSEED``
    values — only ``hashlib.sha256`` over sorted integer tuples, no
    ``hash()`` — so fingerprints computed by a client, the serving front
    door and a worker process all agree.
    """
    hasher = hashlib.sha256()
    prefix = formula.prefix
    hasher.update(repr(sorted(prefix.universals)).encode())
    hasher.update(
        repr(
            sorted((y, tuple(sorted(prefix.dependencies(y))))
                   for y in prefix.existentials)
        ).encode()
    )
    hasher.update(
        repr(sorted(tuple(sorted(c)) for c in formula.matrix.clauses)).encode()
    )
    return hasher.hexdigest()


class SolverCheckpoint:
    """One resumable snapshot of the HQS elimination loop."""

    def __init__(
        self,
        fingerprint: str,
        aiger: str,
        root_constant: Optional[bool],
        universals: List[int],
        existentials: List[List[int]],
        next_var: int,
        elimination_pool: List[int],
        eliminations: Dict[str, int],
        stats: Dict[str, float],
        elapsed: float,
        conflicts: int,
    ) -> None:
        self.fingerprint = fingerprint
        self.aiger = aiger
        #: ``True``/``False`` when the matrix collapsed to a constant
        #: (AIGER cannot express a bare constant output portably enough
        #: for our writer, and a constant matrix never needs resuming —
        #: kept for completeness).
        self.root_constant = root_constant
        self.universals = universals
        #: ``[var, dep, dep, ...]`` per existential, construction order.
        self.existentials = existentials
        self.next_var = next_var
        self.elimination_pool = elimination_pool
        self.eliminations = eliminations
        self.stats = stats
        self.elapsed = elapsed
        self.conflicts = conflicts

    # ------------------------------------------------------------------
    # capture / restore
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        fingerprint: str,
        state: AigDqbf,
        elimination_pool: List[int],
        eliminations: Dict[str, int],
        stats: Dict[str, float],
        elapsed: float,
        conflicts: int,
    ) -> "SolverCheckpoint":
        constant = state.is_constant()
        aiger = ""
        if constant is None:
            aiger = write_aiger(state.aig, [state.root])
        prefix = state.prefix
        return cls(
            fingerprint=fingerprint,
            aiger=aiger,
            root_constant=constant,
            universals=list(prefix.universals),
            existentials=[
                [y] + sorted(prefix.dependencies(y)) for y in prefix.existentials
            ],
            next_var=state.next_var,
            elimination_pool=list(elimination_pool),
            eliminations=dict(eliminations),
            stats={k: v for k, v in stats.items() if isinstance(v, (int, float))},
            elapsed=elapsed,
            conflicts=conflicts,
        )

    def restore_state(self) -> AigDqbf:
        """Rebuild the :class:`AigDqbf` this checkpoint describes."""
        prefix = DependencyPrefix()
        for x in self.universals:
            prefix.add_universal(x)
        for entry in self.existentials:
            prefix.add_existential(entry[0], entry[1:])
        if self.root_constant is not None:
            from ..aig.graph import FALSE, TRUE, Aig

            return AigDqbf(
                Aig(), TRUE if self.root_constant else FALSE, prefix, self.next_var
            )
        aig, outputs, _labels = parse_aiger(self.aiger)
        return AigDqbf(aig, outputs[0], prefix, self.next_var)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "aiger": self.aiger,
            "root_constant": self.root_constant,
            "universals": self.universals,
            "existentials": self.existentials,
            "next_var": self.next_var,
            "elimination_pool": self.elimination_pool,
            "eliminations": self.eliminations,
            "stats": self.stats,
            "elapsed": self.elapsed,
            "conflicts": self.conflicts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolverCheckpoint":
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(f"unsupported checkpoint version {version!r}")
        try:
            return cls(
                fingerprint=str(payload["fingerprint"]),
                aiger=str(payload["aiger"]),
                root_constant=payload["root_constant"],
                universals=[int(x) for x in payload["universals"]],
                existentials=[
                    [int(v) for v in entry] for entry in payload["existentials"]
                ],
                next_var=int(payload["next_var"]),
                elimination_pool=[int(x) for x in payload["elimination_pool"]],
                eliminations={
                    str(k): int(v)
                    for k, v in payload["eliminations"].items()
                },
                stats={str(k): v for k, v in payload["stats"].items()},
                elapsed=float(payload["elapsed"]),
                conflicts=int(payload["conflicts"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    def save(self, path: str) -> None:
        """Atomically write the checkpoint under a CRC-32 frame.

        The frame (see :mod:`repro.durable`) is what lets a resuming
        solver distinguish "valid snapshot" from "torn write" instead
        of trusting whatever JSON happens to parse; the write is a
        :mod:`repro.faults` injection site (``checkpoint.save``).
        """
        payload = json.dumps(self.as_dict()).encode("utf-8")
        durable.write_framed(path, payload, fault_site="checkpoint.save")

    @classmethod
    def load(cls, path: str) -> "SolverCheckpoint":
        try:
            data = durable.read_framed(path)
        except durable.CorruptRecordError as exc:
            raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from exc
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint root must be a JSON object")
        return cls.from_dict(payload)

    @classmethod
    def load_or_quarantine(
        cls, path: str, fingerprint: Optional[str] = None
    ) -> Tuple[Optional["SolverCheckpoint"], Optional[str]]:
        """Load a checkpoint, diagnosing (and containing) any problem.

        Returns ``(checkpoint, None)`` on success and ``(None,
        diagnosis)`` otherwise.  A corrupt file is quarantined (renamed
        to ``*.corrupt``) so the evidence survives and the next attempt
        starts from a clean directory; a fingerprint mismatch leaves
        the file alone (it belongs to a different formula).
        """
        if not os.path.exists(path):
            return None, None
        try:
            checkpoint = cls.load(path)
        except CheckpointError as exc:
            quarantined = durable.quarantine(path)
            where = f"; quarantined to {quarantined}" if quarantined else ""
            return None, f"{exc}{where}"
        if fingerprint is not None and checkpoint.fingerprint != fingerprint:
            return None, (
                f"checkpoint {path!r} belongs to a different formula "
                f"({checkpoint.fingerprint[:12]} != {fingerprint[:12]})"
            )
        return checkpoint, None

    @classmethod
    def try_load(
        cls, path: str, fingerprint: Optional[str] = None
    ) -> Optional["SolverCheckpoint"]:
        """Load if present and (when given) matching ``fingerprint``.

        Missing, corrupt or mismatched checkpoints yield ``None`` — a
        resume must never be worse than starting over, so any problem
        with the file just falls back to a fresh solve (corrupt files
        are quarantined; see :meth:`load_or_quarantine`).
        """
        checkpoint, _diagnosis = cls.load_or_quarantine(path, fingerprint)
        return checkpoint

    def __repr__(self) -> str:
        return (
            f"SolverCheckpoint(universals={len(self.universals)}, "
            f"existentials={len(self.existentials)}, "
            f"eliminated={self.eliminations}, elapsed={self.elapsed:.3f}s)"
        )


def discard(path: Optional[str]) -> None:
    """Remove a checkpoint file if it exists (end-of-solve cleanup)."""
    if not path:
        return
    try:
        os.remove(path)
    except OSError:
        pass
