"""HQS: the elimination-based DQBF solver (the paper's contribution)."""

from .depgraph import (
    PrefixAnalysis,
    analyze_prefix,
    dependency_edges,
    incomparable_pairs,
    is_acyclic,
    linearize,
)
from .elimination import (
    eliminable_existentials,
    eliminate_existential,
    eliminate_universal,
    universal_elimination_cost,
)
from .checkpoint import CheckpointError, SolverCheckpoint, formula_fingerprint
from .hqs import HqsOptions, HqsSolver, solve_dqbf
from .preprocess import Gate, PreprocessResult, PreprocessStats, preprocess
from .result import (
    MEMOUT,
    SAT,
    TIMEOUT,
    UNKNOWN,
    UNSAT,
    Limits,
    NodeLimitExceeded,
    SolveResult,
    TimeoutExceeded,
)
from .selection import SelectionResult, order_by_copy_cost, select_elimination_set
from .skolem import SkolemTable, extract_certificate, verify_skolem
from .state import AigDqbf
from .unitpure import UnitPureStats, apply_unit_pure

__all__ = [
    "CheckpointError",
    "SolverCheckpoint",
    "formula_fingerprint",
    "PrefixAnalysis",
    "analyze_prefix",
    "dependency_edges",
    "incomparable_pairs",
    "is_acyclic",
    "linearize",
    "eliminable_existentials",
    "eliminate_existential",
    "eliminate_universal",
    "universal_elimination_cost",
    "HqsOptions",
    "HqsSolver",
    "solve_dqbf",
    "Gate",
    "PreprocessResult",
    "PreprocessStats",
    "preprocess",
    "SAT",
    "UNSAT",
    "TIMEOUT",
    "MEMOUT",
    "UNKNOWN",
    "Limits",
    "SolveResult",
    "NodeLimitExceeded",
    "TimeoutExceeded",
    "SelectionResult",
    "order_by_copy_cost",
    "select_elimination_set",
    "AigDqbf",
    "UnitPureStats",
    "apply_unit_pure",
    "SkolemTable",
    "extract_certificate",
    "verify_skolem",
]
