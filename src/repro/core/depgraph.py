"""Dependency graphs over existential variables (Section III-A).

Definition 4 of the paper: the dependency graph of a DQBF has the
existential variables as nodes and an edge ``y_i -> y_l`` iff
``D_{y_i}`` is *not* a subset of ``D_{y_l}`` — i.e. ``y_i`` depends on
some universal ``y_l`` must not see, forcing ``y_i`` to the right of
``y_l`` in any equivalent QBF prefix.

Theorem 3: an equivalent QBF prefix exists iff this graph is acyclic.
Theorem 4 reduces the cyclicity test to *pairs*: the graph is cyclic iff
two existential variables have incomparable dependency sets.  Both the
test and the linearization below exploit this.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from ..formula.prefix import EXISTS, FORALL, BlockedPrefix, DependencyPrefix


def dependency_edges(prefix: DependencyPrefix) -> List[Tuple[int, int]]:
    """All edges of the dependency graph (Definition 4)."""
    existentials = prefix.existentials
    edges = []
    for y_i in existentials:
        d_i = prefix.dependencies(y_i)
        for y_l in existentials:
            if y_i != y_l and not d_i <= prefix.dependencies(y_l):
                edges.append((y_i, y_l))
    return edges


def incomparable_pairs(prefix: DependencyPrefix) -> List[Tuple[int, int]]:
    """``C_psi``: unordered pairs with mutually incomparable dependency sets.

    By Theorem 4 these are exactly the binary cycles of the dependency
    graph, and the graph is cyclic iff this list is non-empty.
    """
    pairs = []
    existentials = prefix.existentials
    deps = {y: prefix.dependencies(y) for y in existentials}
    for y, y_prime in combinations(existentials, 2):
        if not deps[y] <= deps[y_prime] and not deps[y_prime] <= deps[y]:
            pairs.append((y, y_prime))
    return pairs


def is_acyclic(prefix: DependencyPrefix) -> bool:
    """Theorem 3/4 test: equivalent QBF prefix exists iff no incomparable pair."""
    existentials = prefix.existentials
    deps = {y: prefix.dependencies(y) for y in existentials}
    for y, y_prime in combinations(existentials, 2):
        if not deps[y] <= deps[y_prime] and not deps[y_prime] <= deps[y]:
            return False
    return True


class PrefixAnalysis:
    """Structural difficulty metrics of a DQBF prefix.

    ``incomparable_pairs`` counts the binary cycles (Theorem 4);
    ``min_elimination_set`` is the MaxSAT optimum of Eqs. 1-2 — the
    number of universal expansions HQS must pay before the QBF back-end
    can take over.  Zero pairs means the formula is QBF in disguise.
    """

    def __init__(
        self,
        num_universals: int,
        num_existentials: int,
        num_incomparable_pairs: int,
        min_elimination_set: int,
        max_dependency_size: int,
        distinct_dependency_sets: int,
    ):
        self.num_universals = num_universals
        self.num_existentials = num_existentials
        self.num_incomparable_pairs = num_incomparable_pairs
        self.min_elimination_set = min_elimination_set
        self.max_dependency_size = max_dependency_size
        self.distinct_dependency_sets = distinct_dependency_sets

    @property
    def is_qbf(self) -> bool:
        return self.num_incomparable_pairs == 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "num_universals": self.num_universals,
            "num_existentials": self.num_existentials,
            "num_incomparable_pairs": self.num_incomparable_pairs,
            "min_elimination_set": self.min_elimination_set,
            "max_dependency_size": self.max_dependency_size,
            "distinct_dependency_sets": self.distinct_dependency_sets,
        }

    def __repr__(self) -> str:
        return f"PrefixAnalysis({self.as_dict()})"


def analyze_prefix(prefix: DependencyPrefix) -> PrefixAnalysis:
    """Compute the difficulty metrics of a dependency prefix."""
    from .selection import select_elimination_set

    pairs = incomparable_pairs(prefix)
    dependency_sets = {prefix.dependencies(y) for y in prefix.existentials}
    if pairs:
        minimum = len(select_elimination_set(prefix).variables)
    else:
        minimum = 0
    return PrefixAnalysis(
        num_universals=len(prefix.universals),
        num_existentials=len(prefix.existentials),
        num_incomparable_pairs=len(pairs),
        min_elimination_set=minimum,
        max_dependency_size=max(
            (len(d) for d in dependency_sets), default=0
        ),
        distinct_dependency_sets=len(dependency_sets),
    )


def linearize(prefix: DependencyPrefix) -> BlockedPrefix:
    """Build an equivalent QBF prefix for an acyclic dependency graph.

    Implements the constructive direction of Theorem 3: existential
    variables are grouped by dependency set; groups are sorted by set
    inclusion (total order, by acyclicity); universal blocks carry the
    new dependencies each group adds; trailing universals form the final
    block.

    Raises ``ValueError`` when the graph is cyclic.
    """
    if not is_acyclic(prefix):
        raise ValueError("dependency graph is cyclic; no equivalent QBF prefix")

    groups: Dict[FrozenSet[int], List[int]] = {}
    for y in prefix.existentials:
        groups.setdefault(prefix.dependencies(y), []).append(y)

    ordered = sorted(groups.items(), key=lambda item: len(item[0]))
    # Sanity: inclusion chain (guaranteed by acyclicity, equal sizes merge).
    for (d1, _), (d2, _) in zip(ordered, ordered[1:]):
        if not d1 <= d2:
            raise AssertionError("group dependency sets are not chain-ordered")

    blocked = BlockedPrefix()
    placed: Set[int] = set()
    for deps, variables in ordered:
        new_universals = sorted(deps - placed)
        if new_universals:
            blocked.add_block(FORALL, new_universals)
            placed.update(new_universals)
        blocked.add_block(EXISTS, variables)
    trailing = [x for x in prefix.universals if x not in placed]
    if trailing:
        blocked.add_block(FORALL, sorted(trailing))
    return blocked
