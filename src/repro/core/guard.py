"""Cooperative resource guard shared by every solver layer.

Elimination-based DQBF solving has unpredictable cost spikes: universal
elimination duplicates existential cones, FRAIG sweeps and the MaxSAT
selection can each blow a whole time budget on their own.  Historically
each module kept its own ``time.time()`` bookkeeping (and each solver
``restart_clock()``-ed the :class:`~repro.core.result.Limits` it was
handed, silently granting nested calls a fresh budget).  The
:class:`ResourceGuard` replaces all of that with one shared object:

* **one monotonic deadline**, computed once; ``check()`` is a single
  ``time.monotonic()`` call and compare, cheap enough for inner loops;
* **an AIG node budget** (``check_nodes``), the memout stand-in;
* **a SAT-conflict budget** (``charge_conflicts``), fed by the SAT
  session and MaxSAT search so runaway CDCL work is bounded even when
  wall-clock limits are generous;
* **stage and progress tracking** — when a budget runs out the raised
  exception carries a :class:`~repro.errors.FailureDiagnosis` naming
  the stage, the resource and the progress made, which the solver front
  ends surface as ``SolveResult.failure``;
* **stage slices** (:meth:`slice`, :meth:`stage_deadline`) — carve a
  bounded sub-budget out of the remaining one so a single pipeline
  stage going over budget degrades to a fallback procedure instead of
  sinking the whole solve.

Nested solver calls (certificate extraction, the QBF back-end, the BDD
cross-check inside a portfolio leg) share the *same* guard via
:meth:`ensure`, which is what fixes the historical double-counting of
elapsed time against fresh clock starts.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from ..errors import (
    ConflictLimitExceeded,
    FailureDiagnosis,
    NodeLimitExceeded,
    StageBudgetExceeded,
    TimeoutExceeded,
)


class ResourceGuard:
    """Monotonic-deadline + node + conflict budget with O(1) ``check()``."""

    __slots__ = (
        "time_limit",
        "node_limit",
        "conflict_limit",
        "_start",
        "_deadline",
        "conflicts",
        "stage",
        "progress",
        "checks",
        "prior_elapsed",
        "prior_conflicts",
        "_parent",
    )

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        conflict_limit: Optional[int] = None,
        stage: str = "init",
        _parent: Optional["ResourceGuard"] = None,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.conflict_limit = conflict_limit
        self._start = time.monotonic()
        self._deadline = None if time_limit is None else self._start + time_limit
        self.conflicts = 0
        self.stage = stage
        self.progress: Dict[str, float] = {}
        self.checks = 0
        # Accounting absorbed from a checkpoint (reported, not charged —
        # a resumed worker gets a fresh budget but the cumulative work is
        # still visible in the diagnosis and the stats).
        self.prior_elapsed = 0.0
        self.prior_conflicts = 0
        self._parent = _parent

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_limits(cls, limits) -> "ResourceGuard":
        """Wrap a :class:`~repro.core.result.Limits` budget, starting the
        clock now (the one and only clock start of the solve)."""
        return cls(
            time_limit=limits.time_limit,
            node_limit=limits.node_limit,
            conflict_limit=getattr(limits, "conflict_limit", None),
        )

    @classmethod
    def ensure(cls, budget: Union["ResourceGuard", object, None]) -> "ResourceGuard":
        """Coerce ``budget`` (guard, ``Limits`` or ``None``) into a guard.

        An existing guard is returned *as is* — its clock keeps running —
        which is how nested solver calls share one budget instead of
        each restarting a fresh one.
        """
        if budget is None:
            return cls()
        if isinstance(budget, ResourceGuard):
            return budget
        return cls.from_limits(budget)

    def slice(
        self,
        time_fraction: Optional[float] = None,
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        stage: Optional[str] = None,
    ) -> "ResourceGuard":
        """A sub-guard bounded by what is *left* of this one.

        ``time_fraction`` grants that share of the remaining time (a
        plain ``time_limit`` is capped at the remaining time); the node
        budget is inherited, the conflict budget is the given one.  The
        slice raises :class:`StageBudgetExceeded` when *its own* budget
        runs out but the parent still has headroom, so callers can
        distinguish "this stage is too expensive" (degrade) from "the
        whole solve is out of budget" (give up).  Conflicts charged to
        the slice propagate to the parent.
        """
        remaining = self.remaining()
        slice_time: Optional[float] = None
        if time_fraction is not None:
            if time_fraction <= 0.0:
                slice_time = 0.0  # fault-injection hook: instantly spent
            elif remaining is not None:
                slice_time = remaining * time_fraction
            elif time_limit is not None:
                slice_time = time_limit
        elif time_limit is not None:
            slice_time = time_limit
        if slice_time is not None and remaining is not None:
            slice_time = min(slice_time, remaining)
        child = ResourceGuard(
            time_limit=slice_time,
            node_limit=self.node_limit,
            conflict_limit=conflict_limit,
            stage=stage or self.stage,
            _parent=self,
        )
        child.progress = self.progress  # shared snapshot, one source of truth
        return child

    # ------------------------------------------------------------------
    # stage / progress bookkeeping
    # ------------------------------------------------------------------
    def enter_stage(self, name: str) -> None:
        self.stage = name
        if self._parent is None:
            # Stage changes on a slice also show up in the parent's
            # diagnosis via the shared progress dict; the stage string
            # itself only propagates upward explicitly.
            return
        self._parent.stage = name

    def note(self, **progress: float) -> None:
        """Record forward progress (shows up in the failure diagnosis)."""
        self.progress.update(progress)

    def diagnosis(self, resource: str) -> FailureDiagnosis:
        return FailureDiagnosis(
            stage=self.stage,
            resource=resource,
            progress=dict(self.progress),
            elapsed=self.prior_elapsed + self.elapsed(),
        )

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic`` timestamp of the budget, if any."""
        return self._deadline

    def stage_deadline(self, fraction: float) -> Optional[float]:
        """Absolute deadline for a stage slice of ``fraction`` of the
        remaining time, never past the overall deadline.

        With an unlimited guard the stage is unlimited too (``None``) —
        degradation only kicks in when the user actually set budgets —
        except for ``fraction <= 0``, which yields an already-expired
        deadline (the fault-injection hook used by the tests).
        """
        if fraction <= 0.0:
            return time.monotonic()
        if self._deadline is None:
            return None
        now = time.monotonic()
        return min(self._deadline, now + max(0.0, self._deadline - now) * fraction)

    def absorb_checkpoint(self, elapsed: float, conflicts: int) -> None:
        """Account for work a previous (checkpointed) run already did."""
        self.prior_elapsed += elapsed
        self.prior_conflicts += conflicts

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def check(self) -> None:
        """O(1) cooperative check of the time and conflict budgets."""
        self.checks += 1
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._raise_time()
        if self.conflict_limit is not None and self.conflicts > self.conflict_limit:
            self._raise_conflicts()

    def check_nodes(self, num_nodes: int) -> None:
        self.note(matrix_size=float(num_nodes))
        if self.node_limit is not None and num_nodes > self.node_limit:
            raise NodeLimitExceeded(diagnosis=self.diagnosis("nodes"))

    def charge_conflicts(self, count: int) -> None:
        """Add ``count`` conflicts to the accounting (and the parent's)."""
        if count <= 0:
            return
        self.conflicts += count
        if self._parent is not None:
            self._parent.charge_conflicts(count)

    def exhausted(self) -> bool:
        """Non-raising probe: is any budget already gone?"""
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        if self.conflict_limit is not None and self.conflicts > self.conflict_limit:
            return True
        return False

    def _raise_time(self) -> None:
        if self._parent is not None and not self._parent.exhausted():
            # Only this slice is spent: signal the ladder, not the user.
            raise StageBudgetExceeded(diagnosis=self.diagnosis("time"))
        raise TimeoutExceeded(diagnosis=self.diagnosis("time"))

    def _raise_conflicts(self) -> None:
        if self._parent is not None and not self._parent.exhausted():
            raise StageBudgetExceeded(diagnosis=self.diagnosis("conflicts"))
        raise ConflictLimitExceeded(diagnosis=self.diagnosis("conflicts"))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"ResourceGuard(stage={self.stage!r}, time={self.time_limit}, "
            f"nodes={self.node_limit}, conflicts={self.conflict_limit}, "
            f"elapsed={self.elapsed():.3f}s)"
        )
