"""HQS — the paper's elimination-based DQBF solver (Fig. 3).

The pipeline:

1. CNF preprocessing (units, universal reduction, equivalences, Tseitin
   gate detection) — :mod:`repro.core.preprocess`;
2. AIG construction with gate inlining via ``compose``;
3. MaxSAT selection of a minimum universal elimination set —
   :mod:`repro.core.selection`;
4. main loop: unit/pure elimination on the AIG (Theorems 5/6),
   Theorem 2 existential elimination, Theorem 1 universal elimination of
   the selected variables (cheapest first) while the dependency graph is
   cyclic;
5. once acyclic: linearize the prefix (Theorem 3) and hand the AIG to
   the QBF back-end — :mod:`repro.qbf.aigsolve`.

Every optimization can be switched off through :class:`HqsOptions`,
which is how the ablation benchmarks and the [10]-style expansion
baseline are realized.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..aig.cnf_bridge import cnf_to_aig, is_satisfiable
from ..aig.fraig import FraigEngine, FraigOptions
from ..aig.graph import FALSE, complement
from ..errors import (
    ConflictLimitExceeded,
    ResourceExhausted,
    StageBudgetExceeded,
    TimeoutExceeded,
)
from ..sat.incremental import AigSatSession, SatServiceStats
from ..formula.dqbf import Dqbf
from ..formula.lits import var_of
from ..qbf.aigsolve import QbfSolverStats, solve_aig_qbf
from .checkpoint import SolverCheckpoint, discard, formula_fingerprint
from .depgraph import incomparable_pairs, is_acyclic, linearize
from .elimination import eliminable_existentials, eliminate_existential, eliminate_universal
from .guard import ResourceGuard
from .preprocess import Gate, preprocess
from .result import SAT, UNSAT, SolveResult, exhausted_result
from .selection import (
    greedy_elimination_set,
    order_by_copy_cost,
    select_elimination_set,
)
from .state import AigDqbf
from .unitpure import UnitPureStats, apply_unit_pure


class HqsOptions:
    """Feature switches for HQS (all on by default, as in the paper)."""

    def __init__(
        self,
        use_preprocessing: bool = True,
        use_gate_detection: bool = True,
        use_unit_pure: bool = True,
        use_maxsat_selection: bool = True,
        use_qbf_backend: bool = True,
        use_sat_probe: bool = False,
        use_fused_kernel: bool = True,
        use_sat_session: bool = True,
        sat_session_max_clauses: int = 200_000,
        elimination_order: str = "copies",
        fraig_interval: int = 0,
        compact_ratio: int = 4,
        maxsat_conflict_budget: Optional[int] = 50_000,
        maxsat_time_fraction: float = 0.25,
        fraig_time_fraction: float = 0.25,
        qbf_time_fraction: float = 0.8,
    ):
        self.use_preprocessing = use_preprocessing
        self.use_gate_detection = use_gate_detection
        self.use_unit_pure = use_unit_pure
        self.use_maxsat_selection = use_maxsat_selection
        self.use_qbf_backend = use_qbf_backend
        # The improvement suggested at the end of Section IV: one SAT call
        # on the all-zero universal branch catches the instances iDQ
        # refutes with a single ground solve.  Off by default, matching
        # the evaluated HQS configuration.
        self.use_sat_probe = use_sat_probe
        # Single-pass AIG kernel (fused cofactor/rename, batched
        # unit/pure substitution).  Off = the naive one-rebuild-per-step
        # reference path, kept for equivalence tests and the kernel
        # benchmark's before/after comparison.
        self.use_fused_kernel = use_fused_kernel
        # One persistent AigSatSession for every SAT query of the run
        # (FRAIG miters, constant checks, endgames): learned clauses and
        # Tseitin encodings survive across sweeps and elimination
        # rounds.  Off = the historical fresh-solver-per-query
        # discipline, kept for the satsweep benchmark's baseline.
        self.use_sat_session = use_sat_session
        self.sat_session_max_clauses = sat_session_max_clauses
        # "copies" orders elimination candidates by the number of
        # existential copies (the paper's heuristic); "growth" by the
        # estimated AIG duplication (the conclusion's future-work
        # direction, cf. elimination.universal_growth_estimate).
        if elimination_order not in ("copies", "growth"):
            raise ValueError(f"unknown elimination order {elimination_order!r}")
        self.elimination_order = elimination_order
        self.fraig_interval = fraig_interval
        self.compact_ratio = compact_ratio
        # Degradation-ladder stage budgets.  Each pipeline stage that can
        # blow a whole budget on its own (MaxSAT selection, FRAIG SAT
        # sweeping, the QBF back-end) gets a bounded slice of the
        # remaining resources; going over it triggers the cheaper
        # fallback instead of sinking the solve.  Fractions <= 0 expire
        # the slice immediately (the fault-injection hook the robustness
        # tests use); conflict budget ``None`` means unbounded.
        self.maxsat_conflict_budget = maxsat_conflict_budget
        self.maxsat_time_fraction = maxsat_time_fraction
        self.fraig_time_fraction = fraig_time_fraction
        self.qbf_time_fraction = qbf_time_fraction


class HqsSolver:
    """One-shot solver object; create per formula.

    With ``trace=True`` the solver records a human-readable event list
    (`solver.trace`) describing every pipeline stage: preprocessing
    outcome, MaxSAT selection, each elimination with the matrix size it
    produced, and the endgame taken — the paper's Fig. 3 as a log.
    """

    def __init__(
        self,
        options: Optional[HqsOptions] = None,
        trace: bool = False,
        sat_session: Optional[AigSatSession] = None,
    ):
        self.options = options or HqsOptions()
        self.stats: Dict[str, float] = {}
        self.trace: List[str] = []
        self._tracing = trace
        self._kernel_counters = None
        # A caller-owned session (warm worker pool): rebound to this
        # solve's AIG instead of creating a fresh solver, so learned
        # clauses and input variables survive across *requests*, not
        # just across sweeps within one solve.  Stats are exported as
        # per-solve deltas; ``sat_warm_learnts`` records how many
        # learned clauses the solve inherited.
        self._shared_session = sat_session
        self._sat_session: Optional[AigSatSession] = None
        self._sat_stats_base: Dict[str, int] = {}
        self._fraig_engine: Optional[FraigEngine] = None

    @property
    def sat_session(self) -> Optional[AigSatSession]:
        """The SAT session of the last solve (for warm-pool stashing)."""
        return self._sat_session

    def _trace(self, message: str) -> None:
        if self._tracing:
            self.trace.append(message)

    def _add_time(self, key: str, tick: float) -> None:
        """Accumulate elapsed wall-clock since ``tick`` into a stage timer."""
        self.stats[key] = self.stats.get(key, 0.0) + (time.monotonic() - tick)

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: Dqbf,
        limits=None,
        checkpoint: Optional[str] = None,
    ) -> SolveResult:
        """Solve ``formula`` under ``limits`` (a
        :class:`~repro.core.result.Limits` or an existing
        :class:`~repro.core.guard.ResourceGuard` to share a caller's
        budget).

        Resource exhaustion never escapes: the result's status is then
        ``UNKNOWN`` and ``result.failure`` carries a machine-readable
        :class:`~repro.errors.FailureDiagnosis` (stage, resource,
        progress made).

        ``checkpoint`` names a file for anytime snapshots: the solver
        resumes from it when present (same formula), rewrites it after
        each eliminated universal, and removes it once the solve
        completes.
        """
        guard = ResourceGuard.ensure(limits)
        self.stats = {}
        # Per-stage wall-clock accounting, always present (0.0 when a
        # stage never ran) so sweep reports can aggregate uniformly.
        for key in ("time_fraig", "time_maxsat", "time_eliminate", "time_qbf"):
            self.stats[key] = 0.0
        self.trace = []
        start = time.monotonic()
        self._kernel_counters = None
        self._sat_session = None
        self._fraig_engine = None
        exhausted: Optional[ResourceExhausted] = None
        answer = False
        try:
            answer = self._solve_inner(formula, guard, checkpoint)
            discard(checkpoint)
        except ResourceExhausted as exc:
            exhausted = exc
        finally:
            self._export_kernel_stats()
            self._export_sat_stats()
            self._export_guard_stats(guard)
        runtime = time.monotonic() - start
        if exhausted is not None:
            return exhausted_result(exhausted, guard, runtime, dict(self.stats))
        return SolveResult(SAT if answer else UNSAT, runtime, dict(self.stats))

    # ------------------------------------------------------------------
    def _solve_inner(
        self,
        formula: Dqbf,
        guard: ResourceGuard,
        checkpoint_path: Optional[str] = None,
    ) -> bool:
        options = self.options
        formula.validate()

        # Anytime resume: a matching checkpoint skips preprocessing, AIG
        # construction and selection and re-enters the elimination loop
        # where the previous run left off.  Any problem with the file
        # (missing, corrupt, different formula) just starts fresh.
        fingerprint: Optional[str] = None
        resumed: Optional[SolverCheckpoint] = None
        if checkpoint_path is not None:
            fingerprint = formula_fingerprint(formula)
            resumed, corrupt = SolverCheckpoint.load_or_quarantine(
                checkpoint_path, fingerprint
            )
            if corrupt is not None:
                # A bad snapshot must cost a restart, never the answer:
                # record the diagnosis and fall through to a fresh solve.
                self.stats["checkpoint_corrupt"] = 1
                self._trace(f"checkpoint unusable, starting fresh: {corrupt}")
        if resumed is not None:
            return self._resume(resumed, guard, checkpoint_path, fingerprint)

        guard.enter_stage("preprocess")
        gates: List[Gate] = []
        if options.use_preprocessing:
            pre = preprocess(formula, detect_gates=options.use_gate_detection, guard=guard)
            self.stats.update({f"pre_{k}": v for k, v in pre.stats.as_dict().items()})
            if pre.status is not None:
                self._trace(f"preprocessing decided the formula: {pre.status}")
                return pre.status
            self._trace(
                f"preprocessing: {pre.stats.units_propagated} units, "
                f"{pre.stats.universal_reductions} universal reductions, "
                f"{pre.stats.equivalences_substituted} equivalences, "
                f"{pre.stats.gates_detected} gates"
            )
            work = pre.formula
            gates = pre.gates
        else:
            work = formula.copy()

        guard.check()
        state = self._build_state(work, gates)
        state.prune_prefix()
        self._bind_services(state, guard)
        self.stats["initial_matrix_size"] = state.matrix_size()
        if state.root > 1:
            self.stats["initial_matrix_level"] = state.aig.level_of(state.root)
        self._trace(
            f"matrix AIG built: {state.matrix_size()} AND nodes, "
            f"{len(state.prefix.universals)} universal / "
            f"{len(state.prefix.existentials)} existential variables "
            f"({'fused' if options.use_fused_kernel else 'naive'} kernel)"
        )

        if options.use_sat_probe and not self._sat_probe(state, guard):
            # The all-zero universal branch has no satisfying existential
            # assignment, so no Skolem functions can exist.
            self.stats["sat_probe_refuted"] = 1
            self._trace("SAT probe refuted the all-zero branch: UNSAT")
            return False

        eliminations = {"universal": 0, "existential": 0}

        # MaxSAT selection of the minimum elimination set (computed once,
        # before the main loop, as in the paper).  Ladder rung 1: when
        # the MaxSAT search blows its stage budget, fall back to the
        # greedy dependency-graph covering heuristic — a larger but
        # still valid elimination set, for a bounded price.
        elimination_pool: List[int] = []
        if options.use_maxsat_selection:
            guard.enter_stage("selection")
            tick = time.monotonic()
            try:
                selection = select_elimination_set(
                    state.prefix,
                    conflict_limit=options.maxsat_conflict_budget,
                    deadline=guard.stage_deadline(options.maxsat_time_fraction),
                )
                self._trace(
                    f"MaxSAT selection: eliminate {selection.variables} "
                    f"({selection.num_pairs} incomparable pairs)"
                )
            except StageBudgetExceeded:
                guard.check()  # whole-solve budget gone instead? raise it
                selection = greedy_elimination_set(state.prefix)
                self.stats["degrade_maxsat"] = 1
                self._trace(
                    f"MaxSAT selection over budget: greedy fallback "
                    f"eliminates {selection.variables}"
                )
            self._add_time("time_maxsat", tick)
            elimination_pool = list(selection.variables)
            self.stats["maxsat_time"] = selection.maxsat_time
            self.stats["maxsat_pairs"] = selection.num_pairs
            self.stats["maxsat_conflicts"] = selection.conflicts
            self.stats["maxsat_decisions"] = selection.decisions
            self.stats["selected_universals"] = len(elimination_pool)

        return self._elimination_loop(
            state, guard, elimination_pool, eliminations, checkpoint_path, fingerprint
        )

    # ------------------------------------------------------------------
    def _resume(
        self,
        resumed: SolverCheckpoint,
        guard: ResourceGuard,
        checkpoint_path: str,
        fingerprint: str,
    ) -> bool:
        """Re-enter the elimination loop from a saved snapshot.

        The resumed run gets the *fresh* budget it was called with; the
        previous run's spend is absorbed into the guard so cumulative
        effort still shows up in stats and diagnoses.
        """
        state = resumed.restore_state()
        state.prune_prefix()
        self._bind_services(state, guard)
        self.stats.update(resumed.stats)
        self.stats["checkpoint_resumed"] = 1
        guard.absorb_checkpoint(resumed.elapsed, resumed.conflicts)
        self._trace(
            f"resumed from checkpoint: {resumed.eliminations} eliminated, "
            f"matrix {state.matrix_size()} nodes, "
            f"{resumed.elapsed:.3f}s prior work"
        )
        return self._elimination_loop(
            state,
            guard,
            list(resumed.elimination_pool),
            dict(resumed.eliminations),
            checkpoint_path,
            fingerprint,
        )

    # ------------------------------------------------------------------
    def _bind_services(self, state: AigDqbf, guard: ResourceGuard) -> None:
        """Attach the kernel counters, SAT session and FRAIG engine."""
        # Kernel counters live on the AIG manager and survive compaction
        # (extract shares the object); keep a handle for stats export.
        self._kernel_counters = state.aig.counters
        self.stats["kernel_backend_numpy"] = int(state.aig.backend == "numpy")
        # One SAT session serves every query of the run.  With
        # use_sat_session=False it degrades to a fresh solver per query
        # while keeping the same counters (the benchmark baseline).
        # Every query charges its conflicts to the guard.
        shared = self._shared_session
        if shared is not None and self.options.use_sat_session:
            self._sat_stats_base = shared.stats.as_dict()
            shared.guard = guard
            shared.max_clauses = self.options.sat_session_max_clauses
            self._sat_session = shared.rebind(state.aig)
            # Recorded *after* the rebind: a clause-budget reset during
            # rebinding means the solve inherited nothing after all.
            self.stats["sat_warm_learnts"] = shared.solver.statistics["learnts"]
        else:
            self.stats["sat_warm_learnts"] = 0
            self._sat_stats_base = {}
            self._sat_session = AigSatSession(
                state.aig,
                persistent=self.options.use_sat_session,
                max_clauses=self.options.sat_session_max_clauses,
                guard=guard,
            )
        self._fraig_engine = FraigEngine(FraigOptions())

    # ------------------------------------------------------------------
    def _elimination_loop(
        self,
        state: AigDqbf,
        guard: ResourceGuard,
        elimination_pool: List[int],
        eliminations: Dict[str, int],
        checkpoint_path: Optional[str],
        fingerprint: Optional[str],
    ) -> bool:
        options = self.options
        unit_pure_stats = UnitPureStats()
        unit_pure_time = 0.0
        qbf_stats = QbfSolverStats()
        # Ladder rung 3: once the QBF back-end blows its stage slice it
        # stays off for the rest of the solve and the loop keeps
        # expanding universals (the bounded-expansion fallback).
        qbf_enabled = options.use_qbf_backend

        fraig_countdown = options.fraig_interval
        guard.enter_stage("elimination")

        while True:
            guard.check()
            self._maybe_compact(state)
            guard.check_nodes(state.matrix_size())
            guard.note(
                universal_eliminations=eliminations["universal"],
                existential_eliminations=eliminations["existential"],
            )

            constant = state.is_constant()
            if constant is not None:
                return constant

            if options.use_unit_pure:
                tick = time.monotonic()
                decided = apply_unit_pure(
                    state, unit_pure_stats, batched=options.use_fused_kernel, guard=guard
                )
                unit_pure_time += time.monotonic() - tick
                self.stats["unit_pure_time"] = unit_pure_time
                self._export_unit_pure(unit_pure_stats)
                if decided is not None:
                    return decided
            state.prune_prefix()

            # Theorem 2: eliminate existentials depending on all universals.
            tick = time.monotonic()
            progressed = True
            while progressed:
                progressed = False
                for y in eliminable_existentials(state):
                    guard.check()
                    eliminate_existential(state, y, fused=options.use_fused_kernel)
                    eliminations["existential"] += 1
                    self._trace(
                        f"Theorem 2: eliminated existential {y}, "
                        f"matrix {state.matrix_size()} nodes"
                    )
                    progressed = True
                constant = state.is_constant()
                if constant is not None:
                    self._add_time("time_eliminate", tick)
                    self._export_eliminations(eliminations)
                    return constant
                state.prune_prefix()
            self._add_time("time_eliminate", tick)

            if not state.prefix.universals:
                # Pure SAT endgame.
                self._export_eliminations(eliminations)
                self._trace("no universals left: SAT endgame")
                guard.enter_stage("sat-endgame")
                return is_satisfiable(
                    state.aig, state.root, guard.deadline(), self._sat_session
                )

            if is_acyclic(state.prefix):
                self._export_eliminations(eliminations)
                if qbf_enabled:
                    # Ladder rung 3: the back-end runs on a bounded slice
                    # of the remaining budget.  Blowing the slice leaves
                    # the state intact (the root is only reassigned on
                    # success), so the loop can continue with bounded
                    # expansion instead of giving up.
                    blocked = linearize(state.prefix)
                    self._trace(
                        f"dependency graph acyclic: QBF back-end with prefix {blocked!r}"
                    )
                    qbf_guard = guard.slice(
                        time_fraction=options.qbf_time_fraction,
                        stage="qbf-backend",
                    )
                    tick = time.monotonic()
                    try:
                        result = solve_aig_qbf(
                            state.aig,
                            state.root,
                            blocked,
                            qbf_guard,
                            use_unit_pure=options.use_unit_pure,
                            stats=qbf_stats,
                            compact_ratio=options.compact_ratio,
                            fused=options.use_fused_kernel,
                            sat_session=self._sat_session,
                        )
                        self._add_time("time_qbf", tick)
                        self.stats.update(
                            {f"qbf_{k}": v for k, v in qbf_stats.as_dict().items()}
                        )
                        return result
                    except (
                        StageBudgetExceeded,
                        TimeoutExceeded,
                        ConflictLimitExceeded,
                    ):
                        self._add_time("time_qbf", tick)
                        guard.check()  # whole-solve budget gone? raise it
                        qbf_enabled = False
                        self.stats["degrade_qbf"] = 1
                        self.stats.update(
                            {f"qbf_{k}": v for k, v in qbf_stats.as_dict().items()}
                        )
                        guard.enter_stage("elimination")
                        self._trace(
                            "QBF back-end over budget: bounded expansion fallback"
                        )
                # Expansion path (ablation baseline, or the rung-3
                # fallback after a degraded back-end).
                x = self._next_universal(state, list(state.prefix.universals))
            else:
                candidates = [
                    x for x in elimination_pool if state.prefix.is_universal(x)
                ]
                if not candidates:
                    candidates = self._fallback_candidates(state)
                x = self._next_universal(state, candidates)

            tick = time.monotonic()
            copies = eliminate_universal(
                state, x, fused=options.use_fused_kernel, guard=guard
            )
            self._add_time("time_eliminate", tick)
            eliminations["universal"] += 1
            self._trace(
                f"Theorem 1: eliminated universal {x} "
                f"({len(copies)} copies), matrix {state.matrix_size()} nodes"
            )
            self._export_eliminations(eliminations)

            if checkpoint_path is not None:
                self._save_checkpoint(
                    checkpoint_path,
                    fingerprint,
                    state,
                    elimination_pool,
                    eliminations,
                    guard,
                )

            if options.fraig_interval:
                fraig_countdown -= 1
                if fraig_countdown <= 0:
                    fraig_countdown = options.fraig_interval
                    self._fraig(state, guard)

    # ------------------------------------------------------------------
    def _build_state(self, work: Dqbf, gates: List[Gate]) -> AigDqbf:
        """Create the AIG matrix, inlining detected gates via compose."""
        aig, root = cnf_to_aig(work.matrix.clauses)
        if gates:
            gate_edges: Dict[int, int] = {}
            for gate in gates:  # inputs-first order
                inputs = []
                for lit in gate.inputs:
                    v = var_of(lit)
                    edge = gate_edges.get(v)
                    if edge is None:
                        edge = aig.var(v)
                    inputs.append(complement(edge) if lit < 0 else edge)
                if gate.kind == "and":
                    edge = aig.land_many(inputs)
                elif gate.kind == "or":
                    edge = aig.lor_many(inputs)
                elif gate.kind == "xor":
                    edge = inputs[0]
                    for other in inputs[1:]:
                        edge = aig.lxor(edge, other)
                else:  # pragma: no cover
                    raise ValueError(f"unknown gate kind {gate.kind}")
                gate_edges[gate.output] = edge
            root = aig.compose(root, gate_edges)
            for gate in gates:
                if work.prefix.quantifies(gate.output):
                    work.prefix.remove_variable(gate.output)
        next_var = max(
            [work.matrix.num_vars]
            + work.prefix.all_variables()
            + [0]
        ) + 1
        return AigDqbf(aig, root, work.prefix, next_var)

    def _sat_probe(self, state: AigDqbf, guard: ResourceGuard) -> bool:
        """One SAT call on the all-zero universal branch (Section IV).

        If the matrix restricted to ``x := 0`` for every universal has no
        satisfying assignment of the existentials, the DQBF is trivially
        unsatisfied.  Returns ``False`` exactly in that refuting case.
        """
        constant = state.is_constant()
        if constant is not None:
            return constant
        branch = state.aig.compose(
            state.root, {x: FALSE for x in state.prefix.universals}
        )
        return is_satisfiable(
            state.aig, branch, guard.deadline(), self._sat_session
        )

    def _maybe_compact(self, state: AigDqbf) -> None:
        live = state.matrix_size()
        if state.aig.num_nodes > self.options.compact_ratio * max(live, 64):
            state.compact()
            if self._sat_session is not None:
                self._sat_session.rebind(state.aig)

    def _fraig(self, state: AigDqbf, guard: ResourceGuard) -> None:
        # Ladder rung 2: the sweep's SAT merging runs on a bounded time
        # slice; past it the engine finishes in structural-hashing-only
        # mode (still sound, still compacting) and reports the
        # degradation, which we count as ``degrade_fraig``.
        counters = state.aig.counters
        generation = state.aig.cache_generation
        tick = time.monotonic()
        try:
            fresh, root = self._fraig_engine.sweep(
                state.aig,
                state.root,
                session=self._sat_session,
                deadline=guard.stage_deadline(self.options.fraig_time_fraction),
            )
        finally:
            self._add_time("time_fraig", tick)
        if self._fraig_engine.last_sweep_degraded:
            self.stats["degrade_fraig"] = self.stats.get("degrade_fraig", 0) + 1
            self._trace("FRAIG sweep over budget: strash-only compaction")
        # FRAIG rebuilds into a brand-new manager: keep accumulating
        # kernel work in the same counters and advance the generation.
        fresh.counters = counters
        fresh.cache_generation = generation + 1
        state.aig = fresh
        state.root = root
        if self._sat_session is not None:
            self._sat_session.rebind(fresh)

    def _next_universal(self, state: AigDqbf, candidates: List[int]) -> int:
        if self.options.elimination_order == "growth":
            from .elimination import universal_growth_estimate

            return min(
                candidates, key=lambda x: (universal_growth_estimate(state, x), x)
            )
        ordered = order_by_copy_cost(state.prefix, candidates)
        return ordered[0]

    def _fallback_candidates(self, state: AigDqbf) -> List[int]:
        """Without MaxSAT selection: universals occurring in some pair difference."""
        pool: Set[int] = set()
        for y, y_prime in incomparable_pairs(state.prefix):
            d_y = state.prefix.dependencies(y)
            d_yp = state.prefix.dependencies(y_prime)
            pool |= d_y ^ d_yp
        if not pool:  # pragma: no cover - cyclic prefix always has pairs
            pool = set(state.prefix.universals)
        return sorted(pool)

    def _save_checkpoint(
        self,
        path: str,
        fingerprint: Optional[str],
        state: AigDqbf,
        elimination_pool: List[int],
        eliminations: Dict[str, int],
        guard: ResourceGuard,
    ) -> None:
        snapshot = SolverCheckpoint.capture(
            fingerprint or "",
            state,
            elimination_pool,
            eliminations,
            self.stats,
            elapsed=guard.prior_elapsed + guard.elapsed(),
            conflicts=guard.prior_conflicts + guard.conflicts,
        )
        snapshot.save(path)
        self.stats["checkpoint_writes"] = self.stats.get("checkpoint_writes", 0) + 1

    def _export_guard_stats(self, guard: ResourceGuard) -> None:
        self.stats["guard_checks"] = guard.checks
        self.stats["guard_conflicts"] = guard.conflicts
        if guard.prior_elapsed:
            self.stats["prior_elapsed"] = guard.prior_elapsed
        if guard.prior_conflicts:
            self.stats["prior_conflicts"] = guard.prior_conflicts

    def _export_unit_pure(self, stats: UnitPureStats) -> None:
        self.stats["units_eliminated"] = stats.units_eliminated
        self.stats["pures_eliminated"] = stats.pures_eliminated

    def _export_eliminations(self, counters: Dict[str, int]) -> None:
        self.stats["universal_eliminations"] = counters["universal"]
        self.stats["existential_eliminations"] = counters["existential"]

    def _export_kernel_stats(self) -> None:
        """Publish the AIG kernel counters as ``kernel_*`` stats fields."""
        counters = self._kernel_counters
        if counters is None:
            return
        raw = counters.as_dict()
        for key, value in raw.items():
            self.stats[f"kernel_{key}"] = value
        lookups = raw["strash_lookups"]
        self.stats["kernel_strash_hit_rate"] = (
            raw["strash_hits"] / lookups if lookups else 0.0
        )
        support_queries = raw["support_cache_hits"] + raw["support_cache_misses"]
        self.stats["kernel_support_cache_hit_rate"] = (
            raw["support_cache_hits"] / support_queries if support_queries else 0.0
        )
        unitpure_queries = raw["unitpure_cache_hits"] + raw["unitpure_cache_misses"]
        self.stats["kernel_unitpure_cache_hit_rate"] = (
            raw["unitpure_cache_hits"] / unitpure_queries if unitpure_queries else 0.0
        )
        self._trace(
            f"kernel: {raw['rebuild_passes']} rebuild passes, "
            f"{raw['fused_passes']} fused passes, "
            f"{raw['nodes_visited']} nodes visited, "
            f"{raw['nodes_shared']} shared, "
            f"strash hit rate {self.stats['kernel_strash_hit_rate']:.2f}"
        )

    def _export_sat_stats(self) -> None:
        """Publish the SAT session counters as ``sat_*`` stats fields.

        A shared (warm) session accumulates over its whole lifetime;
        what lands in this solve's stats is the *delta* since the
        session was bound, so per-request counters stay comparable with
        the fresh-session case.
        """
        session = self._sat_session
        if session is None:
            return
        raw: SatServiceStats = session.stats
        base = self._sat_stats_base
        delta = {
            key: value - base.get(key, 0) for key, value in raw.as_dict().items()
        }
        for key, value in delta.items():
            self.stats[f"sat_{key}"] = value
        self.stats["sat_session_persistent"] = int(session.persistent)
        self.stats["sat_session_shared"] = int(session is self._shared_session)
        if self._fraig_engine is not None:
            self.stats["sat_fraig_sweeps"] = self._fraig_engine.sweeps
        if self._shared_session is not None:
            # The pool owns the session; do not keep charging its
            # queries to this (finished) solve's guard.
            self._shared_session.guard = None
        if delta["queries"]:
            self._trace(
                f"sat service: {delta['queries']} queries "
                f"({delta['sat_answers']} SAT / {delta['unsat_answers']} UNSAT), "
                f"{delta['conflicts']} conflicts, "
                f"{delta['clauses_encoded']} clauses encoded, "
                f"{delta['encode_cache_hits']} encode cache hits, "
                f"{delta['counterexamples']} counterexamples absorbed"
            )


def solve_dqbf(
    formula: Dqbf,
    limits=None,
    options: Optional[HqsOptions] = None,
    checkpoint: Optional[str] = None,
) -> SolveResult:
    """Solve a DQBF with HQS; the main public entry point of the library."""
    return HqsSolver(options).solve(formula, limits, checkpoint=checkpoint)
