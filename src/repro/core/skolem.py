"""Skolem-function certificates for satisfied DQBFs.

The DATE'15 paper decides DQBF without emitting witnesses; certification
is discussed in Balabanov et al. [13] and became part of later HQS
versions.  This module adds that extension: explicit Skolem functions as
truth tables over each existential variable's dependency set, plus an
independent SAT-based verifier.

A certificate for ``psi = forall X exists y1(D1) ... : phi`` is a map
``{y_i: SkolemTable}``; it is valid iff substituting the tables into the
matrix yields a tautology over the universal variables (Definition 2).
The verifier builds exactly that check: compose the table AIGs into the
matrix AIG and assert the complement unsatisfiable.

Certificates are extracted from the instantiation-based solver
(:class:`repro.baselines.idq.IdqSolver`), whose SAT verdict *is* a total
Skolem candidate by construction.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..aig.cnf_bridge import cnf_to_aig, is_satisfiable
from ..aig.graph import TRUE, Aig, complement
from ..formula.dqbf import Dqbf
from .result import Limits, SAT, SolveResult


class SkolemTable:
    """One Skolem function as a truth table over its dependency set.

    ``deps`` is the *sorted* list of universal variables the function
    reads; ``table`` maps value tuples (aligned with ``deps``) to the
    function value.  Missing rows default to ``default``.
    """

    def __init__(
        self,
        variable: int,
        deps: List[int],
        table: Optional[Dict[Tuple[bool, ...], bool]] = None,
        default: bool = False,
    ):
        self.variable = variable
        self.deps = sorted(deps)
        self.table = dict(table or {})
        self.default = default

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        key = tuple(assignment[x] for x in self.deps)
        return self.table.get(key, self.default)

    def to_aig(self, aig: Aig) -> int:
        """Build the function as an AIG edge over the universal inputs."""
        rows = [key for key, value in self.table.items() if value != self.default]
        cubes = []
        for key in rows:
            cube = TRUE
            for x, value in zip(self.deps, key):
                edge = aig.var(x)
                cube = aig.land(cube, edge if value else complement(edge))
            cubes.append(cube)
        mismatch = aig.lor_many(cubes)
        return complement(mismatch) if self.default else mismatch

    def as_full_table(self) -> Dict[Tuple[bool, ...], bool]:
        """Materialize every row (exponential in ``len(deps)``)."""
        full = {}
        for key in itertools.product((False, True), repeat=len(self.deps)):
            full[key] = self.table.get(key, self.default)
        return full

    def __repr__(self) -> str:
        return f"SkolemTable(y{self.variable} over {self.deps}, {len(self.table)} rows)"


def verify_skolem(formula: Dqbf, tables: Dict[int, SkolemTable]) -> bool:
    """Check a certificate: substituting the tables must give a tautology.

    Independent of any solver — one matrix AIG build, one compose, one
    SAT call on the complement.
    """
    formula.validate()
    missing = set(formula.prefix.existentials) - set(tables)
    if missing:
        raise ValueError(f"certificate misses existential variables {sorted(missing)}")
    for y in formula.prefix.existentials:
        declared = set(formula.prefix.dependencies(y))
        if not set(tables[y].deps) <= declared:
            raise ValueError(
                f"Skolem function for {y} reads {tables[y].deps}, "
                f"allowed {sorted(declared)}"
            )

    aig, root = cnf_to_aig(formula.matrix.clauses)
    substitution = {y: tables[y].to_aig(aig) for y in formula.prefix.existentials}
    substituted = aig.compose(root, substitution)
    return not is_satisfiable(aig, complement(substituted))


def extract_certificate(
    formula: Dqbf, limits: Optional[Limits] = None
) -> Tuple[SolveResult, Optional[Dict[int, SkolemTable]]]:
    """Decide ``formula`` and, if satisfied, return a verified certificate.

    Uses the instantiation-based solver, whose SAT answers come with a
    total Skolem candidate for free.  Returns ``(result, tables)`` where
    ``tables`` is ``None`` unless ``result.status == SAT``.

    Raises ``AssertionError`` if the extracted certificate fails the
    independent verifier (which would indicate a solver bug).
    """
    from ..baselines.idq import IdqSolver

    solver = IdqSolver()
    result = solver.solve(formula, limits)
    if result.status != SAT:
        return result, None
    tables = solver.skolem_functions()
    if tables is None:  # pragma: no cover - SAT always records a model
        raise AssertionError("SAT result without Skolem model")
    if not verify_skolem(formula, tables):
        raise AssertionError("extracted Skolem certificate failed verification")
    return result, tables
