"""DQBF-aware CNF preprocessing (first stage of Fig. 3).

Adapted from QBF preprocessing as described in Section III-C of the
paper:

* **unit propagation** — an existential unit literal is assigned; a
  universal unit clause makes the formula UNSAT;
* **universal reduction** — a universal literal is dropped from a clause
  when no existential literal of that clause depends on it (the DQBF
  generalization of [29]);
* **equivalent variables** — binary-clause analysis detects ``a == b`` /
  ``a == ¬b`` and substitutes when dependency-compatible;
* **gate detection** — Tseitin-encoded AND/OR/XOR gates are recognized;
  their defining clauses are removed and the definitions recorded so the
  AIG construction can inline them with ``compose`` instead of carrying
  auxiliary variables.

The first three run in alternation until the CNF stabilizes; gate
detection runs once at the end (as in the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..formula.cnf import Cnf
from ..formula.dqbf import Dqbf
from ..formula.lits import var_of
from ..formula.prefix import DependencyPrefix
from .guard import ResourceGuard


class Gate:
    """A recovered Tseitin gate: ``output <-> kind(inputs)``.

    ``kind`` is ``"and"``, ``"or"`` or ``"xor"``; ``inputs`` are literals.
    """

    def __init__(self, output: int, kind: str, inputs: Sequence[int]):
        self.output = output
        self.kind = kind
        self.inputs = list(inputs)

    def input_vars(self) -> Set[int]:
        return {var_of(lit) for lit in self.inputs}

    def __repr__(self) -> str:
        return f"Gate({self.output} <-> {self.kind}{tuple(self.inputs)})"


class PreprocessStats:
    """Counters for the preprocessing pass."""

    def __init__(self) -> None:
        self.units_propagated = 0
        self.universal_reductions = 0
        self.equivalences_substituted = 0
        self.gates_detected = 0
        self.clauses_subsumed = 0
        self.literals_strengthened = 0
        self.rounds = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class PreprocessResult:
    """Outcome of preprocessing.

    ``status`` is ``True``/``False`` when preprocessing already decided
    the formula, else ``None`` with the simplified ``formula`` and the
    topologically ordered ``gates`` to inline during AIG construction.
    """

    def __init__(
        self,
        status: Optional[bool],
        formula: Optional[Dqbf],
        gates: List[Gate],
        stats: PreprocessStats,
    ):
        self.status = status
        self.formula = formula
        self.gates = gates
        self.stats = stats


def preprocess(
    formula: Dqbf,
    detect_gates: bool = True,
    use_subsumption: bool = True,
    guard: Optional[ResourceGuard] = None,
) -> PreprocessResult:
    """Run the full preprocessing pipeline on a copy of ``formula``.

    ``guard`` threads the caller's cooperative budget through the
    fixpoint loops; ``None`` gets an unlimited guard.
    """
    work = formula.copy()
    stats = PreprocessStats()
    guard = ResourceGuard.ensure(guard)

    status = _simplify_to_fixpoint(work, stats, use_subsumption, guard)
    if status is not None:
        return PreprocessResult(status, None, [], stats)

    gates: List[Gate] = []
    if detect_gates:
        gates = _detect_gates(work, stats)

    if not len(work.matrix) and not gates:
        return PreprocessResult(True, None, [], stats)
    work.prefix.restrict_to(
        work.matrix.variables()
        | {g.output for g in gates}
        | {v for g in gates for v in g.input_vars()}
    )
    return PreprocessResult(None, work, gates, stats)


# ----------------------------------------------------------------------
# units / universal reduction / equivalences
# ----------------------------------------------------------------------

def _simplify_to_fixpoint(
    work: Dqbf,
    stats: PreprocessStats,
    use_subsumption: bool = True,
    guard: Optional[ResourceGuard] = None,
) -> Optional[bool]:
    guard = ResourceGuard.ensure(guard)
    while True:
        guard.check()
        stats.rounds += 1

        status = _propagate_units(work, stats, guard)
        if status is not None:
            return status

        reduced = _universal_reduction(work, stats)
        if reduced == "UNSAT":
            return False

        substituted = _substitute_one_equivalence(work, stats)

        strengthened = False
        if use_subsumption:
            strengthened = _subsumption(work, stats)

        if work.matrix.has_empty_clause():
            return False
        if not len(work.matrix):
            return True
        if (
            not reduced
            and not substituted
            and not strengthened
            and not _has_unit(work.matrix)
        ):
            return None


def _has_unit(matrix: Cnf) -> bool:
    return any(len(clause) == 1 for clause in matrix)


def _propagate_units(
    work: Dqbf, stats: PreprocessStats, guard: Optional[ResourceGuard] = None
) -> Optional[bool]:
    """Assign all unit literals; returns a decided status or None."""
    guard = ResourceGuard.ensure(guard)
    while True:
        guard.check()
        unit = next((c for c in work.matrix if len(c) == 1), None)
        if unit is None:
            return None
        lit = unit[0]
        var = var_of(lit)
        if work.prefix.is_universal(var):
            # A universal variable forced to one value: unsatisfied.
            return False
        new_matrix = work.matrix.assign(var, lit > 0)
        work.matrix = new_matrix
        if work.prefix.is_existential(var):
            work.prefix.remove_existential(var)
        stats.units_propagated += 1
        if work.matrix.has_empty_clause():
            return False
        if not len(work.matrix):
            return True


def _universal_reduction(work: Dqbf, stats: PreprocessStats):
    """Apply generalized universal reduction to every clause."""
    prefix = work.prefix
    new_clauses: List[Tuple[int, ...]] = []
    changed = False
    for clause in work.matrix:
        existential_deps: Set[int] = set()
        for lit in clause:
            v = var_of(lit)
            if prefix.is_existential(v):
                existential_deps |= prefix.dependencies(v)
        kept = []
        for lit in clause:
            v = var_of(lit)
            if prefix.is_universal(v) and v not in existential_deps:
                changed = True
                stats.universal_reductions += 1
                continue
            kept.append(lit)
        if not kept:
            return "UNSAT"
        new_clauses.append(tuple(kept))
    if changed:
        rebuilt = Cnf(num_vars=work.matrix.num_vars)
        for clause in new_clauses:
            rebuilt.add_clause(clause)
        work.matrix = rebuilt
    return changed


def _substitute_one_equivalence(work: Dqbf, stats: PreprocessStats) -> bool:
    """Find one dependency-compatible variable equivalence and apply it.

    Clauses ``(l1 | l2)`` and ``(!l1 | !l2)`` together force ``l1 == !l2``
    — this single pattern covers both ``a == b`` (via complementary
    literal polarities) and ``a == !b``.
    """
    binary = {c for c in work.matrix if len(c) == 2}
    for clause in binary:
        l1, l2 = clause
        mirror = tuple(sorted((-l1, -l2), key=lambda l: (var_of(l), l < 0)))
        if mirror in work.matrix:
            if _apply_equivalence(work, l1, -l2, stats):
                return True
    return False


def _apply_equivalence(work: Dqbf, lit_a: int, lit_b: int, stats: PreprocessStats) -> bool:
    """Try to substitute so that ``lit_a == lit_b`` holds; True on success.

    Chooses which variable to keep based on DQBF dependency rules:
    an existential may be replaced by a literal whose variable is
    "visible" to it (universal in its dependency set, or existential
    with a subset dependency set).
    """
    prefix = work.prefix
    var_a, var_b = var_of(lit_a), var_of(lit_b)
    if var_a == var_b:
        return False

    def can_replace(drop: int, keep: int) -> bool:
        if not prefix.is_existential(drop):
            return False
        if prefix.is_universal(keep):
            return keep in prefix.dependencies(drop)
        return prefix.dependencies(keep) <= prefix.dependencies(drop)

    # polarity of the kept literal when substituting drop := keep-literal
    if can_replace(var_a, var_b):
        drop, drop_lit, keep_lit = var_a, lit_a, lit_b
    elif can_replace(var_b, var_a):
        drop, drop_lit, keep_lit = var_b, lit_b, lit_a
    else:
        return False

    # drop_lit == keep_lit; substitute drop by (keep_lit if drop_lit positive
    # else !keep_lit)
    replacement = keep_lit if drop_lit > 0 else -keep_lit
    rebuilt = Cnf(num_vars=work.matrix.num_vars)
    for clause in work.matrix:
        new_clause = []
        for lit in clause:
            if var_of(lit) == drop:
                new_clause.append(replacement if lit > 0 else -replacement)
            else:
                new_clause.append(lit)
        rebuilt.add_clause(new_clause)
    work.matrix = rebuilt
    work.prefix.remove_existential(drop)
    stats.equivalences_substituted += 1
    return True


def _subsumption(work: Dqbf, stats: PreprocessStats) -> bool:
    """Subsumption and self-subsuming resolution.

    Both are matrix-equivalence-preserving and therefore sound for DQBF:

    * a clause that is a superset of another clause is redundant;
    * if ``D \\ {-l}`` is a subset of ``C \\ {l}``, resolving ``C`` with
      ``D`` on ``l`` yields a subset of ``C``, so ``l`` can be removed
      from ``C`` ("strengthening").
    """
    clauses = [frozenset(c) for c in work.matrix]
    changed = False

    # subsumption: shorter clauses first so survivors are minimal
    clauses.sort(key=len)
    kept: List[frozenset] = []
    for clause in clauses:
        if any(other <= clause for other in kept if len(other) <= len(clause)):
            stats.clauses_subsumed += 1
            changed = True
            continue
        kept.append(clause)

    # self-subsuming resolution (one sweep)
    strengthened: List[frozenset] = list(kept)
    by_index = {i: c for i, c in enumerate(strengthened)}
    for i, clause in list(by_index.items()):
        for lit in list(clause):
            if lit not in clause:
                continue  # removed by an earlier strengthening step
            rest = clause - {lit}
            for j, other in by_index.items():
                if j == i:
                    continue
                if -lit in other and (other - {-lit}) <= rest:
                    by_index[i] = rest
                    clause = rest
                    stats.literals_strengthened += 1
                    changed = True
                    break
            else:
                continue
            # literal removed: restart literal loop on the shrunk clause
            if not clause:
                break

    if changed:
        rebuilt = Cnf(num_vars=work.matrix.num_vars)
        for clause in by_index.values():
            rebuilt.add_clause(sorted(clause))
        work.matrix = rebuilt
    return changed


# ----------------------------------------------------------------------
# gate detection
# ----------------------------------------------------------------------

def _detect_gates(work: Dqbf, stats: PreprocessStats) -> List[Gate]:
    """Recognize Tseitin-encoded AND/OR/XOR definitions.

    Returns gates in topological order (inputs before outputs) and
    removes their defining clauses from the matrix.
    """
    prefix = work.prefix
    clause_set = set(work.matrix.clauses)

    def canon(lits: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(lits), key=lambda l: (var_of(l), l < 0)))

    candidates: List[Tuple[Gate, List[Tuple[int, ...]]]] = []
    used_outputs: Set[int] = set()

    # AND gates of arbitrary arity: clause (g | !l1 | ... | !lk) plus
    # binaries (!g | li).  Scanning each clause, each literal may act as g.
    for clause in work.matrix:
        if len(clause) < 3:
            continue
        for g_lit in clause:
            g = var_of(g_lit)
            if g in used_outputs or not prefix.is_existential(g):
                continue
            inputs = [-lit for lit in clause if lit != g_lit]
            binaries = [canon((-g_lit, lit)) for lit in inputs]
            if all(b in clause_set for b in binaries):
                if not _gate_dependency_ok(prefix, g, inputs):
                    continue
                # g_lit <-> AND(inputs).  Normalize to a positive output.
                if g_lit > 0:
                    gate = Gate(g, "and", inputs)
                else:
                    gate = Gate(g, "or", [-l for l in inputs])
                defining = [canon(clause)] + binaries
                candidates.append((gate, defining))
                used_outputs.add(g)
                break

    # Binary XOR gates: 4-clause pattern.
    xor_seen: Set[int] = set(used_outputs)
    for clause in work.matrix:
        if len(clause) != 3:
            continue
        for g_lit in clause:
            g = var_of(g_lit)
            if g in xor_seen or not prefix.is_existential(g):
                continue
            rest = [lit for lit in clause if lit != g_lit]
            if len(rest) != 2 or any(var_of(l) == g for l in rest):
                continue
            a, b = rest
            # Pattern for g == a xor b (up to input polarities):
            needed = [
                canon((g_lit, a, b)),
                canon((g_lit, -a, -b)),
                canon((-g_lit, a, -b)),
                canon((-g_lit, -a, b)),
            ]
            if all(c in clause_set for c in needed):
                # g_lit | a | b present means: !g_lit -> (a | b) etc.
                # Solving the pattern: g_lit == !(a xor b) == a xnor b.
                inputs = [a, b]
                if not _gate_dependency_ok(prefix, g, inputs):
                    continue
                # g_lit <-> !(a xor b): express with xor by flipping one input.
                if g_lit > 0:
                    gate = Gate(g, "xor", [a, -b])
                else:
                    gate = Gate(g, "xor", [a, b])
                candidates.append((gate, needed))
                xor_seen.add(g)
                used_outputs.add(g)
                break

    accepted = _topologically_consistent(candidates)
    if not accepted:
        return []

    removed: Set[Tuple[int, ...]] = set()
    for _gate, defining in accepted:
        removed.update(defining)
    rebuilt = Cnf(num_vars=work.matrix.num_vars)
    for clause in work.matrix:
        if canon(clause) not in removed:
            rebuilt.add_clause(clause)
    work.matrix = rebuilt
    stats.gates_detected += len(accepted)
    return [gate for gate, _ in accepted]


def _gate_dependency_ok(prefix: DependencyPrefix, output: int, inputs: Sequence[int]) -> bool:
    """Dependency compatibility: the gate function must be computable
    from the output's dependency set."""
    d_out = prefix.dependencies(output)
    for lit in inputs:
        v = var_of(lit)
        if prefix.is_universal(v):
            if v not in d_out:
                return False
        elif prefix.is_existential(v):
            if not prefix.dependencies(v) <= d_out:
                return False
        else:
            return False
    return True


def _topologically_consistent(
    candidates: List[Tuple[Gate, List[Tuple[int, ...]]]]
) -> List[Tuple[Gate, List[Tuple[int, ...]]]]:
    """Greedily keep gates whose definitions form an acyclic hierarchy,
    returned inputs-first so composition can proceed in order."""
    by_output = {gate.output: (gate, defining) for gate, defining in candidates}
    accepted: List[Tuple[Gate, List[Tuple[int, ...]]]] = []
    state: Dict[int, int] = {}  # 0 = visiting, 1 = accepted, -1 = rejected

    def visit(output: int, stack: Set[int]) -> bool:
        if output in state:
            return state[output] == 1
        if output in stack:
            return False
        gate, defining = by_output[output]
        stack.add(output)
        for v in gate.input_vars():
            if v in by_output and not visit(v, stack):
                # An input with a rejected/cyclic definition is fine as a
                # plain variable; only self-cycles poison this gate.
                if v in stack:
                    stack.discard(output)
                    state[output] = -1
                    return False
        stack.discard(output)
        state[output] = 1
        accepted.append((gate, defining))
        return True

    for output in by_output:
        visit(output, set())
    return accepted
