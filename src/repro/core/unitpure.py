"""Application of Theorem 5: eliminate unit and pure variables.

Detection is the syntactic AIG pass of Theorem 6
(:mod:`repro.aig.unitpure`); this module applies the elimination rules:

* existential unit  -> substitute the forced value;
* universal unit    -> the DQBF is UNSAT;
* existential pure  -> substitute the preferred value;
* universal pure    -> substitute the *adverse* value (positive pure
  universals are set to 0, negative pure ones to 1).

These eliminations are particularly attractive for DQBF because they
never duplicate variables (Section III-B).  The loop below runs to a
fixpoint: every substitution can expose new unit/pure variables.
"""

from __future__ import annotations

from typing import Optional

from ..aig.unitpure import detect_unit_pure
from .guard import ResourceGuard
from .state import AigDqbf


class UnitPureStats:
    """Counters reported in the experiments (unit/pure hits and rounds)."""

    def __init__(self) -> None:
        self.units_eliminated = 0
        self.pures_eliminated = 0
        self.rounds = 0

    def __repr__(self) -> str:
        return (
            f"UnitPureStats(units={self.units_eliminated}, "
            f"pures={self.pures_eliminated}, rounds={self.rounds})"
        )


def apply_unit_pure(
    state: AigDqbf,
    stats: Optional[UnitPureStats] = None,
    batched: bool = True,
    guard: Optional[ResourceGuard] = None,
) -> Optional[bool]:
    """Eliminate unit/pure variables until fixpoint.

    Returns ``False`` when a universal unit proves the formula UNSAT,
    ``True``/``False`` when the matrix collapses to a constant, and
    ``None`` otherwise (state updated in place).

    With ``batched=True`` (the default) every substitution of a
    detection round is collected into one constant assignment and
    applied by a single fused :meth:`~repro.aig.graph.Aig.restrict`
    pass.  Substituting constants for distinct variables commutes, so
    this is equivalent to the ``batched=False`` reference path, which
    rebuilds the full live cone once per variable.

    ``guard`` threads the caller's cooperative budget through the
    fixpoint rounds; ``None`` gets an unlimited guard.
    """
    stats = stats if stats is not None else UnitPureStats()
    guard = ResourceGuard.ensure(guard)
    while True:
        guard.check()
        constant = state.is_constant()
        if constant is not None:
            return constant
        info = detect_unit_pure(state.aig, state.root)
        if not info:
            return None
        stats.rounds += 1
        if batched:
            outcome = _apply_round_batched(state, info, stats)
        else:
            outcome = _apply_round_naive(state, info, stats)
        if outcome is not _CONTINUE:
            return outcome


_CONTINUE = object()  # sentinel: round applied, keep iterating


def _apply_round_batched(state: AigDqbf, info, stats: UnitPureStats):
    """Apply one detection round as a single multi-variable restrict."""
    for var in info.units:
        if state.prefix.quantifies(var) and state.prefix.is_universal(var):
            # Theorem 5: a unit universal variable falsifies the DQBF.
            return False
    assignment = {}
    for var, forced in info.units.items():
        if not state.prefix.quantifies(var):
            continue
        assignment[var] = forced
        stats.units_eliminated += 1
    for var, polarity in info.pures.items():
        if not state.prefix.quantifies(var):
            continue
        if state.prefix.is_existential(var):
            assignment[var] = polarity
        else:
            # Universal pure: substitute the adverse polarity.
            assignment[var] = not polarity
        stats.pures_eliminated += 1
    if not assignment:
        return None
    state.root = state.aig.restrict(state.root, assignment)
    for var in assignment:
        if state.prefix.is_existential(var):
            state.prefix.remove_existential(var)
        else:
            state.prefix.remove_universal(var)
    return _CONTINUE


def _apply_round_naive(state: AigDqbf, info, stats: UnitPureStats):
    """Reference path: one full-cone cofactor rebuild per variable."""
    progress = False
    for var, forced in info.units.items():
        if not state.prefix.quantifies(var):
            continue
        if state.prefix.is_universal(var):
            return False
        state.root = state.aig.cofactor(state.root, var, forced)
        state.prefix.remove_existential(var)
        stats.units_eliminated += 1
        progress = True
    for var, polarity in info.pures.items():
        if not state.prefix.quantifies(var):
            continue
        if state.prefix.is_existential(var):
            state.root = state.aig.cofactor(state.root, var, polarity)
            state.prefix.remove_existential(var)
        else:
            state.root = state.aig.cofactor(state.root, var, not polarity)
            state.prefix.remove_universal(var)
        stats.pures_eliminated += 1
        progress = True
    return _CONTINUE if progress else None
