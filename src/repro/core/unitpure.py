"""Application of Theorem 5: eliminate unit and pure variables.

Detection is the syntactic AIG pass of Theorem 6
(:mod:`repro.aig.unitpure`); this module applies the elimination rules:

* existential unit  -> substitute the forced value;
* universal unit    -> the DQBF is UNSAT;
* existential pure  -> substitute the preferred value;
* universal pure    -> substitute the *adverse* value (positive pure
  universals are set to 0, negative pure ones to 1).

These eliminations are particularly attractive for DQBF because they
never duplicate variables (Section III-B).  The loop below runs to a
fixpoint: every substitution can expose new unit/pure variables.
"""

from __future__ import annotations

from typing import Optional

from ..aig.unitpure import detect_unit_pure
from .state import AigDqbf


class UnitPureStats:
    """Counters reported in the experiments (unit/pure hits and rounds)."""

    def __init__(self) -> None:
        self.units_eliminated = 0
        self.pures_eliminated = 0
        self.rounds = 0

    def __repr__(self) -> str:
        return (
            f"UnitPureStats(units={self.units_eliminated}, "
            f"pures={self.pures_eliminated}, rounds={self.rounds})"
        )


def apply_unit_pure(state: AigDqbf, stats: Optional[UnitPureStats] = None) -> Optional[bool]:
    """Eliminate unit/pure variables until fixpoint.

    Returns ``False`` when a universal unit proves the formula UNSAT,
    ``True``/``False`` when the matrix collapses to a constant, and
    ``None`` otherwise (state updated in place).
    """
    stats = stats if stats is not None else UnitPureStats()
    while True:
        constant = state.is_constant()
        if constant is not None:
            return constant
        info = detect_unit_pure(state.aig, state.root)
        if not info:
            return None
        stats.rounds += 1
        progress = False
        for var, forced in info.units.items():
            if not state.prefix.quantifies(var):
                continue
            if state.prefix.is_universal(var):
                # Theorem 5: a unit universal variable falsifies the DQBF.
                return False
            state.root = state.aig.cofactor(state.root, var, forced)
            state.prefix.remove_existential(var)
            stats.units_eliminated += 1
            progress = True
        for var, polarity in info.pures.items():
            if not state.prefix.quantifies(var):
                continue
            if state.prefix.is_existential(var):
                state.root = state.aig.cofactor(state.root, var, polarity)
                state.prefix.remove_existential(var)
            else:
                # Universal pure: substitute the adverse polarity.
                state.root = state.aig.cofactor(state.root, var, not polarity)
                state.prefix.remove_universal(var)
            stats.pures_eliminated += 1
            progress = True
        if not progress:
            return None
