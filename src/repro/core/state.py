"""The AIG-backed DQBF state manipulated by the elimination engine.

After preprocessing, HQS trades the CNF matrix for an AIG; the state
couples that AIG (a root edge in a shared manager) with the dependency
prefix and a fresh-variable counter for the copies that Theorem 1
introduces.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aig.graph import FALSE, TRUE, Aig
from ..formula.prefix import DependencyPrefix


class AigDqbf:
    """A DQBF whose matrix lives in an AIG.

    ``root`` and ``aig`` are properties: assigning either invalidates
    the memoized live-cone size (``matrix_size``), so solver loops can
    poll the size every iteration without re-walking the cone.
    """

    def __init__(self, aig: Aig, root: int, prefix: DependencyPrefix, next_var: int):
        self._aig = aig
        self._root = root
        self.prefix = prefix
        self.next_var = next_var
        self._matrix_size: Optional[int] = None

    @property
    def aig(self) -> Aig:
        return self._aig

    @aig.setter
    def aig(self, manager: Aig) -> None:
        self._aig = manager
        self._matrix_size = None

    @property
    def root(self) -> int:
        return self._root

    @root.setter
    def root(self, edge: int) -> None:
        self._root = edge
        self._matrix_size = None

    def fresh_var(self) -> int:
        var = self.next_var
        self.next_var += 1
        return var

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def support(self) -> frozenset:
        if self.root in (TRUE, FALSE):
            return frozenset()
        return self.aig.support_of(self.root)

    def prune_prefix(self) -> None:
        """Remove prefix variables that no longer occur in the matrix."""
        self.prefix.restrict_to(self.support())

    def is_constant(self) -> Optional[bool]:
        if self.root == TRUE:
            return True
        if self.root == FALSE:
            return False
        return None

    def matrix_size(self) -> int:
        """AND-node count of the live cone (the |phi| of the paper).

        Memoized until the next ``root``/``aig`` assignment — the solver
        loop polls this every iteration for compaction and node-budget
        checks, which used to cost one full cone walk each.
        """
        if self.root in (TRUE, FALSE):
            return 0
        if self._matrix_size is None:
            self._matrix_size = self.aig.cone_size(self.root)
        return self._matrix_size

    def compact(self) -> None:
        """Garbage-collect the AIG manager, keeping only the live cone."""
        fresh, (root,) = self.aig.extract([self.root])
        self.aig = fresh
        self.root = root

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        if self.root == TRUE:
            return True
        if self.root == FALSE:
            return False
        return self.aig.evaluate(self.root, assignment)

    def __repr__(self) -> str:
        return (
            f"AigDqbf(|phi|={self.matrix_size()}, "
            f"A={len(self.prefix.universals)}, E={len(self.prefix.existentials)})"
        )
