"""Minimum elimination set via partial MaxSAT (Eqs. 1 and 2 of the paper).

For every pair of existential variables with incomparable dependency
sets we must eliminate either all universals in ``D_y \\ D_y'`` or all
in ``D_y' \\ D_y``.  Introducing a MaxSAT variable ``x̂`` per universal
(``x̂ = 1`` means "eliminate x"), the hard constraint per pair is the
disjunction of the two conjunctions (Eq. 1), and the soft constraints
``¬x̂`` (Eq. 2) make the MaxSAT optimum a *minimum* elimination set.

The conjunction-of-conjunctions shape of Eq. 1 is not CNF; we Tseitinize
each pair with one selector variable, which preserves the optimum.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..formula.prefix import DependencyPrefix
from ..maxsat.solver import PartialMaxSatSolver
from .depgraph import incomparable_pairs


class SelectionResult:
    """Universal variables to eliminate, plus bookkeeping for statistics.

    ``conflicts``/``decisions`` mirror the underlying
    :class:`~repro.maxsat.solver.MaxSatResult` search effort and are
    exported by HQS as ``maxsat_conflicts``/``maxsat_decisions``.
    """

    def __init__(
        self,
        variables: List[int],
        num_pairs: int,
        maxsat_time: float,
        conflicts: int = 0,
        decisions: int = 0,
    ):
        self.variables = variables
        self.num_pairs = num_pairs
        self.maxsat_time = maxsat_time
        self.conflicts = conflicts
        self.decisions = decisions

    def __repr__(self) -> str:
        return f"SelectionResult({self.variables}, pairs={self.num_pairs})"


def select_elimination_set(
    prefix: DependencyPrefix,
    conflict_limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SelectionResult:
    """Compute a minimum set of universals whose elimination yields a QBF.

    ``conflict_limit``/``deadline`` bound the MaxSAT search; going over
    budget raises :class:`~repro.errors.StageBudgetExceeded` (the
    degradation ladder in HQS then falls back to
    :func:`greedy_elimination_set`).
    """
    pairs = incomparable_pairs(prefix)
    if not pairs:
        return SelectionResult([], 0, 0.0)

    start = time.monotonic()
    universals = prefix.universals
    index: Dict[int, int] = {x: i + 1 for i, x in enumerate(universals)}
    next_var = len(universals)

    solver = PartialMaxSatSolver()
    for y, y_prime in pairs:
        d_y = prefix.dependencies(y)
        d_yp = prefix.dependencies(y_prime)
        left = sorted(d_y - d_yp)
        right = sorted(d_yp - d_y)
        # selector s: s -> eliminate all of `left`; !s -> all of `right`.
        next_var += 1
        selector = next_var
        for x in left:
            solver.add_hard([-selector, index[x]])
        for x in right:
            solver.add_hard([selector, index[x]])
    for x in universals:
        solver.add_soft([-index[x]])

    result = solver.solve(conflict_limit=conflict_limit, deadline=deadline)
    if not result.satisfiable:  # pragma: no cover - Eq. 1 is always satisfiable
        raise AssertionError("elimination-set MaxSAT instance must be satisfiable")
    chosen = [x for x in universals if result.model.get(index[x], False)]
    elapsed = time.monotonic() - start
    return SelectionResult(
        chosen,
        len(pairs),
        elapsed,
        conflicts=result.conflicts,
        decisions=result.decisions,
    )


def greedy_elimination_set(prefix: DependencyPrefix) -> SelectionResult:
    """Cheap, sound (not minimum) elimination set by greedy pair covering.

    The degradation fallback when the MaxSAT search blows its budget:
    every incomparable pair needs all of ``D_y \\ D_y'`` or all of
    ``D_y' \\ D_y`` eliminated; repeatedly commit the universal variable
    occurring in the most unresolved pair differences until every pair
    has one side fully covered.  Pure dependency-graph arithmetic — no
    SAT calls — so it cannot itself run away, and the result is always a
    valid elimination set (each pair ends up resolved), merely possibly
    larger than the MaxSAT optimum.
    """
    start = time.monotonic()
    pairs = incomparable_pairs(prefix)
    if not pairs:
        return SelectionResult([], 0, 0.0)

    sides: List[Tuple[Set[int], Set[int]]] = []
    for y, y_prime in pairs:
        d_y = prefix.dependencies(y)
        d_yp = prefix.dependencies(y_prime)
        sides.append((set(d_y - d_yp), set(d_yp - d_y)))

    chosen: Set[int] = set()

    def resolved(pair: Tuple[Set[int], Set[int]]) -> bool:
        left, right = pair
        return left <= chosen or right <= chosen

    unresolved = [pair for pair in sides if not resolved(pair)]
    while unresolved:
        votes: Dict[int, int] = {}
        for left, right in unresolved:
            for x in left | right:
                if x not in chosen:
                    votes[x] = votes.get(x, 0) + 1
        # max votes, ties broken by variable number for determinism
        best = min(votes, key=lambda x: (-votes[x], x))
        chosen.add(best)
        unresolved = [pair for pair in unresolved if not resolved(pair)]

    ordered = [x for x in prefix.universals if x in chosen]
    return SelectionResult(ordered, len(pairs), time.monotonic() - start)


def order_by_copy_cost(
    prefix: DependencyPrefix, candidates: Sequence[int]
) -> List[int]:
    """Order elimination candidates by the number of existential copies
    their elimination would introduce (cheapest first), as in Section III-C."""
    costs: List[Tuple[int, int]] = []
    for x in candidates:
        costs.append((len(prefix.dependents_of(x)), x))
    costs.sort()
    return [x for _, x in costs]
