"""Variable elimination on the AIG-backed DQBF state (Theorems 1 and 2).

*Universal elimination* (Theorem 1) replaces

    forall x ... : phi

by ``phi[0/x] ∧ phi[1/x][y'/y for y in E_x]`` where ``E_x`` are the
existential variables depending on ``x``; each gets a fresh copy ``y'``
with dependency set ``D_y \\ {x}`` in the 1-cofactor.  This is the step
that can blow up the formula — HQS therefore eliminates only a minimum
set of universals (see :mod:`repro.core.selection`).

*Existential elimination* (Theorem 2) is the cheap dual: when ``y``
depends on *all* universal variables of the formula it can be
eliminated as in QBF by ``phi[0/y] ∨ phi[1/y]`` without any copies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .guard import ResourceGuard
from .state import AigDqbf


def eliminate_universal(
    state: AigDqbf,
    x: int,
    fused: bool = True,
    guard: Optional[ResourceGuard] = None,
) -> Dict[int, int]:
    """Apply Theorem 1 to ``x``; returns the ``{y: y'}`` copy map.

    With ``fused=True`` (the default) both cofactors and the dependent
    rename come out of one :meth:`~repro.aig.graph.Aig.eliminate_universal_fused`
    cone traversal, and the copy decision reuses that pass's support
    data.  ``fused=False`` keeps the original four-pass rebuild chain
    (two cofactors, a support walk, a rename) as a reference
    implementation for equivalence testing and kernel benchmarks.

    ``guard`` (optional) charges the post-elimination cone size against
    the node budget immediately — Theorem 1 is where the matrix blows
    up, and waiting for the caller's next loop-head check would let one
    bad elimination overshoot the budget by a whole conjunction.
    """
    if not state.prefix.is_universal(x):
        raise ValueError(f"{x} is not a universal variable")
    aig = state.aig

    # A universal absent from the matrix has identical cofactors; both
    # theorems degenerate to dropping it from the prefix (copying the
    # dependents would only duplicate the conjunct).
    if state.root < 2 or x not in aig.support_of(state.root):
        state.prefix.remove_universal(x)
        return {}

    dependents = state.prefix.dependents_of(x)

    if fused:
        cofactor0, cofactor1, copies = aig.eliminate_universal_fused(
            state.root, x, dependents, state.fresh_var
        )
    else:
        cofactor0 = aig.cofactor(state.root, x, False)
        cofactor1 = aig.cofactor(state.root, x, True)

        copies = {}
        # Only rename variables that actually occur in the 1-cofactor; the
        # others need no copy (their two copies would be mergeable anyway,
        # and skipping them keeps the formula small).
        support1 = aig.support(cofactor1) if cofactor1 > 1 else set()
        for y in dependents:
            if y in support1:
                copies[y] = state.fresh_var()
        if copies:
            cofactor1 = aig.rename(cofactor1, copies)

    state.root = aig.land(cofactor0, cofactor1)
    # Prefix update: new copies inherit D_y minus x, then x disappears
    # from every dependency set.
    for y, y_copy in copies.items():
        state.prefix.add_existential(y_copy, state.prefix.dependencies(y) - {x})
    state.prefix.remove_universal(x)
    if guard is not None:
        guard.check_nodes(state.matrix_size())
    return copies


def eliminate_existential(state: AigDqbf, y: int, fused: bool = True) -> None:
    """Apply Theorem 2 to ``y`` (requires ``D_y`` = all universals)."""
    prefix = state.prefix
    if not prefix.is_existential(y):
        raise ValueError(f"{y} is not an existential variable")
    if prefix.dependencies(y) != frozenset(prefix.universals):
        raise ValueError(
            f"existential {y} does not depend on all universal variables"
        )
    aig = state.aig
    if fused:
        cofactor0, cofactor1 = aig.cofactor2(state.root, y)
    else:
        cofactor0 = aig.cofactor(state.root, y, False)
        cofactor1 = aig.cofactor(state.root, y, True)
    state.root = aig.lor(cofactor0, cofactor1)
    prefix.remove_existential(y)


def eliminable_existentials(state: AigDqbf) -> List[int]:
    """Existential variables currently eligible for Theorem 2."""
    prefix = state.prefix
    all_universals = frozenset(prefix.universals)
    return [
        y for y in prefix.existentials if prefix.dependencies(y) == all_universals
    ]


def universal_elimination_cost(state: AigDqbf, x: int) -> int:
    """Number of existential copies Theorem 1 would introduce for ``x``."""
    return len(state.prefix.dependents_of(x))


def universal_growth_estimate(state: AigDqbf, x: int) -> int:
    """Estimated AIG growth of eliminating ``x``: the number of AND nodes
    in the live cone that structurally depend on ``x``.

    Those are exactly the nodes the two cofactors cannot share, so the
    count upper-bounds the duplication Theorem 1 causes.  This is the
    "more sophisticated ordering" direction named as future work in the
    paper's conclusion; exposed via ``HqsOptions(elimination_order)``.
    """
    aig = state.aig
    if state.root in (0, 1):
        return 0
    if x not in aig.support_of(state.root):
        return 0
    # One dependency sweep over the node arrays (vectorized on the numpy
    # backend, support-cache lookups on the python backend).
    return aig.count_depending_ands(state.root, x)
