"""Solver results, resource limits and statistics.

The paper's experiments censor runs at a wall-clock timeout ("TO") and a
memory limit ("MO").  We reproduce both: :class:`Limits` carries a time
budget and an AIG node budget (the node count is the dominant memory
consumer of an elimination-based solver, so it stands in for the 8 GB
memout of the paper).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..errors import (
    FailureDiagnosis,
    NodeLimitExceeded,
    ResourceExhausted,
    TimeoutExceeded,
)
from .guard import ResourceGuard

SAT = "SAT"
UNSAT = "UNSAT"
TIMEOUT = "TIMEOUT"
MEMOUT = "MEMOUT"
UNKNOWN = "UNKNOWN"
#: The solver process died (uncaught exception, signal, lost worker).
ERROR = "ERROR"
#: The solver returned a definitive answer contradicting the instance's
#: known expected status — a solver bug surfaced by the harness.
MISMATCH = "MISMATCH"


class Limits:
    """Per-solve resource budget."""

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        conflict_limit: Optional[int] = None,
    ):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.conflict_limit = conflict_limit
        self._start = time.monotonic()

    def guard(self) -> ResourceGuard:
        """A fresh :class:`ResourceGuard` over this budget (clock starts now)."""
        return ResourceGuard.from_limits(self)

    def restart_clock(self) -> None:
        self._start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining(self) -> Optional[float]:
        """Time budget left on this clock (never negative), ``None`` if unlimited."""
        if self.time_limit is None:
            return None
        return max(0.0, self.time_limit - self.elapsed())

    def child(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> "Limits":
        """A fresh-clock budget bounded by what is *left* of this one.

        Solvers call :meth:`restart_clock`, so handing the same
        :class:`Limits` to a second solve silently doubles the time
        budget.  Sequential phases (certificate extraction after the
        main solve) and racing phases (portfolio legs started while the
        clock runs) must instead carve a child budget out of the
        remaining time.  Explicit ``time_limit``/``node_limit`` values
        are capped at the parent's remaining budget, never extend it.
        """
        rem = self.remaining()
        if time_limit is None:
            child_time = rem
        elif rem is None:
            child_time = time_limit
        else:
            child_time = min(time_limit, rem)
        if node_limit is None:
            child_nodes = self.node_limit
        elif self.node_limit is None:
            child_nodes = node_limit
        else:
            child_nodes = min(node_limit, self.node_limit)
        return Limits(
            time_limit=child_time,
            node_limit=child_nodes,
            conflict_limit=self.conflict_limit,
        )

    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic`` timestamp of the time budget, if any."""
        if self.time_limit is None:
            return None
        return self._start + self.time_limit

    def check_time(self) -> None:
        if self.time_limit is not None and self.elapsed() > self.time_limit:
            raise TimeoutExceeded()

    def check_nodes(self, num_nodes: int) -> None:
        if self.node_limit is not None and num_nodes > self.node_limit:
            raise NodeLimitExceeded()

    def copy(self) -> "Limits":
        fresh = Limits(self.time_limit, self.node_limit, self.conflict_limit)
        fresh._start = self._start
        return fresh


class SolveResult:
    """Outcome of a solver run.

    ``status`` is one of :data:`SAT`, :data:`UNSAT`, :data:`TIMEOUT`,
    :data:`MEMOUT`, :data:`UNKNOWN`, :data:`ERROR`, :data:`MISMATCH`.
    ``stats`` carries solver-specific counters grouped by prefix:
    ``pre_*`` (CNF preprocessing), ``maxsat_*`` (elimination-set
    selection, incl. ``maxsat_conflicts``/``maxsat_decisions``),
    ``kernel_*`` (AIG kernel work, see
    :class:`~repro.aig.graph.KernelCounters`), ``sat_*`` (the
    incremental SAT service, see
    :class:`~repro.sat.incremental.SatServiceStats` — queries,
    conflicts, clauses encoded, encode cache hits, learned-clause
    reuse, counterexamples absorbed), ``qbf_*`` (the QBF back-end),
    ``degrade_*`` (the degradation ladder) and the elimination/unit-pure
    counts.

    ``failure`` is ``None`` on a definitive answer; on a
    resource-limited :data:`UNKNOWN` it carries the
    :class:`~repro.errors.FailureDiagnosis` — which pipeline stage ran
    out of which budget, and how far it had come.
    """

    def __init__(
        self,
        status: str,
        runtime: float = 0.0,
        stats: Optional[Dict[str, float]] = None,
        failure: Optional[FailureDiagnosis] = None,
    ):
        self.status = status
        self.runtime = runtime
        self.stats = stats or {}
        self.failure = failure

    @property
    def solved(self) -> bool:
        return self.status in (SAT, UNSAT)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the JSONL result log)."""
        entry: Dict[str, object] = {
            "status": self.status,
            "runtime": self.runtime,
            "stats": dict(self.stats),
        }
        if self.failure is not None:
            entry["failure"] = self.failure.as_dict()
        return entry

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SolveResult":
        failure = data.get("failure")
        return cls(
            status=str(data["status"]),
            runtime=float(data.get("runtime", 0.0)),
            stats=dict(data.get("stats") or {}),
            failure=FailureDiagnosis.from_dict(failure) if failure else None,
        )

    def __repr__(self) -> str:
        if self.failure is not None:
            return (
                f"SolveResult({self.status}, {self.runtime:.3f}s, "
                f"failure={self.failure.stage}/{self.failure.resource})"
            )
        return f"SolveResult({self.status}, {self.runtime:.3f}s)"


def exhausted_result(
    exc: ResourceExhausted,
    guard: ResourceGuard,
    runtime: float,
    stats: Optional[Dict[str, float]] = None,
) -> SolveResult:
    """The structured :data:`UNKNOWN` verdict for a budget-exhausted solve.

    Every solver front end funnels a caught
    :class:`~repro.errors.ResourceExhausted` through this: the verdict
    is ``UNKNOWN`` (never a traceback, never a bare TO/MO string) and
    ``failure`` carries the diagnosis — from the exception when the
    raising guard attached one, else synthesized from the catching
    solver's own guard.
    """
    failure = exc.diagnosis or guard.diagnosis(exc.resource)
    return SolveResult(UNKNOWN, runtime, stats or {}, failure=failure)
