"""Solver results, resource limits and statistics.

The paper's experiments censor runs at a wall-clock timeout ("TO") and a
memory limit ("MO").  We reproduce both: :class:`Limits` carries a time
budget and an AIG node budget (the node count is the dominant memory
consumer of an elimination-based solver, so it stands in for the 8 GB
memout of the paper).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..errors import NodeLimitExceeded, TimeoutExceeded

SAT = "SAT"
UNSAT = "UNSAT"
TIMEOUT = "TIMEOUT"
MEMOUT = "MEMOUT"
UNKNOWN = "UNKNOWN"


class Limits:
    """Per-solve resource budget."""

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self._start = time.monotonic()

    def restart_clock(self) -> None:
        self._start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic`` timestamp of the time budget, if any."""
        if self.time_limit is None:
            return None
        return self._start + self.time_limit

    def check_time(self) -> None:
        if self.time_limit is not None and self.elapsed() > self.time_limit:
            raise TimeoutExceeded()

    def check_nodes(self, num_nodes: int) -> None:
        if self.node_limit is not None and num_nodes > self.node_limit:
            raise NodeLimitExceeded()

    def copy(self) -> "Limits":
        fresh = Limits(self.time_limit, self.node_limit)
        fresh._start = self._start
        return fresh


class SolveResult:
    """Outcome of a solver run.

    ``status`` is one of :data:`SAT`, :data:`UNSAT`, :data:`TIMEOUT`,
    :data:`MEMOUT`, :data:`UNKNOWN`.  ``stats`` carries solver-specific
    counters (eliminations performed, unit/pure hits, MaxSAT time, ...).
    """

    def __init__(
        self,
        status: str,
        runtime: float = 0.0,
        stats: Optional[Dict[str, float]] = None,
    ):
        self.status = status
        self.runtime = runtime
        self.stats = stats or {}

    @property
    def solved(self) -> bool:
        return self.status in (SAT, UNSAT)

    def __repr__(self) -> str:
        return f"SolveResult({self.status}, {self.runtime:.3f}s)"
