"""Crash-safe record framing: CRC-32 + length headers for disk state.

Atomic rename already protects the cache/checkpoint files against a
kill *between* write and rename — but not against torn writes (power
loss mid-``write``, a filesystem that reorders the data and the
rename), bit rot, or a concurrent writer scribbling over the file.
Before this module, a torn ``<fingerprint>.json`` either failed JSON
parsing (silent cache miss) or — worse — parsed as a *valid prefix*
payload and served a wrong answer.

Every durable artifact therefore carries an integrity frame:

whole files (cache results, checkpoints)
    a one-line ASCII header ``#repro-crc32 v1 <length> <crc32>\\n``
    followed by the payload bytes.  :func:`read_framed` verifies both
    the length and the CRC before anything parses the payload.

JSONL records (result logs)
    each line becomes ``<payload> #crc32:<hex8>\\n`` — the checksum
    trails the record so a torn append is missing (or corrupts) its
    own suffix and the line fails verification instead of loading as
    a shorter-but-valid JSON document.

Both framings are backward compatible: files/lines without the marker
are treated as *legacy* (pre-framing) content so existing cache
directories and logs keep working; they are re-framed the next time
they are written.

Corrupt files are **quarantined**, not deleted and not silently
skipped: :func:`quarantine` renames ``f`` to ``f.corrupt`` (keeping
the evidence for a post-mortem) and the caller counts it in its stats.

Fault injection: the write paths consult :mod:`repro.faults` through
the ``fault_site`` argument, so a chaos plan can tear or fail exactly
the Nth write of a given artifact kind.
"""

from __future__ import annotations

import os
import zlib
from typing import Optional, Tuple

from . import faults

#: Whole-file frame header marker (version bumps on layout changes).
FILE_MAGIC = b"#repro-crc32 v1 "

#: JSONL trailing-checksum marker.
LINE_MARKER = " #crc32:"

#: Suffix a corrupt file is renamed to by :func:`quarantine`.
QUARANTINE_SUFFIX = ".corrupt"


class CorruptRecordError(ValueError):
    """A framed file/line failed its length or CRC check."""


def _crc(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


# ----------------------------------------------------------------------
# whole-file framing
# ----------------------------------------------------------------------

def frame_file(payload: bytes) -> bytes:
    """Prepend the length+CRC header line to ``payload``."""
    header = FILE_MAGIC + f"{len(payload)} {_crc(payload)}\n".encode("ascii")
    return header + payload


def unframe_file(blob: bytes) -> bytes:
    """Verify and strip a whole-file frame.

    Legacy (unframed) blobs are returned as-is; framed blobs whose
    length or CRC disagree raise :class:`CorruptRecordError`.
    """
    if not blob.startswith(FILE_MAGIC):
        return blob  # legacy pre-framing file
    newline = blob.find(b"\n", len(FILE_MAGIC))
    if newline < 0:
        raise CorruptRecordError("framed file is truncated inside its header")
    header = blob[len(FILE_MAGIC):newline]
    payload = blob[newline + 1:]
    try:
        length_text, crc_text = header.decode("ascii").split()
        length = int(length_text)
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptRecordError(f"unparsable frame header {header!r}") from exc
    if len(payload) != length:
        raise CorruptRecordError(
            f"torn write: frame promises {length} payload bytes, "
            f"file has {len(payload)}"
        )
    if _crc(payload) != crc_text:
        raise CorruptRecordError(
            f"checksum mismatch: header {crc_text}, payload {_crc(payload)}"
        )
    return payload


def write_framed(
    path: str,
    payload: bytes,
    fsync: bool = True,
    fault_site: Optional[str] = None,
) -> None:
    """Atomically write ``payload`` under a CRC frame.

    ``fault_site`` names the :mod:`repro.faults` injection site of this
    write; a scheduled ``ioerror`` raises :class:`OSError`, a ``torn``
    fault leaves the *destination* file holding a prefix of the framed
    record (the worst case the frame exists to catch) while reporting
    success to the caller.
    """
    fault = faults.fire(fault_site) if fault_site else None
    framed = frame_file(payload)
    if fault is not None and fault.kind == "ioerror":
        raise OSError(f"injected ioerror at {fault_site} ({fault.spec()})")
    if fault is not None and fault.kind == "torn":
        keep = max(1, int(len(framed) * fault.args.get("keep", 0.5)))
        with open(path, "wb") as handle:
            handle.write(framed[:keep])
        return
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(framed)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def read_framed(path: str) -> bytes:
    """Read and verify a framed file (legacy unframed files pass through).

    Raises :class:`OSError` if unreadable, :class:`CorruptRecordError`
    if the frame check fails.
    """
    with open(path, "rb") as handle:
        return unframe_file(handle.read())


# ----------------------------------------------------------------------
# JSONL line framing
# ----------------------------------------------------------------------

def frame_line(payload: str) -> str:
    """One log line with its trailing checksum (newline included)."""
    if "\n" in payload:
        raise ValueError("log records must be single-line")
    return payload + LINE_MARKER + _crc(payload.encode("utf-8")) + "\n"


def unframe_line(line: str) -> Tuple[str, str]:
    """Split one log line into ``(payload, verdict)``.

    ``verdict`` is ``"ok"`` (checksum verified), ``"legacy"`` (no
    checksum marker — a pre-framing record, accepted), or
    ``"corrupt"`` (marker present but the checksum disagrees, or the
    marker itself was torn off mid-write).
    """
    line = line.rstrip("\n")
    at = line.rfind(LINE_MARKER)
    if at < 0:
        return line, "legacy"
    payload, suffix = line[:at], line[at + len(LINE_MARKER):]
    if len(suffix) != 8 or _crc(payload.encode("utf-8")) != suffix:
        return payload, "corrupt"
    return payload, "ok"


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------

def quarantine(path: str) -> Optional[str]:
    """Move a corrupt file out of the way (``path`` -> ``path.corrupt``).

    Keeps the bytes for diagnosis instead of deleting them, and keeps
    the hot path clean instead of re-tripping on the same file.  An
    existing quarantine of the same name is overwritten (the newest
    corruption wins).  Returns the quarantine path, or ``None`` if the
    rename itself failed (the caller then just skips the file).
    """
    target = path + QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target
