#!/usr/bin/env python3
"""Mini Section-IV experiment: HQS vs iDQ vs expansion on fresh instances.

Generates a small pool from the paper's benchmark families, runs all
three solvers under a per-instance timeout and prints a compact version
of Table I plus the Fig. 4 headline numbers.  For the full harness use::

    python -m repro.experiments.table1
    python -m repro.experiments.fig4
    pytest benchmarks/ --benchmark-only
"""

from repro.baselines import IdqSolver, solve_expansion
from repro.core import HqsSolver, Limits
from repro.pec import generate_family

FAMILIES = ("adder", "bitcell", "pec_xor", "z4")
TIMEOUT = 5.0


def main() -> None:
    instances = []
    for family in FAMILIES:
        instances.extend(generate_family(family, count=3, scale=1.0, seed=99))

    print(f"{'instance':<42} {'HQS':>14} {'IDQ':>14} {'EXPANSION':>14}")
    wins = {"HQS": 0, "IDQ": 0, "EXPANSION": 0}
    for instance in instances:
        row = [f"{instance.name:<42}"]
        timings = {}
        for name, run in (
            ("HQS", lambda f: HqsSolver().solve(f, Limits(time_limit=TIMEOUT))),
            ("IDQ", lambda f: IdqSolver().solve(f, Limits(time_limit=TIMEOUT))),
            ("EXPANSION", lambda f: solve_expansion(f, Limits(time_limit=TIMEOUT))),
        ):
            result = run(instance.formula.copy())
            timings[name] = (result.status, result.runtime)
            row.append(f"{result.status:>7} {result.runtime:5.2f}s")
        print(" ".join(row))
        solved = {n: s for n, (s, _) in timings.items() if s in ("SAT", "UNSAT")}
        if solved:
            fastest = min(solved, key=lambda n: timings[n][1])
            wins[fastest] += 1

    print("\nfastest-solver wins:", wins)
    print("(the paper's Fig. 4: HQS below the diagonal on almost every instance)")


if __name__ == "__main__":
    main()
