#!/usr/bin/env python3
"""Distributed strategies for incomplete-information games via DQBF.

The paper's introduction names "the analysis of non-cooperative games
with incomplete information" (Peterson, Reif, Azhar) as a DQBF
application.  Here a team of players with *different partial views* of
an adversary's choices must coordinate — each player's strategy is a
Skolem function over its own observation, so distributed winnability is
exactly DQBF satisfiability, and HQS doubles as a strategy synthesizer.
"""

import itertools

from repro.games import BooleanGame, blind_coordination, matching_pennies_team


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Team matching pennies: the adversary hides two bits, player i
    #    sees only bit i, and the XOR of the team's moves must equal the
    #    XOR of the hidden bits.  With QBF one player would have to see
    #    both bits; with DQBF the true observation structure is exact.
    # ------------------------------------------------------------------
    game = matching_pennies_team(2)
    print(f"team matching pennies: {game}")
    formula = game.to_dqbf()
    print(f"  as DQBF: {formula.prefix!r}")
    print(f"  QBF-expressible? {formula.is_qbf()}")
    print(f"  winnable? {game.has_winning_strategy()}")

    strategies = game.winning_strategies()
    for name in sorted(strategies):
        table = strategies[name]
        rows = ", ".join(
            f"{''.join(str(int(b)) for b in key)}->{int(value)}"
            for key, value in sorted(table.as_full_table().items())
        )
        print(f"  strategy for {name}: {rows}")

    print("  verifying on all plays:", end=" ")
    wins = all(
        game.play(strategies, dict(zip(["x0", "x1"], values)))
        for values in itertools.product([False, True], repeat=2)
    )
    print("team wins every play!" if wins else "BUG")

    # ------------------------------------------------------------------
    # 2. Blind coordination: nobody sees the coin, so no strategy exists.
    # ------------------------------------------------------------------
    blind = blind_coordination(2)
    print(f"\nblind coordination: winnable? {blind.has_winning_strategy()}")

    # ------------------------------------------------------------------
    # 3. A custom game: a relay.  The adversary picks (a, b); player one
    #    sees a, player two sees b; they win iff exactly one move is
    #    true when a == b, and both moves agree when a != b.
    # ------------------------------------------------------------------
    relay = BooleanGame(["a", "b"])
    relay.add_player("p", ["a"])
    relay.add_player("q", ["b"])
    for va, vb in itertools.product([False, True], repeat=2):
        for vp, vq in itertools.product([False, True], repeat=2):
            good = (vp != vq) if va == vb else (vp == vq)
            if not good:
                relay.add_win_clause(
                    ("a", not va), ("b", not vb), ("p", not vp), ("q", not vq)
                )
    print(f"\nrelay game winnable? {relay.has_winning_strategy()}")
    strategies = relay.winning_strategies()
    if strategies:
        for name in sorted(strategies):
            print(f"  {name}: {strategies[name].as_full_table()}")


if __name__ == "__main__":
    main()
