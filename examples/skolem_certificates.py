#!/usr/bin/env python3
"""Skolem-function certificates: don't just answer SAT, prove it.

The paper decides DQBF without witnesses; its conclusion points to the
certification perspective of Balabanov et al.  This extension extracts
explicit Skolem functions — concrete implementations for the black
boxes of a PEC problem! — and verifies them independently.
"""

from repro.core.skolem import extract_certificate, verify_skolem
from repro.formula import Dqbf
from repro.pec import cut_black_boxes, encode_pec, xor_chain


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A hand-made DQBF: y1(x1) and y2(x2) must XOR to x1 xor x2.
    # ------------------------------------------------------------------
    x1, x2, y1, y2 = 1, 2, 3, 4
    formula = Dqbf.build(
        universals=[x1, x2],
        existentials=[(y1, [x1]), (y2, [x2])],
        # (y1 xor y2) == (x1 xor x2), clausified
        clauses=[
            [-y1, y2, x1, x2], [-y1, y2, -x1, -x2],
            [y1, -y2, x1, x2], [y1, -y2, -x1, -x2],
            [y1, y2, x1, -x2], [y1, y2, -x1, x2],
            [-y1, -y2, x1, -x2], [-y1, -y2, -x1, x2],
        ],
    )
    result, tables = extract_certificate(formula)
    print(f"status: {result.status}")
    for y, table in sorted(tables.items()):
        print(f"  Skolem function for y{y} over {table.deps}:")
        for key, value in sorted(table.as_full_table().items()):
            inputs = ", ".join(f"x{x}={int(v)}" for x, v in zip(table.deps, key))
            print(f"    {inputs} -> {int(value)}")
    print(f"independently verified: {verify_skolem(formula, tables)}")

    # ------------------------------------------------------------------
    # 2. A PEC instance: the certificate IS a black-box implementation.
    # ------------------------------------------------------------------
    spec = xor_chain(5)
    incomplete = cut_black_boxes(spec, ["t2"])  # cut one XOR stage out
    pec = encode_pec(spec, incomplete)
    result, tables = extract_certificate(pec)
    print(f"\nPEC instance: {result.status}")
    box = incomplete.black_boxes[0]
    # the box output's Skolem table is a truth table for the missing part
    box_output_var = next(
        y for y in pec.prefix.existentials
        if len(pec.prefix.dependencies(y)) == len(box.inputs)
    )
    table = tables[box_output_var]
    print(f"synthesized implementation for black box {box.name} "
          f"({' ,'.join(box.inputs)} -> {box.outputs[0]}):")
    for key, value in sorted(table.as_full_table().items()):
        bits = "".join(str(int(v)) for v in key)
        print(f"    {bits} -> {int(value)}")
    print("(an XOR truth table, as expected)")


if __name__ == "__main__":
    main()
