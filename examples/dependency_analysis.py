#!/usr/bin/env python3
"""Step through HQS's pipeline on a Henkin-quantified formula.

This example exposes the paper's machinery piece by piece instead of
calling the one-shot solver: dependency graph construction
(Definition 4), the cyclicity test (Theorems 3/4), the MaxSAT choice of
a minimum elimination set (Eqs. 1-2), Theorem 1 elimination, and the
final linearization to a QBF prefix.
"""

from repro.aig.cnf_bridge import cnf_to_aig
from repro.core import (
    dependency_edges,
    eliminate_universal,
    incomparable_pairs,
    is_acyclic,
    linearize,
    select_elimination_set,
)
from repro.core.state import AigDqbf
from repro.formula import Dqbf
from repro.qbf import solve_aig_qbf


def main() -> None:
    # forall x1 x2 x3  exists y1(x1,x2) y2(x2,x3) y3(x1,x3):
    # a "rock-paper-scissors" dependency structure — every pair of
    # existentials is incomparable, so the dependency graph is maximally
    # cyclic.  Matrix: each y_i must equal the parity of its two inputs.
    x1, x2, x3, y1, y2, y3 = 1, 2, 3, 4, 5, 6
    formula = Dqbf.build(
        universals=[x1, x2, x3],
        existentials=[(y1, [x1, x2]), (y2, [x2, x3]), (y3, [x1, x3])],
        clauses=[
            # y1 == x1 xor x2
            [-y1, x1, x2], [-y1, -x1, -x2], [y1, x1, -x2], [y1, -x1, x2],
            # y2 == x2 xor x3
            [-y2, x2, x3], [-y2, -x2, -x3], [y2, x2, -x3], [y2, -x2, x3],
            # y3 == x1 xor x3
            [-y3, x1, x3], [-y3, -x1, -x3], [y3, x1, -x3], [y3, -x1, x3],
        ],
    )

    # ------------------------------------------------------------------
    # 1. Dependency graph (Definition 4) and the cyclicity test.
    # ------------------------------------------------------------------
    print("dependency graph edges (y_i -> y_l iff D_i not a subset of D_l):")
    for a, b in dependency_edges(formula.prefix):
        print(f"  y{a} -> y{b}")
    print(f"acyclic (equivalent QBF prefix exists)? {is_acyclic(formula.prefix)}")
    print(f"binary cycles C_psi: {incomparable_pairs(formula.prefix)}")

    # ------------------------------------------------------------------
    # 2. Minimum elimination set via partial MaxSAT (Eqs. 1-2).
    # ------------------------------------------------------------------
    selection = select_elimination_set(formula.prefix)
    print(f"\nMaxSAT selection: eliminate {selection.variables} "
          f"({selection.num_pairs} pairs, {selection.maxsat_time * 1000:.1f} ms)")

    # ------------------------------------------------------------------
    # 3. Eliminate the selected universals with Theorem 1 on the AIG.
    # ------------------------------------------------------------------
    aig, root = cnf_to_aig(formula.matrix.clauses)
    state = AigDqbf(aig, root, formula.prefix.copy(), next_var=7)
    print(f"\ninitial matrix: {state.matrix_size()} AND nodes")
    for x in selection.variables:
        copies = eliminate_universal(state, x)
        print(
            f"eliminated x{x}: {len(copies)} existential copies, "
            f"matrix now {state.matrix_size()} AND nodes"
        )
    state.prune_prefix()
    print(f"acyclic now? {is_acyclic(state.prefix)}")

    # ------------------------------------------------------------------
    # 4. Linearize (constructive Theorem 3) and hand to the QBF back-end.
    # ------------------------------------------------------------------
    blocked = linearize(state.prefix)
    print(f"equivalent QBF prefix: {blocked}")
    answer = solve_aig_qbf(state.aig, state.root, blocked)
    print(f"QBF back-end answer: {'SAT' if answer else 'UNSAT'}")

    # cross-check with the one-shot solver
    from repro import solve_dqbf

    print(f"solve_dqbf agrees: {solve_dqbf(formula).status}")


if __name__ == "__main__":
    main()
