#!/usr/bin/env python3
"""Quickstart: build and solve DQBFs with the public API.

Covers the three entry points a new user needs:

1. constructing a DQBF programmatically (``Dqbf.build``),
2. solving with HQS (``solve_dqbf``) and reading results/statistics,
3. round-tripping through the DQDIMACS file format.
"""

from repro import Dqbf, HqsOptions, Limits, parse_dqdimacs, solve_dqbf, write_dqdimacs


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Example 1 of the paper: forall x1 x2 exists y1(x1) y2(x2).
    #    With matrix (y1 <-> x1) & (y2 <-> x2) the formula is satisfied:
    #    each y_i simply copies the one universal it observes.
    # ------------------------------------------------------------------
    x1, x2, y1, y2 = 1, 2, 3, 4
    formula = Dqbf.build(
        universals=[x1, x2],
        existentials=[(y1, [x1]), (y2, [x2])],
        clauses=[[-y1, x1], [y1, -x1], [-y2, x2], [y2, -x2]],
    )
    result = solve_dqbf(formula)
    print(f"identity Skolem functions: {result.status} in {result.runtime:.3f}s")

    # ------------------------------------------------------------------
    # 2. Flip one dependency: y1 must now equal x2, which it cannot see.
    #    No Skolem function exists -> UNSAT.  This is exactly the kind of
    #    non-linear dependency QBF cannot express (Example 1 / Fig. 2).
    # ------------------------------------------------------------------
    henkin = Dqbf.build(
        universals=[x1, x2],
        existentials=[(y1, [x1])],
        clauses=[[-y1, x2], [y1, -x2]],
    )
    result = solve_dqbf(henkin)
    print(f"invisible dependency:      {result.status} (expected UNSAT)")

    # ------------------------------------------------------------------
    # 3. Resource limits and solver statistics.
    # ------------------------------------------------------------------
    result = solve_dqbf(formula.copy(), limits=Limits(time_limit=10.0, node_limit=10**6))
    print("solver statistics:")
    for key in sorted(result.stats):
        print(f"  {key} = {result.stats[key]}")

    # ------------------------------------------------------------------
    # 4. Feature switches (the paper's optimizations can be toggled).
    # ------------------------------------------------------------------
    plain = solve_dqbf(formula.copy(), options=HqsOptions(use_unit_pure=False))
    print(f"without unit/pure detection: {plain.status} (same answer, more work)")

    # ------------------------------------------------------------------
    # 5. DQDIMACS text round trip.
    # ------------------------------------------------------------------
    text = write_dqdimacs(formula)
    print("\nDQDIMACS serialization:")
    print(text)
    reparsed = parse_dqdimacs(text)
    print(f"reparsed and solved: {solve_dqbf(reparsed).status}")


if __name__ == "__main__":
    main()
