#!/usr/bin/env python3
"""Partial equivalence checking of an incomplete adder.

The motivating application of the paper (Section I): a design team has a
4-bit ripple-carry adder specification, and an implementation in which
two carry-logic blocks are not yet written (black boxes).  Questions:

* Is the incomplete design *realizable* — can the missing blocks be
  implemented so the design matches the spec?  (PEC, encoded as DQBF.)
* After a bug sneaks into the finished part, can verification catch it
  even though the design is incomplete?

Crucially this needs DQBF, not QBF: each black box may only read its own
input signals, so the two boxes have *incomparable* dependency sets.
"""

from repro import Limits, solve_dqbf
from repro.pec import cut_black_boxes, encode_pec, inject_bug, ripple_adder


def main() -> None:
    bits = 4
    spec = ripple_adder(bits)
    print(f"specification: {spec}")

    # Cut the carry logic of bit positions 1 and 3 out as black boxes.
    incomplete = cut_black_boxes(spec, ["c2", "c4"])
    print(f"incomplete implementation: {incomplete}")
    for box in incomplete.black_boxes:
        print(f"  {box}")

    # ------------------------------------------------------------------
    # 1. Realizability of the clean incomplete design.
    # ------------------------------------------------------------------
    formula = encode_pec(spec, incomplete)
    print(
        f"\nPEC -> DQBF: {len(formula.prefix.universals)} universal, "
        f"{len(formula.prefix.existentials)} existential variables, "
        f"{len(formula.matrix)} clauses"
    )
    result = solve_dqbf(formula, limits=Limits(time_limit=60))
    print(f"realizable? {result.status}  ({result.runtime:.3f}s)")
    assert result.status == "SAT", "the original carry logic always fits"

    # ------------------------------------------------------------------
    # 2. Inject a bug into the *finished* part of the design: the sum
    #    gate of bit 0 becomes an OR.  No black-box implementation can
    #    repair logic outside the boxes -> unrealizable.
    # ------------------------------------------------------------------
    buggy = inject_bug(incomplete, "s0", subtle=True)
    formula = encode_pec(spec, buggy)
    result = solve_dqbf(formula, limits=Limits(time_limit=60))
    print(f"\nwith s0 bug: {result.status}  ({result.runtime:.3f}s)")
    assert result.status == "UNSAT", "verification catches the bug early"
    print("the bug is caught although two design blocks are still missing!")

    # ------------------------------------------------------------------
    # 3. Why DQBF?  Show the dependency structure that QBF cannot express.
    # ------------------------------------------------------------------
    from repro.core import incomparable_pairs

    formula = encode_pec(spec, incomplete)
    pairs = incomparable_pairs(formula.prefix)
    print(f"\nincomparable dependency pairs (binary cycles): {len(pairs)}")
    print("-> the dependency graph is cyclic; no equivalent QBF prefix exists")
    print("   (Theorem 3), which is why SAT/QBF-based PEC is only approximate.")


if __name__ == "__main__":
    main()
