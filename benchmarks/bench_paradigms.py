"""The three DQBF solving paradigms of Section II, head to head.

search-based [14] vs elimination-based ([10] and HQS) vs
instantiation-based (iDQ) on a pool of small PEC instances.  The
expected ordering — HQS in front, plain elimination behind it,
instantiation struggling on SAT instances, naive search last — is the
story the DATE'15 paper tells in its related-work discussion.
"""

from __future__ import annotations

import pytest

from repro.baselines.dpll import solve_dpll_dqbf
from repro.baselines.expansion import solve_expansion
from repro.baselines.idq import IdqSolver
from repro.core.hqs import HqsSolver
from repro.pec.families import make_adder, make_bitcell, make_pec_xor

PARADIGMS = {
    "HQS": lambda f, l: HqsSolver().solve(f, l),
    "EXPANSION": lambda f, l: solve_expansion(f, l),
    "IDQ": lambda f, l: IdqSolver().solve(f, l),
    "DPLL": solve_dpll_dqbf,
}


def _small_pool():
    return [
        make_adder(3, 1, buggy=False, seed=41),
        make_adder(3, 1, buggy=True, seed=42),
        make_bitcell(4, 1, buggy=True, seed=43),
        make_pec_xor(4, 1, buggy=False, seed=44),
    ]


@pytest.mark.parametrize("name", sorted(PARADIGMS))
def test_paradigm(benchmark, name, config):
    instances = _small_pool()
    solve = PARADIGMS[name]

    def run_pool():
        return [solve(inst.formula.copy(), config.limits()) for inst in instances]

    results = benchmark.pedantic(run_pool, rounds=1, iterations=1)
    solved = sum(1 for r in results if r.solved)
    benchmark.extra_info["solved"] = solved
    for instance, result in zip(instances, results):
        if result.solved and instance.expected is not None:
            expected = "SAT" if instance.expected else "UNSAT"
            assert result.status == expected, (name, instance.name)
    if name == "HQS":
        assert solved == len(instances)


def test_paradigm_ordering(benchmark, config):
    """HQS solves a superset of what every other paradigm solves here."""
    instances = _small_pool()

    def run_all():
        table = {}
        for name, solve in PARADIGMS.items():
            table[name] = [
                solve(inst.formula.copy(), config.limits()) for inst in instances
            ]
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    solved = {name: sum(1 for r in results if r.solved) for name, results in table.items()}
    print(f"\nparadigms solved: {solved}")
    for name in ("EXPANSION", "IDQ", "DPLL"):
        assert solved["HQS"] >= solved[name]
