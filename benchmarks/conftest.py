"""Shared benchmark fixtures.

The full paper suite (1820 instances, 2 h timeout) is a cluster
workload; these benchmarks run a scaled version controlled by
environment variables (see ``repro.experiments.runner.BenchConfig``):

    REPRO_BENCH_SCALE      family size multiplier   (default 1.0)
    REPRO_BENCH_COUNT      instances per family     (default 3 here)
    REPRO_BENCH_TIMEOUT    per-instance seconds     (default 3.0 here)
    REPRO_BENCH_NODELIMIT  AIG node budget          (default 200000)
    REPRO_BENCH_SEED       suite generation seed    (default 2015)
    REPRO_BENCH_JOBS       worker processes         (default 1 = serial)

With ``REPRO_BENCH_JOBS > 1`` the suite goes through the fault-tolerant
parallel runner (``repro.experiments.parallel``): per-instance worker
processes, hard wall-clock kills, and crash containment, so a hanging
solver costs one record instead of the session.

The suite of (instance, solver) records is computed once per pytest
session and shared by the Table I / Fig. 4 / ext-stats benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import BenchConfig, run_suite


def bench_config() -> BenchConfig:
    return BenchConfig(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        count=int(os.environ.get("REPRO_BENCH_COUNT", "3")),
        timeout=float(os.environ.get("REPRO_BENCH_TIMEOUT", "3.0")),
        node_limit=int(os.environ.get("REPRO_BENCH_NODELIMIT", "200000")),
    )


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return bench_config()


@pytest.fixture(scope="session")
def suite_records(config):
    """All (instance, solver) measurements for HQS and IDQ."""
    return run_suite(config, solvers=("HQS", "IDQ"), jobs=config.jobs)
