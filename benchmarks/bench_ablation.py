"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **A1** — MaxSAT-guided *minimum* elimination set (Sec. III-A) vs the
  [10]-style expansion of all universals: the selection must keep the
  number of Theorem-1 eliminations at (or below) the expansion count,
  and the solver must stay at least as capable.
* **A2** — unit/pure detection on AIGs (Sec. III-B): disabling it must
  not change answers; with it enabled HQS performs measurable unit/pure
  eliminations on circuit instances.
* **A3** — CNF preprocessing + Tseitin gate detection (Sec. III-C):
  gate detection removes auxiliary variables before AIG construction,
  shrinking the initial matrix.
"""

from __future__ import annotations


from repro.core.hqs import HqsOptions, HqsSolver
from repro.pec.families import generate_family

POOL_FAMILIES = ("adder", "lookahead", "pec_xor")


def _pool(config):
    instances = []
    for family in POOL_FAMILIES:
        instances.extend(generate_family(family, config.count, scale=config.scale, seed=31))
    return instances


def _run(instances, options, config):
    results = []
    for instance in instances:
        solver = HqsSolver(options)
        results.append(solver.solve(instance.formula.copy(), config.limits()))
    return results


def test_a1_maxsat_selection_vs_expansion(benchmark, config):
    instances = _pool(config)

    with_selection = benchmark.pedantic(
        lambda: _run(instances, HqsOptions(), config), rounds=1, iterations=1
    )
    without_selection = _run(
        instances,
        HqsOptions(use_maxsat_selection=False, use_qbf_backend=False, use_unit_pure=False),
        config,
    )
    solved_with = sum(1 for r in with_selection if r.solved)
    solved_without = sum(1 for r in without_selection if r.solved)
    print(f"\nA1: solved with selection {solved_with}, expansion-only {solved_without}")
    assert solved_with >= solved_without

    # the selected strategy never expands more universals than full expansion
    for sel, exp in zip(with_selection, without_selection):
        if sel.solved and exp.solved:
            assert sel.stats.get("universal_eliminations", 0) <= exp.stats.get(
                "universal_eliminations", 0
            )


def test_a2_unit_pure_detection(benchmark, config):
    instances = _pool(config)

    with_up = benchmark.pedantic(
        lambda: _run(instances, HqsOptions(), config), rounds=1, iterations=1
    )
    without_up = _run(instances, HqsOptions(use_unit_pure=False), config)

    answers_with = [r.status for r in with_up]
    answers_without = [r.status for r in without_up]
    for a, b in zip(answers_with, answers_without):
        if a in ("SAT", "UNSAT") and b in ("SAT", "UNSAT"):
            assert a == b

    total_hits = sum(
        r.stats.get("units_eliminated", 0)
        + r.stats.get("pures_eliminated", 0)
        + r.stats.get("qbf_unit_eliminations", 0)
        + r.stats.get("qbf_pure_eliminations", 0)
        for r in with_up
    )
    print(f"\nA2: unit/pure eliminations across pool: {total_hits}")
    assert total_hits > 0


def test_a4_sat_probe(benchmark, config):
    """The Section-IV suggestion: a single SAT call on the all-zero branch
    catches the instances iDQ refutes with one ground solve, without
    slowing anything else down measurably."""
    instances = generate_family("c432", max(config.count, 4), scale=config.scale, seed=77)
    bugged = [inst for inst in instances if inst.expected is False]

    probe_results = benchmark.pedantic(
        lambda: _run(bugged, HqsOptions(use_sat_probe=True), config),
        rounds=1,
        iterations=1,
    )
    plain_results = _run(bugged, HqsOptions(), config)

    solved_probe = sum(1 for r in probe_results if r.solved)
    solved_plain = sum(1 for r in plain_results if r.solved)
    probe_time = sum(r.runtime for r in probe_results)
    plain_time = sum(r.runtime for r in plain_results)
    print(
        f"\nA4: bugged c432 — probe solved {solved_probe}/{len(bugged)} in "
        f"{probe_time:.2f}s, plain solved {solved_plain}/{len(bugged)} in {plain_time:.2f}s"
    )
    assert solved_probe >= solved_plain
    hits = sum(r.stats.get("sat_probe_refuted", 0) for r in probe_results)
    assert hits >= 1


def test_a5_elimination_order(benchmark, config):
    """Future-work direction from the conclusion: variable order by
    estimated AIG growth instead of copy count.  Answers must agree; we
    report the matrix-size trajectories via the elimination counters."""
    instances = _pool(config)

    copies = benchmark.pedantic(
        lambda: _run(instances, HqsOptions(elimination_order="copies"), config),
        rounds=1,
        iterations=1,
    )
    growth = _run(instances, HqsOptions(elimination_order="growth"), config)

    agree = disagree = 0
    for a, b in zip(copies, growth):
        if a.solved and b.solved:
            assert a.status == b.status
            agree += 1
        else:
            disagree += 1
    time_copies = sum(r.runtime for r in copies if r.solved)
    time_growth = sum(r.runtime for r in growth if r.solved)
    print(
        f"\nA5: both-solved {agree} (censored {disagree}); "
        f"time copies {time_copies:.2f}s vs growth {time_growth:.2f}s"
    )
    assert agree > 0


def test_a3_preprocessing_and_gates(benchmark, config):
    instances = _pool(config)

    with_pre = benchmark.pedantic(
        lambda: _run(instances, HqsOptions(), config), rounds=1, iterations=1
    )
    without_pre = _run(instances, HqsOptions(use_preprocessing=False), config)

    for a, b in zip(with_pre, without_pre):
        if a.solved and b.solved:
            assert a.status == b.status

    gates = sum(r.stats.get("pre_gates_detected", 0) for r in with_pre)
    print(f"\nA3: Tseitin gates recovered across pool: {gates}")
    assert gates > 0

    # gate inlining shrinks the initial AIG matrix on average
    size_with = [
        r.stats["initial_matrix_size"]
        for r in with_pre
        if "initial_matrix_size" in r.stats
    ]
    size_without = [
        r.stats["initial_matrix_size"]
        for r in without_pre
        if "initial_matrix_size" in r.stats
    ]
    if size_with and size_without:
        print(
            f"A3: mean initial matrix size with pre {sum(size_with)/len(size_with):.1f} "
            f"vs without {sum(size_without)/len(size_without):.1f}"
        )
