"""Chaos soak: the service under a deterministic fault schedule.

The robustness claim of the serving stack is not "it has retry code"
but an end-to-end invariant: **under injected faults, every request
still gets exactly one correct answer** — the same verdict a direct,
fault-free solve of the formula produces — and the durable artifacts
(result log, disk cache) lose nothing silently.

This benchmark replays a repeat-heavy workload (the same shape as
``bench_service.py``) through a real :class:`ServiceServer` three ways:

1. **truth** — every unique formula solved directly in-process, no
   service, no faults: the ground-truth verdict map.
2. **clean** — the service with fault injection disabled: the baseline
   for latency and for the hook-overhead check.
3. **chaos** — the same schedule with a committed :class:`FaultPlan`
   covering worker crashes, wedges (hard-kill path), slowdowns,
   cooperative clock collapse, dropped response frames, torn and
   failing disk writes, and torn log appends — at least five distinct
   fault kinds.  Clients run with transparent transport retries plus
   bounded resubmission of transient statuses (``ERROR`` from a dead
   worker, ``TIMEOUT`` from a hard kill, budget-starved ``UNKNOWN``);
   resubmission is idempotent because solves are fingerprint-keyed
   server-side.

Checked invariants (see :func:`_check`):

* every chaos-mode reply is definitive and matches the truth map;
* zero log records silently lost (every missing record is accounted
  for by a *detected* corrupt line) and zero duplicated records;
* the worker pool shows the faults were real (deaths, hard kills) and
  healed (pool alive at the end, every answer still correct);
* a fresh cache over the same disk tier quarantines the torn entries
  on its startup recovery scan;
* with no plan installed, the fault hooks cost **< 2%** of a clean
  request (measured: per-call no-op cost x a generous hooks-per-request
  bound vs the clean run's p50 latency).

Recovery latency — wall-clock from first submission to the final
correct answer of requests that needed retries/resubmits — is recorded
in the report.

Run under pytest (`pytest benchmarks/bench_chaos.py`) or standalone:

    PYTHONPATH=src python benchmarks/bench_chaos.py

``REPRO_BENCH_CHAOS_QUICK=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro import faults
from repro.core.checkpoint import formula_fingerprint
from repro.core.hqs import HqsOptions, HqsSolver
from repro.core.result import Limits, SAT, UNSAT
from repro.experiments.parallel import ResultLog
from repro.faults import FaultPlan
from repro.formula.dqdimacs import parse_dqdimacs, write_dqdimacs
from repro.pec.families import make_comp
from repro.service import ServiceClient, ServiceConfig, ServiceServer, WorkerPool
from repro.service.cache import ResultCache
from repro.service.pool import DEFAULT_SOLVER_OPTIONS

from bench_service import start_server

QUICK = os.environ.get("REPRO_BENCH_CHAOS_QUICK", "") not in ("", "0")
NUM_REQUESTS = 60 if QUICK else 220
NUM_CLIENTS = 4
NUM_WORKERS = 2
SOLVE_BUDGET = 2.0     # per-request budget sent to the server
IO_TIMEOUT = 30.0      # client socket timeout (covers a wedge hard-kill)
RESUBMIT = 8           # transient-status resubmission budget per request
TRANSIENT = ("ERROR", "TIMEOUT", "UNKNOWN")
OVERHEAD_LIMIT_PCT = 2.0
#: Generous bound on fault-hook call sites one request can cross
#: (pool dispatch, per-universal checkpoint saves, cache store, log
#: append, response send).
HOOKS_PER_REQUEST = 32
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: The committed chaos schedule.  Event indices are per process (the
#: parent counts sends/writes, each worker slot counts its own solves,
#: with counters carried across respawns), chosen so every kind fires
#: even at the quick-mode request count: a slot that takes a crash at
#: its 2nd solve sees the resubmissions as events 3, 4, 5 — the clock,
#: wedge and slow faults — on the same slot.
PLAN_SPEC = ";".join([
    "pool.solve:crash@2",
    "pool.solve:clock@3,seconds=0.001",
    "pool.solve:wedge@4",
    "pool.solve:slow@5,seconds=0.2",
    "pool.solve:crash@9",
    "server.send:drop@4",
    "server.send:slow@8,seconds=0.1",
    "server.send:drop@23",
    "cache.write:torn@2",
    "cache.write:ioerror@4",
    "log.append:torn@3",
    "checkpoint.save:torn@1",
])


def unique_instances():
    """K unique formulas, alternating buggy (SAT) and correct (UNSAT)
    comparator miters so both verdicts are represented in the truth
    map.  Buggy instances vary by seed, correct ones by shape (a
    correct comparator of fixed shape is the same formula whatever the
    seed), so the fingerprints stay mostly distinct."""
    count = max(4, NUM_REQUESTS // 10)
    uniques = []
    for index in range(count):
        if index % 2 == 0:
            inst = make_comp(4, 2, True, seed=31 + index)
        else:
            shape = index // 2
            inst = make_comp(3 + shape % 3, 1 + shape % 2, False, seed=7)
        uniques.append((f"comp-{index}", write_dqdimacs(inst.formula)))
    return uniques


def request_schedule(uniques, seed: int = 20151):
    rng = random.Random(seed)
    schedule = list(range(len(uniques)))
    while len(schedule) < NUM_REQUESTS:
        schedule.append(rng.randrange(len(uniques)))
    return schedule


def ground_truth(uniques) -> List[Dict[str, object]]:
    """Direct, fault-free solve of every unique: the verdict map."""
    truths = []
    for _family, text in uniques:
        formula = parse_dqdimacs(text)
        solver = HqsSolver(HqsOptions(**DEFAULT_SOLVER_OPTIONS))
        result = solver.solve(formula, Limits(time_limit=60.0))
        assert result.status in (SAT, UNSAT), result.status
        truths.append({
            "status": result.status,
            "fingerprint": formula_fingerprint(formula),
        })
    return truths


# ----------------------------------------------------------------------
# one service run (clean or chaos)
# ----------------------------------------------------------------------

def run_service_mode(uniques, truths, schedule, tmp_dir: str,
                     label: str, plan) -> Dict[str, object]:
    """Replay the schedule against a live server; verify every reply."""
    faults.install(plan)
    try:
        return _run_service_mode(uniques, truths, schedule, tmp_dir,
                                 label, plan)
    finally:
        faults.install(None)


def _run_service_mode(uniques, truths, schedule, tmp_dir, label, plan):
    cache_dir = os.path.join(tmp_dir, f"{label}-cache")
    log_path = os.path.join(tmp_dir, f"{label}.jsonl")
    # Fork the warm workers before the server thread starts its loop.
    pool = WorkerPool(size=NUM_WORKERS, grace=0.75, fault_plan=plan,
                      heartbeat_interval=0.25)
    config = ServiceConfig(port=0, workers=NUM_WORKERS, cache_dir=cache_dir,
                           log_path=log_path, default_timeout=SOLVE_BUDGET,
                           drain_timeout=10.0)
    server, box, thread = start_server(config, pool)

    cursor_lock = threading.Lock()
    cursor = [0]
    records: List[Dict[str, object]] = []

    def client_loop():
        client = ServiceClient(port=server.port, timeout=IO_TIMEOUT,
                               retries=6, backoff=0.05)
        with client:
            while True:
                with cursor_lock:
                    if cursor[0] >= len(schedule):
                        return
                    position = cursor[0]
                    cursor[0] += 1
                unique = schedule[position]
                family, text = uniques[unique]
                retried_before = client.retried
                transients: List[str] = []
                started = time.perf_counter()
                reply = client.solve(text, family=family,
                                     timeout=SOLVE_BUDGET)
                while (str(reply.get("status")) in TRANSIENT
                       and len(transients) < RESUBMIT):
                    transients.append(str(reply.get("status")))
                    time.sleep(0.05 * len(transients))  # let the slot respawn
                    reply = client.solve(text, family=family,
                                         timeout=SOLVE_BUDGET)
                elapsed = time.perf_counter() - started
                with cursor_lock:
                    records.append({
                        "unique": unique,
                        "status": str(reply.get("status")),
                        "fingerprint": str(reply.get("fingerprint")),
                        "cache": str(reply.get("cache")),
                        "elapsed": elapsed,
                        "retries": client.retried - retried_before,
                        "transients": transients,
                    })

    started = time.perf_counter()
    clients = [threading.Thread(target=client_loop) for _ in range(NUM_CLIENTS)]
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    total = time.perf_counter() - started

    with ServiceClient(port=server.port, timeout=IO_TIMEOUT) as client:
        stats = client.stats()
        client.shutdown()
    thread.join(timeout=30.0)

    mismatched = sum(
        1 for r in records
        if r["status"] != truths[r["unique"]]["status"]
        or r["fingerprint"] != truths[r["unique"]]["fingerprint"]
    )
    impacted = [r for r in records if r["retries"] or r["transients"]]
    latencies = sorted(r["elapsed"] for r in records)
    transient_counts: Dict[str, int] = {}
    for r in records:
        for status in r["transients"]:
            transient_counts[status] = transient_counts.get(status, 0) + 1

    definitive = {r["fingerprint"] for r in records
                  if r["status"] in (SAT, UNSAT)}
    result_log = ResultLog(log_path)
    loaded = result_log.load()
    logged = [instance for instance, _solver in loaded]
    raw_keys = _raw_log_keys(log_path)
    lost = len(definitive - set(logged))

    # A crashed-and-restarted cache over the same disk tier must
    # quarantine whatever the fault schedule tore, not trip over it.
    recovery_cache = ResultCache(capacity=16, disk_dir=cache_dir,
                                 recover=False)
    recovery_scan = recovery_cache.recover()

    return {
        "total_s": total,
        "rps": len(records) / total,
        "p50_ms": 1000 * latencies[len(latencies) // 2],
        "p95_ms": 1000 * latencies[int(0.95 * (len(latencies) - 1))],
        "requests": len(records),
        "mismatched": mismatched,
        "statuses": _count(r["status"] for r in records),
        "cache_tags": _count(r["cache"] for r in records),
        "client_retries": sum(r["retries"] for r in records),
        "resubmits": sum(len(r["transients"]) for r in records),
        "transient_statuses": transient_counts,
        "recovery": _recovery_summary(impacted),
        "pool": stats["pool"],
        "cache": stats["cache"],
        "pending": stats.get("pending", 0),
        "busy_rejections": stats.get("busy_rejections", 0),
        "log": {
            "entries": len(logged),
            "corrupt_lines": result_log.corrupt_lines,
            "duplicates": len(raw_keys) - len(set(raw_keys)),
            "lost": lost,
            # every lost record must be a *detected* corrupt line
            "lost_undetected": max(0, lost - result_log.corrupt_lines),
        },
        "recovery_scan": recovery_scan,
        "parent_fired": [list(f) for f in plan.fired] if plan else [],
        "parent_fired_kinds": plan.fired_kinds() if plan else {},
    }


def _raw_log_keys(log_path: str) -> List[str]:
    from repro import durable

    keys = []
    with open(log_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            payload, verdict = durable.unframe_line(line)
            if verdict == "corrupt":
                continue
            try:
                keys.append(str(json.loads(payload)["instance"]))
            except ValueError:
                continue  # torn tail without its checksum suffix
    return keys


def _count(values) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))


def _recovery_summary(impacted) -> Dict[str, object]:
    """Latency of requests that needed any retry/resubmission: the
    client-observed time from first submission to the correct answer."""
    if not impacted:
        return {"impacted_requests": 0}
    ordered = sorted(r["elapsed"] for r in impacted)
    return {
        "impacted_requests": len(impacted),
        "p50_ms": 1000 * ordered[len(ordered) // 2],
        "p95_ms": 1000 * ordered[int(0.95 * (len(ordered) - 1))],
        "max_ms": 1000 * ordered[-1],
    }


# ----------------------------------------------------------------------
# hook overhead (faults disabled)
# ----------------------------------------------------------------------

def measure_hook_overhead(clean_p50_ms: float) -> Dict[str, float]:
    """Per-call cost of :func:`faults.fire` with no plan installed,
    scaled by a generous hooks-per-request bound against the clean p50."""
    faults.install(None)
    calls = 200_000
    started = time.perf_counter()
    for _ in range(calls):
        faults.fire("pool.solve")
    per_call_s = (time.perf_counter() - started) / calls
    per_request_ms = 1000 * per_call_s * HOOKS_PER_REQUEST
    return {
        "hook_ns": 1e9 * per_call_s,
        "hooks_per_request": HOOKS_PER_REQUEST,
        "per_request_ms": per_request_ms,
        "clean_p50_ms": clean_p50_ms,
        "overhead_pct": 100 * per_request_ms / clean_p50_ms,
    }


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def run_report(tmp_dir: str) -> Dict[str, object]:
    plan = FaultPlan.parse(PLAN_SPEC)
    uniques = unique_instances()
    schedule = request_schedule(uniques)
    truths = ground_truth(uniques)
    clean = run_service_mode(uniques, truths, schedule, tmp_dir,
                             "clean", None)
    chaos = run_service_mode(uniques, truths, schedule, tmp_dir,
                             "chaos", plan)
    overhead = measure_hook_overhead(clean["p50_ms"])
    return {
        "quick": QUICK,
        "requests": len(schedule),
        "unique_formulas": len(uniques),
        "clients": NUM_CLIENTS,
        "workers": NUM_WORKERS,
        "truth": _count(t["status"] for t in truths),
        "plan": {
            "spec": plan.spec(),
            "kinds_scheduled": sorted({f.kind for f in plan.faults}),
        },
        "clean": clean,
        "chaos": chaos,
        "overhead": overhead,
        "slowdown_under_faults": chaos["total_s"] / clean["total_s"],
    }


def write_json(report) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def print_report(report) -> None:
    chaos = report["chaos"]
    clean = report["clean"]
    print(f"\nchaos soak ({report['requests']} requests, "
          f"{report['unique_formulas']} unique, "
          f"{len(report['plan']['kinds_scheduled'])} fault kinds: "
          f"{','.join(report['plan']['kinds_scheduled'])})")
    print(f"  clean:  {clean['rps']:8.1f} req/s  p50 {clean['p50_ms']:7.1f} ms  "
          f"p95 {clean['p95_ms']:7.1f} ms")
    print(f"  chaos:  {chaos['rps']:8.1f} req/s  p50 {chaos['p50_ms']:7.1f} ms  "
          f"p95 {chaos['p95_ms']:7.1f} ms  "
          f"({report['slowdown_under_faults']:.1f}x slower)")
    pool = chaos["pool"]
    print(f"  faults: deaths {pool['worker_deaths']}  "
          f"hard kills {pool['hard_kills']}  "
          f"restarts {pool['supervised_restarts']}  "
          f"parent-side {chaos['parent_fired_kinds']}  "
          f"transients {chaos['transient_statuses']}")
    recovery = chaos["recovery"]
    if recovery["impacted_requests"]:
        print(f"  recovery: {recovery['impacted_requests']} impacted  "
              f"p50 {recovery['p50_ms']:.0f} ms  "
              f"p95 {recovery['p95_ms']:.0f} ms  "
              f"max {recovery['max_ms']:.0f} ms")
    log = chaos["log"]
    print(f"  answers: {chaos['requests'] - chaos['mismatched']}"
          f"/{chaos['requests']} correct  "
          f"log entries {log['entries']} "
          f"(torn {log['corrupt_lines']}, undetected lost "
          f"{log['lost_undetected']}, dup {log['duplicates']})  "
          f"recovery scan {chaos['recovery_scan']}")
    print(f"  hook overhead: {report['overhead']['hook_ns']:.0f} ns/call "
          f"-> {report['overhead']['overhead_pct']:.3f}% of a clean request")


def _check(report) -> None:
    chaos = report["chaos"]
    clean = report["clean"]
    # the workload is real
    if not QUICK:
        assert report["requests"] >= 200, report["requests"]
    assert len(report["plan"]["kinds_scheduled"]) >= 5
    # exactly one correct answer per request, clean and under chaos
    assert clean["mismatched"] == 0, clean
    assert chaos["mismatched"] == 0, (
        f"{chaos['mismatched']} of {chaos['requests']} chaos replies were "
        f"wrong or non-definitive; statuses: {chaos['statuses']}")
    # the faults actually happened and the pool healed
    pool = chaos["pool"]
    assert clean["pool"]["worker_deaths"] == 0, clean["pool"]
    assert pool["worker_deaths"] >= 1, pool
    assert pool["hard_kills"] >= 1, pool
    assert pool["alive"] == NUM_WORKERS, pool
    assert chaos["parent_fired_kinds"].get("drop", 0) >= 1, chaos["parent_fired_kinds"]
    assert chaos["parent_fired_kinds"].get("torn", 0) >= 1, chaos["parent_fired_kinds"]
    assert chaos["transient_statuses"].get("ERROR", 0) >= 1, chaos["transient_statuses"]
    assert chaos["transient_statuses"].get("TIMEOUT", 0) >= 1, chaos["transient_statuses"]
    assert chaos["transient_statuses"].get("UNKNOWN", 0) >= 1, chaos["transient_statuses"]
    assert chaos["recovery"]["impacted_requests"] >= 1
    # durability: nothing silently lost, nothing duplicated
    for mode in (clean, chaos):
        assert mode["log"]["lost_undetected"] == 0, mode["log"]
        assert mode["log"]["duplicates"] == 0, mode["log"]
    assert clean["log"]["corrupt_lines"] == 0, clean["log"]
    # the torn cache write is quarantined by the startup recovery scan
    assert chaos["recovery_scan"]["quarantined"] >= 1, chaos["recovery_scan"]
    assert chaos["cache"]["disk_write_errors"] >= 1, chaos["cache"]
    # hooks are free when disabled
    assert report["overhead"]["overhead_pct"] < OVERHEAD_LIMIT_PCT, (
        report["overhead"])


def test_chaos_soak(tmp_path):
    """Acceptance: >= 5 fault kinds over the workload (>= 200 requests
    in full mode), every request answered exactly once with the direct-
    solve verdict, zero undetected-lost and zero duplicated log records,
    recovery latency recorded, < 2% hook overhead with faults off."""
    report = run_report(str(tmp_path))
    print_report(report)
    write_json(report)
    _check(report)


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        report = run_report(tmp_dir)
    print_report(report)
    write_json(report)
    _check(report)
    print(f"\nwritten {OUTPUT.name}")


if __name__ == "__main__":
    main()
