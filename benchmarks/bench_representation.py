"""AIG-vs-BDD matrix representation comparison (Section II-C motivation).

The paper chooses AIGs because, not being canonical, "they can be
potentially more compact than BDDs".  This benchmark makes the claim
measurable on the actual PEC matrices: build each instance's matrix in
both representations and compare node counts, and compare the HQS
elimination pipeline against the BDD-backed elimination solver.
"""

from __future__ import annotations

from repro.aig.cnf_bridge import cnf_to_aig
from repro.bdd.graph import cnf_to_bdd
from repro.bdd.solver import solve_bdd
from repro.core.hqs import HqsSolver
from repro.pec.families import generate_family

FAMILIES = ("adder", "lookahead", "comp")


def _instances(config):
    pool = []
    for family in FAMILIES:
        pool.extend(generate_family(family, config.count, scale=config.scale, seed=13))
    return pool


def test_matrix_size_aig_vs_bdd(benchmark, config):
    instances = _instances(config)

    from repro.errors import NodeLimitExceeded

    budget = config.node_limit

    def measure():
        rows = []
        for instance in instances:
            clauses = instance.formula.matrix.clauses
            aig, aig_root = cnf_to_aig(clauses)
            aig_size = aig.cone_size(aig_root) if aig_root > 1 else 0
            try:
                bdd, bdd_root = cnf_to_bdd(clauses, node_budget=budget)
                bdd_size = bdd.size(bdd_root)
            except NodeLimitExceeded:
                bdd_size = None  # blow-up: the paper's argument in action
            rows.append((instance.name, aig_size, bdd_size))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    total_aig = sum(a for _, a, _ in rows)
    finished = [(a, b) for _, a, b in rows if b is not None]
    blowups = sum(1 for _, _, b in rows if b is None)
    total_bdd = sum(b for _, b in finished)
    print(
        f"\nmatrix nodes — AIG: {total_aig} (all {len(rows)} built), "
        f"BDD: {total_bdd} on {len(finished)} built, {blowups} blow-ups "
        f"beyond {budget} nodes"
    )
    assert total_aig > 0
    # every AIG build finished; BDD either costs more nodes in aggregate
    # or failed to build some matrix at all
    if blowups == 0 and finished:
        aig_on_finished = sum(a for a, _ in finished)
        assert total_bdd >= aig_on_finished // 4  # same order at worst
    benchmark.extra_info["aig_nodes"] = total_aig
    benchmark.extra_info["bdd_blowups"] = blowups


def test_solver_aig_vs_bdd(benchmark, config):
    instances = _instances(config)

    hqs_results = benchmark.pedantic(
        lambda: [
            HqsSolver().solve(inst.formula.copy(), config.limits())
            for inst in instances
        ],
        rounds=1,
        iterations=1,
    )
    bdd_results = [
        solve_bdd(inst.formula.copy(), config.limits()) for inst in instances
    ]
    for a, b in zip(hqs_results, bdd_results):
        if a.solved and b.solved:
            assert a.status == b.status
    solved_hqs = sum(1 for r in hqs_results if r.solved)
    solved_bdd = sum(1 for r in bdd_results if r.solved)
    print(f"\nsolved — HQS(AIG): {solved_hqs}/{len(instances)}, "
          f"BDD elimination: {solved_bdd}/{len(instances)}")
    assert solved_hqs >= 1
