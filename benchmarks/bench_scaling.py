"""Scaling curves: solver runtime vs instance size per family.

Not a single paper figure, but the quantitative backbone behind
Table I's story: HQS's elimination strategy scales past the points
where instantiation (iDQ) and naive expansion blow up.  The benchmark
emits one series per solver over growing adder sizes and asserts the
orderings that define the paper's qualitative result.
"""

from __future__ import annotations

import time

from repro.baselines.expansion import solve_expansion
from repro.baselines.idq import IdqSolver
from repro.core.hqs import HqsSolver
from repro.core.result import Limits
from repro.pec.families import make_adder

SIZES = (3, 4, 5, 6, 7)
PER_SIZE_TIMEOUT = 3.0


def _series(solve, sizes):
    points = []
    for bits in sizes:
        instance = make_adder(bits, 2, buggy=False, seed=5)
        start = time.monotonic()
        result = solve(instance.formula.copy(), Limits(time_limit=PER_SIZE_TIMEOUT))
        points.append((bits, result.status, time.monotonic() - start))
    return points


def test_scaling_adder(benchmark):
    hqs = benchmark.pedantic(
        lambda: _series(lambda f, l: HqsSolver().solve(f, l), SIZES),
        rounds=1,
        iterations=1,
    )
    idq = _series(lambda f, l: IdqSolver().solve(f, l), SIZES)
    expansion = _series(lambda f, l: solve_expansion(f, l), SIZES)

    print("\nadder scaling (bits: status/time)")
    for name, series in (("HQS", hqs), ("IDQ", idq), ("EXPANSION", expansion)):
        rendered = "  ".join(f"{b}:{s[:2]}{t:5.2f}s" for b, s, t in series)
        print(f"  {name:<10} {rendered}")

    # HQS solves every size in the sweep
    assert all(status in ("SAT", "UNSAT") for _, status, _ in hqs)
    # instantiation falls over somewhere in the sweep on SAT instances
    idq_solved = sum(1 for _, status, _ in idq if status in ("SAT", "UNSAT"))
    hqs_solved = len(hqs)
    assert hqs_solved >= idq_solved
    # and HQS's largest-size time stays far below the budget
    assert hqs[-1][2] < PER_SIZE_TIMEOUT
