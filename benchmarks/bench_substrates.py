"""Micro-benchmarks for the substrates (SAT, MaxSAT, AIG operations).

These are not paper experiments; they track the performance of the
building blocks so regressions in the engine show up independently of
the end-to-end numbers.
"""

from __future__ import annotations

import random

from repro.aig.cnf_bridge import cnf_to_aig
from repro.aig.fraig import fraig_root
from repro.aig.unitpure import detect_unit_pure
from repro.maxsat.solver import solve_partial_maxsat
from repro.sat.solver import UNSAT, solve_cnf


def php_clauses(holes: int):
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def random_cnf(seed: int, num_vars: int, num_clauses: int):
    rng = random.Random(seed)
    return [
        [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
        for _ in range(num_clauses)
    ]


def test_sat_pigeonhole(benchmark):
    clauses = php_clauses(6)
    status, _ = benchmark(solve_cnf, clauses)
    assert status == UNSAT


def test_sat_random_3cnf(benchmark):
    clauses = random_cnf(1, 60, 250)  # near threshold ratio ~4.2
    status, _ = benchmark(solve_cnf, clauses)
    assert status in ("SAT", "UNSAT")


def test_maxsat_linear_search(benchmark):
    hard = [[1, 2], [-1, 3], [-2, -3]]
    soft = [[-v] for v in range(1, 4)] + [[v] for v in range(1, 4)]
    result = benchmark(solve_partial_maxsat, hard, soft)
    assert result.satisfiable


def test_aig_build_from_cnf(benchmark):
    clauses = random_cnf(2, 40, 400)

    def build():
        return cnf_to_aig(clauses)

    aig, root = benchmark(build)
    assert aig.num_nodes > 0


def test_aig_cofactor_chain(benchmark):
    clauses = random_cnf(3, 30, 300)
    aig, root = cnf_to_aig(clauses)

    def quantify_five():
        edge = root
        for v in range(1, 6):
            edge = aig.exists(edge, v)
        return edge

    benchmark(quantify_five)


def test_aig_unit_pure_scan(benchmark):
    clauses = random_cnf(4, 50, 600)
    aig, root = cnf_to_aig(clauses)
    info = benchmark(detect_unit_pure, aig, root)
    assert info is not None


def test_fraig_sweep(benchmark):
    clauses = random_cnf(5, 20, 150)
    aig, root = cnf_to_aig(clauses)
    reduced, new_root = benchmark.pedantic(
        lambda: fraig_root(aig, root), rounds=1, iterations=1
    )
    assert reduced.cone_size(new_root) <= aig.cone_size(root)
