"""Robustness benchmark: guard overhead and tiny-budget stress smoke.

Two guarantees of the graceful-degradation core are measured here:

1. **The cooperative guard is cheap.**  Every inner loop calls
   ``ResourceGuard.check()`` (one ``time.monotonic()`` + compares), so
   its total cost is ``guard_checks x per-check cost``.  The benchmark
   times the check in isolation, multiplies by the per-solve check
   count, and asserts the product stays **under 5% of the solve time**
   on the kernel-benchmark families.

2. **Tiny budgets never produce tracebacks.**  A stress sweep runs
   every registered solver under absurdly small time/node budgets; each
   run must return ``SAT``/``UNSAT`` or a diagnosed ``UNKNOWN`` — any
   escaping exception fails the sweep.

Run under pytest (``pytest benchmarks/bench_robustness.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_robustness.py

``REPRO_BENCH_KERNEL_QUICK=1`` shrinks the instances for CI smoke runs.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from repro.core.guard import ResourceGuard
from repro.core.hqs import HqsSolver
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.experiments.runner import SOLVERS
from repro.pec.families import make_adder, make_bitcell, make_comp, make_pec_xor

QUICK = os.environ.get("REPRO_BENCH_KERNEL_QUICK", "") not in ("", "0")
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "5.0" if QUICK else "30.0"))
OVERHEAD_BUDGET = 0.05  # guard cost must stay under 5% of solve time


def family_instances():
    """The kernel benchmark's families (smaller in quick mode)."""
    if QUICK:
        return [
            ("adder", make_adder(3, 2, False, seed=5)),
            ("pec_xor", make_pec_xor(6, 2, False, seed=1)),
            ("bitcell", make_bitcell(3, 2, False, seed=3)),
        ]
    return [
        ("adder", make_adder(5, 2, False, seed=5)),
        ("pec_xor", make_pec_xor(10, 2, False, seed=1)),
        ("bitcell", make_bitcell(4, 2, False, seed=3)),
        ("comp", make_comp(4, 2, False, seed=7)),
    ]


def measure_check_cost(samples: int = 200_000) -> float:
    """Seconds per ``ResourceGuard.check()`` call, measured in isolation."""
    guard = ResourceGuard(time_limit=3600.0, conflict_limit=10**9)
    start = time.perf_counter()
    for _ in range(samples):
        guard.check()
    return (time.perf_counter() - start) / samples


def run_overhead_report() -> List[Dict[str, float]]:
    per_check = measure_check_cost()
    rows = []
    for name, instance in family_instances():
        solver = HqsSolver()
        start = time.monotonic()
        result = solver.solve(instance.formula.copy(), Limits(time_limit=TIMEOUT))
        elapsed = time.monotonic() - start
        checks = result.stats.get("guard_checks", 0)
        guard_cost = checks * per_check
        rows.append(
            {
                "family": name,
                "status": result.status,
                "solve_time": elapsed,
                "guard_checks": checks,
                "per_check_us": per_check * 1e6,
                "guard_cost": guard_cost,
                "overhead": guard_cost / max(elapsed, 1e-9),
            }
        )
    return rows


def print_overhead_report(rows) -> None:
    print("\nguard overhead (checks x isolated per-check cost vs solve time)")
    print(
        f"  {'family':<10} {'status':>7} {'solve':>9} {'checks':>9} "
        f"{'us/check':>9} {'overhead':>9}"
    )
    for row in rows:
        print(
            f"  {row['family']:<10} {row['status']:>7} {row['solve_time']:>8.3f}s "
            f"{row['guard_checks']:>9.0f} {row['per_check_us']:>9.3f} "
            f"{row['overhead']:>8.2%}"
        )


def test_guard_overhead_under_budget():
    """Acceptance: guard bookkeeping costs < 5% of solve time per family."""
    rows = run_overhead_report()
    print_overhead_report(rows)
    for row in rows:
        assert row["status"] in (SAT, UNSAT), (
            f"family {row['family']} did not finish under the benchmark "
            f"timeout ({row['status']}); overhead ratio would be meaningless"
        )
        assert row["overhead"] < OVERHEAD_BUDGET, (
            f"family {row['family']}: guard overhead {row['overhead']:.2%} "
            f"exceeds {OVERHEAD_BUDGET:.0%} "
            f"({row['guard_checks']:.0f} checks x {row['per_check_us']:.3f} us)"
        )


# Every budget carries a time limit: a node-only budget would never
# stop the search-based solvers (DPLL, IDQ), which track no AIG nodes.
STRESS_BUDGETS = (
    Limits(time_limit=0.0),
    Limits(time_limit=0.05),
    Limits(time_limit=2.0, node_limit=100),
    Limits(time_limit=0.2, node_limit=1000),
)


def test_tiny_budget_stress_no_tracebacks():
    """Every solver, every tiny budget: an answer or a diagnosed UNKNOWN."""
    instances = family_instances()
    failures = []
    for solver_name, solver in sorted(SOLVERS.items()):
        for family, instance in instances:
            for limits in STRESS_BUDGETS:
                try:
                    result = solver(instance.formula.copy(), limits)
                except Exception as exc:  # noqa: BLE001 - the point of the test
                    failures.append(f"{solver_name}/{family}/{limits}: raised {exc!r}")
                    continue
                if result.status not in (SAT, UNSAT, UNKNOWN):
                    failures.append(
                        f"{solver_name}/{family}/{limits}: status {result.status}"
                    )
                elif result.status == UNKNOWN and result.failure is None:
                    failures.append(
                        f"{solver_name}/{family}/{limits}: UNKNOWN without diagnosis"
                    )
    assert not failures, "\n".join(failures)


def main() -> None:
    rows = run_overhead_report()
    print_overhead_report(rows)
    worst = max(rows, key=lambda r: r["overhead"])
    print(
        f"\nworst-case overhead: {worst['overhead']:.2%} ({worst['family']}); "
        f"budget {OVERHEAD_BUDGET:.0%}"
    )
    test_tiny_budget_stress_no_tracebacks()
    print("tiny-budget stress sweep: no tracebacks, all verdicts diagnosed")


if __name__ == "__main__":
    main()
