"""AIG kernel benchmark: fused single-pass primitives vs the naive path.

The fused kernel (``Aig.restrict`` / ``Aig.cofactor2`` /
``Aig.eliminate_universal_fused`` plus batched unit/pure substitution)
replaces the rebuild chains of the naive path — two full-cone cofactor
rebuilds, a support walk and a rename per Theorem-1 elimination, and
one full-cone rebuild per unit/pure variable.  This benchmark measures
the difference with the kernel's own work counters on the PEC generator
families and asserts the headline claim: **at least a 2x reduction in
nodes visited** for the elimination + unit/pure rounds.

Run under pytest (`pytest benchmarks/bench_kernel.py`) or standalone:

    PYTHONPATH=src python benchmarks/bench_kernel.py

``REPRO_BENCH_KERNEL_QUICK=1`` shrinks the instances for CI smoke runs.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.core.elimination import eliminate_universal
from repro.core.hqs import HqsOptions, HqsSolver
from repro.core.preprocess import preprocess
from repro.core.result import Limits
from repro.core.state import AigDqbf
from repro.core.unitpure import UnitPureStats, apply_unit_pure
from repro.pec.families import make_adder, make_bitcell, make_comp, make_pec_xor

QUICK = os.environ.get("REPRO_BENCH_KERNEL_QUICK", "") not in ("", "0")
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "5.0" if QUICK else "30.0"))
MAX_ELIMINATIONS = 4


def family_instances():
    """Representative generator-family instances (smaller in quick mode)."""
    if QUICK:
        return [
            ("adder", make_adder(3, 2, False, seed=5)),
            ("pec_xor", make_pec_xor(6, 2, False, seed=1)),
            ("bitcell", make_bitcell(3, 2, False, seed=3)),
        ]
    return [
        ("adder", make_adder(5, 2, False, seed=5)),
        ("pec_xor", make_pec_xor(10, 2, False, seed=1)),
        ("bitcell", make_bitcell(4, 2, False, seed=3)),
        ("comp", make_comp(4, 2, False, seed=7)),
    ]


def _build_state(formula) -> AigDqbf:
    """The solver's own preprocessing + AIG construction, sans main loop."""
    solver = HqsSolver()
    pre = preprocess(formula.copy(), detect_gates=True)
    state = solver._build_state(pre.formula, pre.gates)
    state.prune_prefix()
    return state


def measure_rounds(formula, fused: bool) -> int:
    """Nodes visited by unit/pure rounds + the first Theorem-1 eliminations."""
    state = _build_state(formula)
    counters = state.aig.counters
    counters.reset()
    apply_unit_pure(state, UnitPureStats(), batched=fused)
    performed = 0
    while state.prefix.universals and state.root > 1 and performed < MAX_ELIMINATIONS:
        x = sorted(state.prefix.universals)[0]
        eliminate_universal(state, x, fused=fused)
        state.prune_prefix()
        apply_unit_pure(state, UnitPureStats(), batched=fused)
        performed += 1
    return counters.nodes_visited


def measure_solve(formula, fused: bool) -> Tuple[str, float, Dict[str, float]]:
    """End-to-end solve with the kernel counters from ``SolveResult.stats``."""
    solver = HqsSolver(HqsOptions(use_fused_kernel=fused))
    start = time.monotonic()
    result = solver.solve(formula.copy(), Limits(time_limit=TIMEOUT))
    elapsed = time.monotonic() - start
    return result.status, elapsed, result.stats


def run_report() -> List[Dict[str, float]]:
    rows = []
    for name, instance in family_instances():
        fused_rounds = measure_rounds(instance.formula, fused=True)
        naive_rounds = measure_rounds(instance.formula, fused=False)
        f_status, f_time, f_stats = measure_solve(instance.formula, fused=True)
        n_status, n_time, n_stats = measure_solve(instance.formula, fused=False)
        rows.append(
            {
                "family": name,
                "fused_rounds_visited": fused_rounds,
                "naive_rounds_visited": naive_rounds,
                "rounds_ratio": naive_rounds / max(fused_rounds, 1),
                "fused_status": f_status,
                "naive_status": n_status,
                "fused_time": f_time,
                "naive_time": n_time,
                "fused_solve_visited": f_stats.get("kernel_nodes_visited", 0),
                "naive_solve_visited": n_stats.get("kernel_nodes_visited", 0),
                "fused_shared": f_stats.get("kernel_nodes_shared", 0),
                "strash_hit_rate": f_stats.get("kernel_strash_hit_rate", 0.0),
            }
        )
    return rows


def print_report(rows) -> None:
    print("\nkernel comparison (nodes visited, fused vs naive)")
    header = (
        f"  {'family':<10} {'rounds fused':>12} {'rounds naive':>12} {'ratio':>6} "
        f"{'solve fused':>11} {'solve naive':>11} {'t fused':>8} {'t naive':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"  {row['family']:<10} {row['fused_rounds_visited']:>12} "
            f"{row['naive_rounds_visited']:>12} {row['rounds_ratio']:>6.2f} "
            f"{row['fused_solve_visited']:>11.0f} {row['naive_solve_visited']:>11.0f} "
            f"{row['fused_time']:>7.3f}s {row['naive_time']:>7.3f}s"
        )


def test_kernel_fused_halves_nodes_visited():
    """Acceptance: >= 2x fewer nodes visited in elimination + unit/pure rounds."""
    rows = run_report()
    print_report(rows)
    for row in rows:
        assert row["rounds_ratio"] >= 2.0, (
            f"family {row['family']}: fused kernel visited "
            f"{row['fused_rounds_visited']} vs naive {row['naive_rounds_visited']} "
            f"(ratio {row['rounds_ratio']:.2f} < 2.0)"
        )
        # Both kernels must of course agree on the answer.
        assert row["fused_status"] == row["naive_status"]


def test_kernel_stats_exported():
    """The default (fused) solver populates kernel_* fields in stats."""
    _, _, stats = measure_solve(family_instances()[0][1].formula, fused=True)
    for key in (
        "kernel_rebuild_passes",
        "kernel_fused_passes",
        "kernel_nodes_visited",
        "kernel_nodes_shared",
        "kernel_strash_hit_rate",
        "kernel_support_cache_hit_rate",
    ):
        assert key in stats
    assert stats["kernel_fused_passes"] > 0  # fused is the default path


def main() -> None:
    rows = run_report()
    print_report(rows)
    worst = min(rows, key=lambda r: r["rounds_ratio"])
    print(
        f"\nworst-case rounds ratio: {worst['rounds_ratio']:.2f}x "
        f"({worst['family']}); acceptance threshold 2.0x"
    )


if __name__ == "__main__":
    main()
