"""AIG kernel benchmark: fused primitives and the numpy array backend.

Two comparisons share this file:

1. **Fused vs naive** — the single-pass kernels (``Aig.restrict`` /
   ``Aig.cofactor2`` / ``Aig.eliminate_universal_fused`` plus batched
   unit/pure substitution) against the rebuild chains of the naive
   path, measured with the kernel's own work counters.  Acceptance:
   **at least a 2x reduction in nodes visited** for the elimination +
   unit/pure rounds.

2. **python vs numpy backend** — the same kernel workload (bit-parallel
   FRAIG simulation, support sweeps after invalidation, Theorem-1
   growth estimates, cone collection) on ``Aig(backend="python")`` vs
   ``Aig(backend="numpy")``, reported as wall-clock and nodes/sec per
   generator family.  Acceptance: **>= 5x wall-clock speedup** on the
   two largest families.  Results are committed to ``BENCH_kernel.json``
   (like ``BENCH_satsweep.json``) so the perf trajectory is tracked;
   the JSON also stores a calibration-normalized pure-python baseline
   that the CI smoke job checks for regressions
   (``REPRO_BENCH_KERNEL_TOLERANCE``, default 10%).

Run under pytest (`pytest benchmarks/bench_kernel.py`) or standalone:

    PYTHONPATH=src python benchmarks/bench_kernel.py

``REPRO_BENCH_KERNEL_QUICK=1`` shrinks the instances for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.aig import backend as backend_module
from repro.aig.cnf_bridge import cnf_to_aig
from repro.aig.fraig import _new_word_table, _pattern_fill
from repro.aig.graph import Aig
from repro.core.elimination import eliminate_universal
from repro.core.hqs import HqsOptions, HqsSolver
from repro.core.preprocess import preprocess
from repro.core.result import Limits
from repro.core.state import AigDqbf
from repro.core.unitpure import UnitPureStats, apply_unit_pure
from repro.pec.families import make_adder, make_bitcell, make_comp, make_pec_xor

QUICK = os.environ.get("REPRO_BENCH_KERNEL_QUICK", "") not in ("", "0")
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "5.0" if QUICK else "30.0"))
MAX_ELIMINATIONS = 4

BACKEND_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
BACKEND_WIDTH = 1024  # simulation pattern width (bits)
TOLERANCE = float(os.environ.get("REPRO_BENCH_KERNEL_TOLERANCE", "0.10"))


def family_instances():
    """Representative generator-family instances (smaller in quick mode)."""
    if QUICK:
        return [
            ("adder", make_adder(3, 2, False, seed=5)),
            ("pec_xor", make_pec_xor(6, 2, False, seed=1)),
            ("bitcell", make_bitcell(3, 2, False, seed=3)),
        ]
    return [
        ("adder", make_adder(5, 2, False, seed=5)),
        ("pec_xor", make_pec_xor(10, 2, False, seed=1)),
        ("bitcell", make_bitcell(4, 2, False, seed=3)),
        ("comp", make_comp(4, 2, False, seed=7)),
    ]


def _build_state(formula) -> AigDqbf:
    """The solver's own preprocessing + AIG construction, sans main loop."""
    solver = HqsSolver()
    pre = preprocess(formula.copy(), detect_gates=True)
    state = solver._build_state(pre.formula, pre.gates)
    state.prune_prefix()
    return state


def measure_rounds(formula, fused: bool) -> int:
    """Nodes visited by unit/pure rounds + the first Theorem-1 eliminations."""
    state = _build_state(formula)
    counters = state.aig.counters
    counters.reset()
    apply_unit_pure(state, UnitPureStats(), batched=fused)
    performed = 0
    while state.prefix.universals and state.root > 1 and performed < MAX_ELIMINATIONS:
        x = sorted(state.prefix.universals)[0]
        eliminate_universal(state, x, fused=fused)
        state.prune_prefix()
        apply_unit_pure(state, UnitPureStats(), batched=fused)
        performed += 1
    return counters.nodes_visited


def measure_solve(formula, fused: bool) -> Tuple[str, float, Dict[str, float]]:
    """End-to-end solve with the kernel counters from ``SolveResult.stats``."""
    solver = HqsSolver(HqsOptions(use_fused_kernel=fused))
    start = time.monotonic()
    result = solver.solve(formula.copy(), Limits(time_limit=TIMEOUT))
    elapsed = time.monotonic() - start
    return result.status, elapsed, result.stats


def run_report() -> List[Dict[str, float]]:
    rows = []
    for name, instance in family_instances():
        fused_rounds = measure_rounds(instance.formula, fused=True)
        naive_rounds = measure_rounds(instance.formula, fused=False)
        f_status, f_time, f_stats = measure_solve(instance.formula, fused=True)
        n_status, n_time, n_stats = measure_solve(instance.formula, fused=False)
        rows.append(
            {
                "family": name,
                "fused_rounds_visited": fused_rounds,
                "naive_rounds_visited": naive_rounds,
                "rounds_ratio": naive_rounds / max(fused_rounds, 1),
                "fused_status": f_status,
                "naive_status": n_status,
                "fused_time": f_time,
                "naive_time": n_time,
                "fused_solve_visited": f_stats.get("kernel_nodes_visited", 0),
                "naive_solve_visited": n_stats.get("kernel_nodes_visited", 0),
                "fused_shared": f_stats.get("kernel_nodes_shared", 0),
                "strash_hit_rate": f_stats.get("kernel_strash_hit_rate", 0.0),
            }
        )
    return rows


def print_report(rows) -> None:
    print("\nkernel comparison (nodes visited, fused vs naive)")
    header = (
        f"  {'family':<10} {'rounds fused':>12} {'rounds naive':>12} {'ratio':>6} "
        f"{'solve fused':>11} {'solve naive':>11} {'t fused':>8} {'t naive':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"  {row['family']:<10} {row['fused_rounds_visited']:>12} "
            f"{row['naive_rounds_visited']:>12} {row['rounds_ratio']:>6.2f} "
            f"{row['fused_solve_visited']:>11.0f} {row['naive_solve_visited']:>11.0f} "
            f"{row['fused_time']:>7.3f}s {row['naive_time']:>7.3f}s"
        )


def test_kernel_fused_halves_nodes_visited():
    """Acceptance: >= 2x fewer nodes visited in elimination + unit/pure rounds."""
    rows = run_report()
    print_report(rows)
    for row in rows:
        assert row["rounds_ratio"] >= 2.0, (
            f"family {row['family']}: fused kernel visited "
            f"{row['fused_rounds_visited']} vs naive {row['naive_rounds_visited']} "
            f"(ratio {row['rounds_ratio']:.2f} < 2.0)"
        )
        # Both kernels must of course agree on the answer.
        assert row["fused_status"] == row["naive_status"]


def test_kernel_stats_exported():
    """The default (fused) solver populates kernel_* fields in stats."""
    _, _, stats = measure_solve(family_instances()[0][1].formula, fused=True)
    for key in (
        "kernel_rebuild_passes",
        "kernel_fused_passes",
        "kernel_nodes_visited",
        "kernel_nodes_shared",
        "kernel_strash_hit_rate",
        "kernel_support_cache_hit_rate",
    ):
        assert key in stats
    assert stats["kernel_fused_passes"] > 0  # fused is the default path


# ---------------------------------------------------------------------------
# python-vs-numpy backend comparison
# ---------------------------------------------------------------------------

def backend_instances(quick: bool = QUICK):
    """Instances for the backend comparison; larger than the fused set
    so the vectorized kernels operate on realistic cone sizes."""
    if quick:
        return [
            ("adder", make_adder(8, 2, False, seed=5)),
            ("pec_xor", make_pec_xor(12, 2, False, seed=1)),
            ("bitcell", make_bitcell(6, 2, False, seed=3)),
        ]
    return [
        ("adder", make_adder(32, 3, False, seed=5)),
        ("pec_xor", make_pec_xor(40, 4, False, seed=1)),
        ("comp", make_comp(16, 4, False, seed=7)),
        ("bitcell", make_bitcell(12, 3, False, seed=3)),
    ]


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (the usual noise filter)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.monotonic()
    fn()
    return time.monotonic() - start


def calibration_score() -> float:
    """Iterations/sec of a fixed pure-Python integer workload.

    Recorded next to every nodes/sec figure so the CI regression guard
    can compare runs across machines: the *ratio* nodes/sec over
    calibration cancels raw interpreter speed.
    """
    iterations = 200_000

    def work() -> None:
        acc = 0
        for i in range(iterations):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFFFFFF

    return iterations / _best_of(work)


def measure_backend(formula, backend: str, quick: bool = QUICK) -> Dict[str, float]:
    """Time the four vectorized kernel workloads on one backend.

    The mix mirrors the solver's hot paths: FRAIG re-simulation rounds,
    support recomputation after elimination invalidates the caches,
    per-candidate Theorem-1 growth estimates during MaxSAT selection
    scoring, and cone collection for compaction / Tseitin ordering.
    """
    sim_reps = 3 if quick else 10
    sweep_reps = 6 if quick else 20
    growth_vars = 8 if quick else 16

    aig, root = cnf_to_aig(formula.matrix.clauses, Aig(backend=backend))
    cone = aig.cone_size(root)
    support = sorted(aig.support_of(root))
    rng = random.Random(99)
    patterns = {v: rng.getrandbits(BACKEND_WIDTH) for v in support}

    def run_simulate() -> None:
        for i in range(sim_reps):
            table = _new_word_table(aig)
            table.simulate(
                aig, root, dict(patterns), BACKEND_WIDTH,
                pattern_word=_pattern_fill(i),
            )

    def run_support() -> None:
        for _ in range(sweep_reps):
            aig.invalidate_caches()
            aig.support_of(root)

    def run_growth() -> None:
        for var in support[:growth_vars]:
            aig.count_depending_ands(root, var)

    def run_cone() -> None:
        # cone_size, not cone_nodes: the latter's DFS post-order is an
        # API contract (variable numbering) and identical on both
        # backends, while the membership count is mask-based on numpy.
        for _ in range(sweep_reps):
            aig.cone_size(root)

    timings = {
        "simulate_seconds": _best_of(run_simulate),
        "support_seconds": _best_of(run_support),
        "growth_seconds": _best_of(run_growth),
        "cone_seconds": _best_of(run_cone),
    }
    total = sum(timings.values())
    nodes_processed = cone * (
        sim_reps + 2 * sweep_reps + min(growth_vars, len(support))
    )
    timings["total_seconds"] = total
    timings["nodes_per_sec"] = nodes_processed / total if total else 0.0
    timings["cone_size"] = cone
    return timings


def run_backend_report(quick: bool = QUICK) -> List[Dict[str, object]]:
    """Per-family backend comparison rows (numpy column absent without it)."""
    have_numpy = backend_module.numpy_available()
    rows: List[Dict[str, object]] = []
    for name, instance in backend_instances(quick):
        python = measure_backend(instance.formula, "python", quick)
        numpy: Optional[Dict[str, float]] = (
            measure_backend(instance.formula, "numpy", quick) if have_numpy else None
        )
        rows.append(
            {
                "family": name,
                "cone_size": python["cone_size"],
                "python": python,
                "numpy": numpy,
                "speedup": (
                    python["total_seconds"] / numpy["total_seconds"]
                    if numpy and numpy["total_seconds"]
                    else None
                ),
            }
        )
    return rows


def print_backend_report(rows) -> None:
    print(f"\nbackend comparison (width {BACKEND_WIDTH} simulation + sweeps)")
    print(
        f"  {'family':<10} {'cone':>6} {'python':>9} {'numpy':>9} "
        f"{'py nodes/s':>11} {'np nodes/s':>11} {'speedup':>8}"
    )
    for row in rows:
        numpy = row["numpy"]
        print(
            f"  {row['family']:<10} {row['cone_size']:>6} "
            f"{row['python']['total_seconds']:>8.3f}s "
            + (f"{numpy['total_seconds']:>8.3f}s " if numpy else f"{'n/a':>9} ")
            + f"{row['python']['nodes_per_sec']:>11.0f} "
            + (f"{numpy['nodes_per_sec']:>11.0f} " if numpy else f"{'n/a':>11} ")
            + (f"{row['speedup']:>7.2f}x" if row["speedup"] else f"{'n/a':>8}")
        )


def write_backend_json(full_rows, quick_rows, calibration: float) -> None:
    """Commit-format JSON: the full comparison plus the quick-mode
    pure-python baseline the CI smoke job regresses against."""
    payload = {
        "schema": 1,
        "width": BACKEND_WIDTH,
        "calibration_score": calibration,
        "families": full_rows,
        "quick_baseline": {
            "calibration_score": calibration,
            "families": [
                {
                    "family": row["family"],
                    "cone_size": row["cone_size"],
                    "python_nodes_per_sec": row["python"]["nodes_per_sec"],
                }
                for row in quick_rows
            ],
        },
    }
    BACKEND_OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")


def _two_largest(rows):
    return sorted(rows, key=lambda r: r["cone_size"], reverse=True)[:2]


def test_backend_numpy_speedup():
    """Acceptance: >= 5x wall-clock speedup on the two largest families."""
    import pytest

    if QUICK:
        pytest.skip("speedup acceptance needs full-size instances")
    if not backend_module.numpy_available():
        pytest.skip("numpy not installed")
    rows = run_backend_report()
    print_backend_report(rows)
    for row in _two_largest(rows):
        assert row["speedup"] is not None and row["speedup"] >= 5.0, (
            f"family {row['family']}: numpy speedup {row['speedup']} < 5.0x"
        )


def test_python_backend_no_regression():
    """CI smoke guard: quick-mode python nodes/sec, calibration-normalized,
    must stay within TOLERANCE of the committed quick baseline."""
    import pytest

    if not BACKEND_OUTPUT.exists():
        pytest.skip("no committed BENCH_kernel.json baseline")
    baseline = json.loads(BACKEND_OUTPUT.read_text()).get("quick_baseline")
    if not baseline:
        pytest.skip("committed BENCH_kernel.json has no quick baseline")
    base_cal = baseline["calibration_score"]
    base_rows = {row["family"]: row for row in baseline["families"]}
    current_cal = calibration_score()
    for name, instance in backend_instances(quick=True):
        if name not in base_rows:
            continue
        measured = measure_backend(instance.formula, "python", quick=True)
        normalized = (measured["nodes_per_sec"] / current_cal) / (
            base_rows[name]["python_nodes_per_sec"] / base_cal
        )
        assert normalized >= 1.0 - TOLERANCE, (
            f"family {name}: python backend at {normalized:.2f} of the "
            f"committed baseline (tolerance {TOLERANCE:.0%})"
        )


def main() -> None:
    rows = run_report()
    print_report(rows)
    worst = min(rows, key=lambda r: r["rounds_ratio"])
    print(
        f"\nworst-case rounds ratio: {worst['rounds_ratio']:.2f}x "
        f"({worst['family']}); acceptance threshold 2.0x"
    )
    backend_rows = run_backend_report(quick=False)
    print_backend_report(backend_rows)
    quick_rows = run_backend_report(quick=True)
    write_backend_json(backend_rows, quick_rows, calibration_score())
    print(f"\nbackend comparison written to {BACKEND_OUTPUT}")


if __name__ == "__main__":
    main()
