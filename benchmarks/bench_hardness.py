"""Structural hardness metrics of the benchmark families.

Uses :func:`repro.core.depgraph.analyze_prefix` to quantify how "Henkin"
each family's instances are: the number of incomparable dependency
pairs and the minimum elimination set (MaxSAT optimum of Eqs. 1-2).
The paper's narrative — multi-black-box PEC instances genuinely need
DQBF — becomes a measurable property: single-box instances linearize
for free, multi-box ones require eliminations.
"""

from __future__ import annotations

from repro.core.depgraph import analyze_prefix
from repro.pec.families import FAMILIES, generate_family, make_adder


def test_family_hardness_profile(benchmark, config):
    def measure():
        profile = {}
        for family in FAMILIES:
            instances = generate_family(family, config.count, scale=config.scale, seed=19)
            rows = [analyze_prefix(inst.formula.prefix) for inst in instances]
            profile[family] = {
                "mean_pairs": sum(r.num_incomparable_pairs for r in rows) / len(rows),
                "mean_min_elim": sum(r.min_elimination_set for r in rows) / len(rows),
                "qbf_fraction": sum(1 for r in rows if r.is_qbf) / len(rows),
            }
        return profile

    profile = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for family, metrics in profile.items():
        print(
            f"  {family:<10} pairs={metrics['mean_pairs']:6.1f} "
            f"min_elim={metrics['mean_min_elim']:5.2f} "
            f"qbf_fraction={metrics['qbf_fraction']:.2f}"
        )
    # the suite must be genuinely Henkin: most instances need eliminations
    total_qbf = sum(m["qbf_fraction"] for m in profile.values()) / len(profile)
    assert total_qbf < 0.5


def test_boxes_drive_hardness(benchmark):
    """More black boxes -> more incomparable pairs -> larger elimination set."""

    def measure():
        rows = []
        for boxes in (1, 2, 3):
            instance = make_adder(6, boxes, buggy=False, seed=23)
            rows.append((boxes, analyze_prefix(instance.formula.prefix)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for boxes, analysis in rows:
        print(f"  boxes={boxes}: {analysis.as_dict()}")
    pairs = [analysis.num_incomparable_pairs for _, analysis in rows]
    assert pairs[0] <= pairs[1] <= pairs[2]
    assert rows[0][1].min_elimination_set <= rows[2][1].min_elimination_set
