"""Benchmarks for the in-text claims of Section IV (S1, S2, S3).

* **S1** — HQS solves the overwhelming majority of its solved instances
  in under one second (paper: ~90%, IDQ only ~49%); on the scaled suite
  we check HQS's fast fraction exceeds IDQ's.
* **S2** — the MaxSAT selection is negligible (paper: < 0.06 s per
  instance).
* **S3** — the syntactic unit/pure checks take a small share of the
  runtime (paper: < 4%); absolute Python overheads are larger, so we
  assert a relaxed bound and report the measured value.
"""

from __future__ import annotations

from repro.experiments.extstats import extended_stats


def test_extstats_claims(benchmark, suite_records, config):
    stats = benchmark.pedantic(
        lambda: extended_stats(suite_records), rounds=1, iterations=1
    )
    print()
    print(f"In-text statistics ({config!r})")
    for key, value in stats.items():
        print(f"  {key}: {value}")

    # S1: HQS solves the vast majority of its solved instances in < 1 s.
    # (The paper also reports IDQ at ~49%; at laptop scale with short
    # timeouts IDQ's few solved instances are all trivial refutations, so
    # its fast-fraction is censored upward and not comparable.)
    hqs_fast = stats["hqs_under_1s_fraction"]
    assert hqs_fast is not None and hqs_fast >= 0.8

    # S2: MaxSAT selection negligible (paper: < 0.06 s; allow pure-Python slack)
    assert stats["max_maxsat_time"] < 0.5

    # S3: unit/pure share small (paper: < 4%; relaxed for Python overheads)
    assert stats["mean_unit_pure_fraction"] < 0.5
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if isinstance(v, (int, float))}
    )
