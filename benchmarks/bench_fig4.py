"""Benchmark regenerating **Fig. 4**: the HQS-vs-IDQ runtime scatter.

The claims checked are positional (the paper's figure is log-log):

* HQS's solved set is a superset of IDQ's ("HQS solves all instances
  solved by IDQ and 520 additional ones");
* almost every commonly solved instance lies below the diagonal;
* the maximum speedup spans orders of magnitude on the scaled suite.
"""

from __future__ import annotations

from repro.experiments.fig4 import build_scatter, scatter_summary, to_csv


def test_fig4_scatter(benchmark, suite_records, config):
    points = benchmark.pedantic(
        lambda: build_scatter(suite_records), rounds=1, iterations=1
    )
    summary = scatter_summary(points)
    print()
    print(f"Fig. 4 reproduction ({config!r})")
    for key, value in summary.items():
        print(f"  {key}: {value}")

    assert summary["points"] > 0
    # superset-of-solved claim.  At laptop timeouts a handful of c432
    # instances can fall to IDQ's single-call refutation while HQS still
    # eliminates (the paper discusses exactly these instances and had a
    # 2 h budget); allow a small tail, require near-superset.
    assert summary["idq_only_solved"] <= max(1, summary["points"] // 10)
    assert summary["hqs_only_solved"] >= 1
    assert summary["hqs_only_solved"] > summary["idq_only_solved"]
    # below-diagonal claim (0.05 s timer floor, cf. the figure's 0.1 s axes).
    # The threshold is deliberately loose: with a handful of instances per
    # family, one noisy sub-100 ms measurement moves the fraction a lot.
    if summary["both_solved"] >= 5:
        assert summary["below_diagonal_fraction"] >= 0.6
    benchmark.extra_info.update(
        {k: v for k, v in summary.items() if isinstance(v, (int, float))}
    )


def test_fig4_csv_series(benchmark, suite_records, tmp_path_factory):
    points = build_scatter(suite_records)
    path = tmp_path_factory.mktemp("fig4") / "scatter.csv"

    def write():
        path.write_text(to_csv(points))
        return path

    benchmark.pedantic(write, rounds=1, iterations=1)
    lines = path.read_text().strip().split("\n")
    assert len(lines) == len(points) + 1
