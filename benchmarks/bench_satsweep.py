"""Incremental SAT service benchmark: persistent session vs fresh solvers.

HQS issues a stream of closely related SAT queries — FRAIG miters,
constant probes, implication checks — over one slowly changing matrix
AIG.  The :class:`~repro.sat.incremental.AigSatSession` answers them
from a single long-lived CDCL solver: each cone is Tseitin-encoded at
most once and clauses learned refuting one merge keep pruning the next.
The fresh-per-query baseline (``persistent=False``) rebuilds the solver
and re-encodes the cone on every query, which is what the code did
before the service existed.

This benchmark replays the HQS inner loop (universal elimination rounds
interleaved with FRAIG sweeps and constant probes) on the PEC generator
families under both modes and asserts the headline claim: **at least a
2x reduction in total SAT conflicts, or 3x in clauses encoded, on at
least two families**.  The per-family numbers are written to
``BENCH_satsweep.json``.

Run under pytest (`pytest benchmarks/bench_satsweep.py`) or standalone:

    PYTHONPATH=src python benchmarks/bench_satsweep.py

``REPRO_BENCH_SATSWEEP_QUICK=1`` shrinks the instances for CI smoke runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List

from repro.core.elimination import eliminate_universal
from repro.core.hqs import HqsSolver
from repro.core.preprocess import preprocess
from repro.core.state import AigDqbf
from repro.core.unitpure import UnitPureStats, apply_unit_pure
from repro.aig.fraig import FraigEngine, FraigOptions
from repro.pec.families import make_adder, make_bitcell, make_comp, make_pec_xor
from repro.sat.incremental import AigSatSession

QUICK = os.environ.get("REPRO_BENCH_SATSWEEP_QUICK", "") not in ("", "0")
MAX_ROUNDS = 4 if QUICK else 5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_satsweep.json"


def family_instances():
    """Representative generator-family instances (smaller in quick mode)."""
    if QUICK:
        return [
            ("adder", make_adder(3, 2, False, seed=5)),
            ("pec_xor", make_pec_xor(6, 2, False, seed=1)),
            ("bitcell", make_bitcell(3, 2, False, seed=3)),
        ]
    return [
        ("adder", make_adder(4, 2, False, seed=5)),
        ("pec_xor", make_pec_xor(8, 2, False, seed=1)),
        ("bitcell", make_bitcell(4, 2, False, seed=3)),
        ("comp", make_comp(3, 2, False, seed=7)),
    ]


def _build_state(formula) -> AigDqbf:
    """The solver's own preprocessing + AIG construction, sans main loop."""
    solver = HqsSolver()
    pre = preprocess(formula.copy(), detect_gates=True)
    state = solver._build_state(pre.formula, pre.gates)
    state.prune_prefix()
    return state


def run_workload(formula, persistent: bool) -> Dict[str, float]:
    """Replay the HQS inner loop and return the SAT-service counters.

    Each round mirrors one fraig interval of the solver: a constant
    probe on the current root, a FRAIG sweep, one universal elimination
    (Theorem 1) and a unit/pure pass.  The same :class:`AigSatSession`
    serves every query; ``persistent`` switches between the long-lived
    solver and the fresh-solver-per-query baseline.
    """
    state = _build_state(formula)
    session = AigSatSession(state.aig, persistent=persistent)
    engine = FraigEngine(FraigOptions(num_patterns=16))
    apply_unit_pure(state, UnitPureStats(), batched=True)
    rounds = 0
    while rounds < MAX_ROUNDS and state.prefix.universals and state.root > 1:
        session.rebind(state.aig)
        # constant probes, as the solver's endgame / SAT-probe path issues
        session.is_satisfiable(state.root)
        session.is_tautology(state.root)
        # FRAIG sweep into a fresh manager, as HqsSolver._fraig does
        fresh, root = engine.sweep(state.aig, state.root, session=session)
        fresh.counters = state.aig.counters
        fresh.cache_generation = state.aig.cache_generation + 1
        state.aig = fresh
        state.root = root
        session.rebind(state.aig)
        if state.root <= 1 or not state.prefix.universals:
            break
        x = sorted(state.prefix.universals)[0]
        eliminate_universal(state, x, fused=True)
        state.prune_prefix()
        apply_unit_pure(state, UnitPureStats(), batched=True)
        rounds += 1
    if state.root > 1:
        session.rebind(state.aig)
        session.is_satisfiable(state.root)
    counters = session.stats.as_dict()
    counters["rounds"] = rounds
    return counters


def run_report() -> List[Dict[str, float]]:
    rows = []
    for name, instance in family_instances():
        session_stats = run_workload(instance.formula, persistent=True)
        fresh_stats = run_workload(instance.formula, persistent=False)
        rows.append(
            {
                "family": name,
                "queries": session_stats["queries"],
                "session_conflicts": session_stats["conflicts"],
                "fresh_conflicts": fresh_stats["conflicts"],
                "conflicts_ratio": fresh_stats["conflicts"]
                / max(session_stats["conflicts"], 1),
                "session_clauses_encoded": session_stats["clauses_encoded"],
                "fresh_clauses_encoded": fresh_stats["clauses_encoded"],
                "clauses_ratio": fresh_stats["clauses_encoded"]
                / max(session_stats["clauses_encoded"], 1),
                "session_cache_hits": session_stats["encode_cache_hits"],
                "session_learnts_reused": session_stats["learnts_reused"],
                "counterexamples": session_stats["counterexamples"],
                "rounds": session_stats["rounds"],
            }
        )
    return rows


def write_json(rows) -> None:
    OUTPUT.write_text(json.dumps({"rows": rows}, indent=2) + "\n")


def print_report(rows) -> None:
    print("\nincremental SAT service (persistent session vs fresh per query)")
    header = (
        f"  {'family':<10} {'queries':>8} {'cfl sess':>9} {'cfl fresh':>9} "
        f"{'ratio':>6} {'cls sess':>9} {'cls fresh':>9} {'ratio':>6}"
    )
    print(header)
    for row in rows:
        print(
            f"  {row['family']:<10} {row['queries']:>8} "
            f"{row['session_conflicts']:>9} {row['fresh_conflicts']:>9} "
            f"{row['conflicts_ratio']:>6.2f} "
            f"{row['session_clauses_encoded']:>9} "
            f"{row['fresh_clauses_encoded']:>9} {row['clauses_ratio']:>6.2f}"
        )


def _row_passes(row) -> bool:
    return row["conflicts_ratio"] >= 2.0 or row["clauses_ratio"] >= 3.0


def test_session_reduces_sat_work():
    """Acceptance: >= 2x fewer conflicts or >= 3x fewer clauses encoded
    on at least two families, recorded in BENCH_satsweep.json."""
    rows = run_report()
    print_report(rows)
    write_json(rows)
    passing = [row["family"] for row in rows if _row_passes(row)]
    assert len(passing) >= 2, (
        f"session mode beat fresh mode on only {passing} "
        f"(need >= 2 families at >= 2x conflicts or >= 3x clauses); "
        f"rows: {rows}"
    )


def test_workload_exercises_the_service():
    """Sanity: the replayed loop actually issues queries and reuses state."""
    name, instance = family_instances()[0]
    stats = run_workload(instance.formula, persistent=True)
    assert stats["queries"] > 0
    assert stats["encode_cache_hits"] > 0
    assert stats["solver_resets"] == 0


def main() -> None:
    rows = run_report()
    print_report(rows)
    write_json(rows)
    worst = sorted(rows, key=lambda r: max(r["conflicts_ratio"], r["clauses_ratio"]))
    print(f"\nwritten {OUTPUT.name}; families passing acceptance: "
          f"{[r['family'] for r in rows if _row_passes(r)]}")
    if worst:
        row = worst[0]
        print(
            f"weakest family: {row['family']} "
            f"(conflicts {row['conflicts_ratio']:.2f}x, "
            f"clauses {row['clauses_ratio']:.2f}x)"
        )


if __name__ == "__main__":
    main()
