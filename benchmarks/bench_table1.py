"""Benchmark regenerating **Table I** of the paper.

One benchmark per (family, solver) measures the time to solve that
family's scaled instance pool; the summary benchmark prints the full
table and asserts the qualitative claims:

* HQS solves at least as many instances per family as IDQ;
* HQS solves the easy families (adder, bitcell, lookahead, pec_xor, z4)
  completely;
* on commonly solved instances HQS's accumulated time is far below
  IDQ's in aggregate.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import run_records
from repro.experiments.runner import generate_suite, run_solver
from repro.experiments.table1 import build_table, format_table
from repro.pec.families import FAMILIES

EASY_FAMILIES = ("adder", "bitcell", "lookahead", "pec_xor", "z4")


def solve_family_pool(family, solver, config):
    """One family's pool through the configured execution strategy.

    ``REPRO_BENCH_JOBS=1`` keeps the historical serial in-process path
    (comparable to older benchmark numbers); anything larger measures
    the fault-tolerant worker pool end to end.
    """
    instances = generate_suite(config, families=(family,))[family]
    if config.jobs == 1:
        return [run_solver(solver, inst, config) for inst in instances]
    return run_records(instances, (solver,), config, jobs=config.jobs)


@pytest.mark.parametrize("family", FAMILIES)
def test_table1_family_hqs(benchmark, family, config):
    records = benchmark.pedantic(
        lambda: solve_family_pool(family, "HQS", config), rounds=1, iterations=1
    )
    solved = sum(1 for r in records if r.solved)
    benchmark.extra_info["solved"] = solved
    benchmark.extra_info["instances"] = len(records)
    if family in EASY_FAMILIES:
        assert solved == len(records), f"HQS should solve all {family} instances"


@pytest.mark.parametrize("family", FAMILIES)
def test_table1_family_idq(benchmark, family, config):
    records = benchmark.pedantic(
        lambda: solve_family_pool(family, "IDQ", config), rounds=1, iterations=1
    )
    benchmark.extra_info["solved"] = sum(1 for r in records if r.solved)
    benchmark.extra_info["instances"] = len(records)


def test_table1_summary(benchmark, suite_records, config):
    rows = benchmark.pedantic(
        lambda: build_table(suite_records), rounds=1, iterations=1
    )
    print()
    print(f"Table I reproduction ({config!r})")
    print(format_table(rows))

    by_key = {(row.family, row.solver): row for row in rows}
    # Per-family claim: HQS solves at least as much as IDQ everywhere,
    # except possibly c432, where IDQ's single-call refutations can win
    # under short timeouts (Section IV discusses exactly those instances;
    # HqsOptions(use_sat_probe=True) closes the gap).
    violations = [
        family
        for family in FAMILIES
        if by_key[(family, "HQS")].solved < by_key[(family, "IDQ")].solved
    ]
    assert set(violations) <= {"c432"}, f"unexpected IDQ wins: {violations}"
    total_hqs = by_key[("total", "HQS")]
    total_idq = by_key[("total", "IDQ")]
    assert total_hqs.solved > total_idq.solved
    # shape claim: on commonly solved instances HQS is dramatically faster
    if total_idq.total_time_common > 1.0:
        assert total_hqs.total_time_common < total_idq.total_time_common
