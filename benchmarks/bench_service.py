"""Solver service benchmark: front door + cache + warm pool vs cold solving.

A PEC regression workload hammers the same few circuits over and over —
re-verification after every edit, duplicate submissions from concurrent
CI shards.  The service answers repeats from the fingerprint-keyed
result cache and coalesces duplicates that arrive while the first solve
is still running; only genuinely new formulas reach the warm worker
pool.  The baseline is what the code did before the service existed:
parse and solve every request from scratch, one solver per request.

This benchmark replays a **90%-repeat workload** (N requests drawn from
K = N/10 unique instances) through a real :class:`ServiceServer` on an
ephemeral TCP port with several concurrent clients, then replays the
identical schedule against two cold baselines:

* ``cold_process`` — one ``hqs`` CLI process per request (interpreter
  start + import + parse + solve), which is exactly what issuing these
  requests looked like before the service existed.  The headline
  acceptance is against this baseline: **at least a 10x throughput
  improvement** (3x in quick mode, where the request count is too
  small to amortize startup).
* ``cold_inprocess`` — a fresh :class:`HqsSolver` per request inside
  one warm interpreter.  This isolates the cache/warm-pool effect from
  process startup.  Note the arithmetic cap: with exactly 90% repeats
  this baseline can never show more than ``N/K = 10x`` on a
  single-core host (the K misses cost the same in both modes), so it
  carries a lower floor and is reported for transparency.

Requests/sec, p50/p95 latency, cache hit rate and the shutdown log
integrity check (zero lost, zero duplicated results) are written to
``BENCH_service.json``.

Run under pytest (`pytest benchmarks/bench_service.py`) or standalone:

    PYTHONPATH=src python benchmarks/bench_service.py

``REPRO_BENCH_SERVICE_QUICK=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro import durable
from repro.core.hqs import HqsOptions, HqsSolver
from repro.core.result import Limits, SAT, UNSAT
from repro.formula.dqdimacs import parse_dqdimacs, write_dqdimacs
from repro.pec.families import make_comp
from repro.service import ServiceClient, ServiceConfig, ServiceServer, WorkerPool
from repro.service.pool import DEFAULT_SOLVER_OPTIONS

QUICK = os.environ.get("REPRO_BENCH_SERVICE_QUICK", "") not in ("", "0")
NUM_REQUESTS = 30 if QUICK else 80
NUM_CLIENTS = 4
NUM_WORKERS = 2
TIMEOUT = 60.0
SPEEDUP_FLOOR = 3.0 if QUICK else 10.0
INPROCESS_FLOOR = 2.0 if QUICK else 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def unique_instances():
    """The K unique formulas behind the workload (10% of all requests).

    Buggy comparator miters: representative of the PEC regression loop
    (each cold solve runs a real elimination sequence, ~0.15 s) rather
    than instances so small that transport overhead drowns the solving.
    The family hint carries the unique's index so the misses spread
    across the pool instead of queueing on one affinity slot.

    Two of the full-mode seeds happen to inject the same bug, making
    their instances semantically identical near-duplicates — the
    canonical fingerprint dedups them server-side (hence one fewer
    store than "unique" formulas in the report), which is exactly the
    behavior the cache is for.
    """
    builders = [
        lambda seed: make_comp(4, 2, True, seed=seed),
        lambda seed: make_comp(5, 2, True, seed=seed),
    ]
    count = max(1, NUM_REQUESTS // 10)
    uniques = []
    for index in range(count):
        formula = builders[index % len(builders)](seed=11 + index).formula
        uniques.append((f"comp-{index}", write_dqdimacs(formula)))
    return uniques


def request_schedule(uniques, seed: int = 20150):
    """N requests over the uniques: each introduced once, then repeats."""
    rng = random.Random(seed)
    schedule = list(range(len(uniques)))
    while len(schedule) < NUM_REQUESTS:
        schedule.append(rng.randrange(len(uniques)))
    return schedule


# ----------------------------------------------------------------------
# service mode
# ----------------------------------------------------------------------

def start_server(config: ServiceConfig, pool: WorkerPool):
    server = ServiceServer(config, pool)
    ready = threading.Event()
    box: Dict[str, object] = {}

    def runner():
        async def go():
            await server.start()
            ready.set()
            return await server.serve(install_signals=False)

        box["summary"] = asyncio.run(go())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not ready.wait(10.0):
        raise RuntimeError("service did not start")
    return server, box, thread


def run_service_mode(uniques, schedule, log_path: str) -> Dict[str, object]:
    # Fork the warm workers before the server thread starts its loop.
    pool = WorkerPool(size=NUM_WORKERS)
    config = ServiceConfig(port=0, workers=NUM_WORKERS, log_path=log_path,
                           default_timeout=TIMEOUT, drain_timeout=10.0)
    server, box, thread = start_server(config, pool)

    cursor_lock = threading.Lock()
    cursor = [0]
    latencies: List[float] = []
    responses: List[Dict[str, object]] = []

    def client_loop():
        with ServiceClient(port=server.port, timeout=TIMEOUT) as client:
            while True:
                with cursor_lock:
                    if cursor[0] >= len(schedule):
                        return
                    position = cursor[0]
                    cursor[0] += 1
                family, text = uniques[schedule[position]]
                started = time.perf_counter()
                reply = client.solve(text, family=family, timeout=TIMEOUT)
                elapsed = time.perf_counter() - started
                with cursor_lock:
                    latencies.append(elapsed)
                    responses.append(reply)

    started = time.perf_counter()
    clients = [threading.Thread(target=client_loop) for _ in range(NUM_CLIENTS)]
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    total = time.perf_counter() - started

    with ServiceClient(port=server.port, timeout=TIMEOUT) as client:
        stats = client.stats()
        client.shutdown()
    thread.join(timeout=30.0)
    summary = box["summary"]

    tags = [str(r.get("cache")) for r in responses]
    ordered = sorted(latencies)
    definitive = {
        str(r["fingerprint"]) for r in responses if r.get("status") in (SAT, UNSAT)
    }
    logged = _load_log_keys(log_path)
    return {
        "total_s": total,
        "rps": len(schedule) / total,
        "p50_ms": 1000 * ordered[len(ordered) // 2],
        "p95_ms": 1000 * ordered[int(0.95 * (len(ordered) - 1))],
        "cache_tags": {tag: tags.count(tag) for tag in sorted(set(tags))},
        "client_hit_rate": sum(
            tag in ("hit", "disk", "coalesced") for tag in tags
        ) / len(tags),
        "server_cache": stats["cache"],
        "pool": stats["pool"],
        "shutdown": summary,
        "log_entries": len(logged),
        "log_duplicates": 0 if len(logged) == len(set(logged)) else 1,
        "log_lost": len(definitive - set(logged)),
        "statuses": {s: sum(1 for r in responses if r.get("status") == s)
                     for s in sorted({str(r.get("status")) for r in responses})},
    }


def _load_log_keys(log_path: str) -> List[str]:
    keys = []
    with open(log_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                payload, _verdict = durable.unframe_line(line)
                keys.append(str(json.loads(payload)["instance"]))
    return keys


# ----------------------------------------------------------------------
# cold baseline
# ----------------------------------------------------------------------

def run_cold_inprocess_mode(uniques, schedule) -> Dict[str, object]:
    """Fresh parse + fresh solver per request, one warm interpreter.

    Same solver options as the warm workers so the measured gap is the
    service machinery (cache, dedup, warm sessions) and not a config
    difference.
    """
    latencies = []
    started = time.perf_counter()
    for index in schedule:
        _family, text = uniques[index]
        t0 = time.perf_counter()
        solver = HqsSolver(HqsOptions(**DEFAULT_SOLVER_OPTIONS))
        result = solver.solve(parse_dqdimacs(text), Limits(time_limit=TIMEOUT))
        assert result.status in (SAT, UNSAT)
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - started
    return _latency_summary(latencies, total)


def run_cold_process_mode(uniques, schedule, tmp_dir: str) -> Dict[str, object]:
    """One ``hqs`` CLI process per request: the pre-service workflow."""
    import subprocess
    import sys

    paths = []
    for index, (_family, text) in enumerate(uniques):
        path = os.path.join(tmp_dir, f"unique-{index}.dqdimacs")
        with open(path, "w", encoding="ascii") as handle:
            handle.write(text)
        paths.append(path)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    latencies = []
    started = time.perf_counter()
    for index in schedule:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli",
             "--timeout", str(TIMEOUT), paths[index]],
            capture_output=True, env=env,
        )
        assert proc.returncode in (10, 20), proc.stdout
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - started
    return _latency_summary(latencies, total)


def _latency_summary(latencies, total: float) -> Dict[str, object]:
    ordered = sorted(latencies)
    return {
        "total_s": total,
        "rps": len(latencies) / total,
        "p50_ms": 1000 * ordered[len(ordered) // 2],
        "p95_ms": 1000 * ordered[int(0.95 * (len(ordered) - 1))],
    }


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def run_report(tmp_dir: str) -> Dict[str, object]:
    uniques = unique_instances()
    schedule = request_schedule(uniques)
    log_path = os.path.join(tmp_dir, "bench_service.jsonl")
    service = run_service_mode(uniques, schedule, log_path)
    cold_process = run_cold_process_mode(uniques, schedule, tmp_dir)
    cold_inprocess = run_cold_inprocess_mode(uniques, schedule)
    return {
        "quick": QUICK,
        "requests": len(schedule),
        "unique_formulas": len(uniques),
        "repeat_rate": 1.0 - len(uniques) / len(schedule),
        "clients": NUM_CLIENTS,
        "workers": NUM_WORKERS,
        "service": service,
        "cold_process": cold_process,
        "cold_inprocess": cold_inprocess,
        "speedup": cold_process["total_s"] / service["total_s"],
        "speedup_inprocess": cold_inprocess["total_s"] / service["total_s"],
    }


def write_json(report) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def print_report(report) -> None:
    service = report["service"]
    print(f"\nsolver service vs cold per-request solving "
          f"({report['requests']} requests, "
          f"{report['unique_formulas']} unique, "
          f"{report['repeat_rate']:.0%} repeats)")
    print(f"  service:        {service['rps']:8.1f} req/s  "
          f"p50 {service['p50_ms']:7.1f} ms  p95 {service['p95_ms']:7.1f} ms  "
          f"hit rate {service['client_hit_rate']:.0%}")
    for key, label in (("cold_process", "cold process"),
                       ("cold_inprocess", "cold in-proc")):
        cold = report[key]
        print(f"  {label}:   {cold['rps']:8.1f} req/s  "
              f"p50 {cold['p50_ms']:7.1f} ms  p95 {cold['p95_ms']:7.1f} ms")
    print(f"  speedup: {report['speedup']:.1f}x vs process, "
          f"{report['speedup_inprocess']:.1f}x vs in-process  "
          f"cache tags {service['cache_tags']}  "
          f"log entries {service['log_entries']} "
          f"(lost {service['log_lost']}, dup {service['log_duplicates']})")


def _check(report) -> None:
    service = report["service"]
    assert report["speedup"] >= SPEEDUP_FLOOR, (
        f"service speedup {report['speedup']:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor; report: {report}"
    )
    assert report["speedup_inprocess"] >= INPROCESS_FLOOR, (
        f"in-process speedup {report['speedup_inprocess']:.1f}x below the "
        f"{INPROCESS_FLOOR}x floor; report: {report}"
    )
    assert service["client_hit_rate"] >= 0.7, service["cache_tags"]
    # graceful shutdown: nothing lost, nothing duplicated
    assert service["shutdown"]["undrained"] == 0
    assert service["log_lost"] == 0 and service["log_duplicates"] == 0


def test_service_beats_cold_solving(tmp_path):
    """Acceptance: >= 10x throughput vs process-per-request solving on
    the 90%-repeat workload (3x in quick mode), >= 70% client-visible
    cache hits, and a clean drain with every definitive result logged
    exactly once."""
    report = run_report(str(tmp_path))
    print_report(report)
    write_json(report)
    _check(report)


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        report = run_report(tmp_dir)
    print_report(report)
    write_json(report)
    _check(report)
    print(f"\nwritten {OUTPUT.name}")


if __name__ == "__main__":
    main()
