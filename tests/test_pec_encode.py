"""Tests for the PEC -> DQBF encoding against the realizability oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hqs import solve_dqbf
from repro.core.result import SAT, UNSAT
from repro.pec.circuit import Circuit
from repro.pec.encode import brute_force_realizable, encode_pec


def xor3_spec() -> Circuit:
    c = Circuit("spec", ["x0", "x1", "x2"], ["out"])
    c.add_gate("t1", "xor", ["x0", "x1"])
    c.add_gate("out", "xor", ["t1", "x2"])
    return c


class TestEncodeValidation:
    def test_spec_must_be_complete(self):
        spec = Circuit("s", ["a"], ["o"])
        spec.add_black_box("bb", ["a"], ["o"])
        impl = Circuit("i", ["a"], ["o"])
        impl.add_gate("o", "buf", ["a"])
        with pytest.raises(ValueError):
            encode_pec(spec, impl)

    def test_interfaces_must_match(self):
        spec = Circuit("s", ["a"], ["o"])
        spec.add_gate("o", "buf", ["a"])
        impl = Circuit("i", ["b"], ["o"])
        impl.add_gate("o", "buf", ["b"])
        with pytest.raises(ValueError):
            encode_pec(spec, impl)


class TestEncodeStructure:
    def test_variable_kinds(self):
        spec = xor3_spec()
        impl = Circuit("impl", spec.inputs, spec.outputs)
        impl.add_black_box("bb0", ["x0", "x1"], ["t1"])
        impl.add_gate("out", "xor", ["t1", "x2"])
        formula = encode_pec(spec, impl)
        prefix = formula.prefix
        # 3 primary inputs + 2 z-copies universal
        assert len(prefix.universals) == 5
        # exactly one existential (the box output) with |D| = 2, the rest
        # are Tseitin auxiliaries with full dependency sets
        box_outputs = [
            y for y in prefix.existentials
            if len(prefix.dependencies(y)) == 2
        ]
        assert len(box_outputs) == 1
        for y in prefix.existentials:
            if y not in box_outputs:
                assert prefix.dependencies(y) == frozenset(prefix.universals)

    def test_closed_formula(self):
        spec = xor3_spec()
        impl = Circuit("impl", spec.inputs, spec.outputs)
        impl.add_black_box("bb0", ["x0", "x1"], ["t1"])
        impl.add_gate("out", "xor", ["t1", "x2"])
        formula = encode_pec(spec, impl)
        formula.validate()


class TestEncodeSemantics:
    def test_realizable_single_box(self):
        spec = xor3_spec()
        impl = Circuit("impl", spec.inputs, spec.outputs)
        impl.add_black_box("bb0", ["x0", "x1"], ["t1"])
        impl.add_gate("out", "xor", ["t1", "x2"])
        assert brute_force_realizable(spec, impl)
        assert solve_dqbf(encode_pec(spec, impl)).status == SAT

    def test_unrealizable_wrong_tail(self):
        spec = xor3_spec()
        impl = Circuit("impl", spec.inputs, spec.outputs)
        impl.add_black_box("bb0", ["x0", "x1"], ["t1"])
        impl.add_gate("out", "and", ["t1", "x2"])
        assert not brute_force_realizable(spec, impl)
        assert solve_dqbf(encode_pec(spec, impl)).status == UNSAT

    def test_two_boxes_henkin_dependency(self):
        """xor(u(a), v(b)) == xor(a, b) is realizable; and(u(a), v(b)) is not."""
        spec = Circuit("spec", ["a", "b"], ["o"])
        spec.add_gate("o", "xor", ["a", "b"])
        for tail, realizable in (("xor", True), ("and", False)):
            impl = Circuit("impl", ["a", "b"], ["o"])
            impl.add_black_box("bb1", ["a"], ["u"])
            impl.add_black_box("bb2", ["b"], ["v"])
            impl.add_gate("o", tail, ["u", "v"])
            assert brute_force_realizable(spec, impl) == realizable
            status = solve_dqbf(encode_pec(spec, impl)).status
            assert status == (SAT if realizable else UNSAT)

    def test_box_feeding_box(self):
        """Chained black boxes stay realizable."""
        spec = xor3_spec()
        impl = Circuit("impl", spec.inputs, spec.outputs)
        impl.add_black_box("bb0", ["x0", "x1"], ["t1"])
        impl.add_black_box("bb1", ["t1", "x2"], ["out"])
        assert brute_force_realizable(spec, impl)
        assert solve_dqbf(encode_pec(spec, impl)).status == SAT

    def test_unused_box_output_sat(self):
        """Regression for the aux-variable collision: a black box whose
        output drives nothing must yield a trivially satisfiable DQBF."""
        spec = Circuit("spec", ["a", "b"], ["o"])
        spec.add_gate("o", "and", ["a", "b"])
        spec.add_gate("dead", "or", ["a", "b"])
        impl = Circuit("impl", ["a", "b"], ["o"])
        impl.add_black_box("bb", ["a", "b"], ["dead"])
        impl.add_gate("o", "and", ["a", "b"])
        assert solve_dqbf(encode_pec(spec, impl)).status == SAT

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_small_circuits_match_oracle(self, seed):
        rng = random.Random(seed)
        num_inputs = rng.randint(2, 3)
        inputs = [f"i{k}" for k in range(num_inputs)]
        spec = Circuit("spec", inputs, ["o"])
        signals = list(inputs)
        for g in range(rng.randint(1, 4)):
            kind = rng.choice(["and", "or", "xor"])
            a, b = rng.choice(signals), rng.choice(signals)
            name = f"g{g}"
            spec.add_gate(name, kind, [a, b])
            signals.append(name)
        spec.add_gate("o", "buf", [signals[-1]])

        # cut one random gate out as a black box
        cut = rng.choice([g.output for g in spec.gates if g.output != "o"] or ["o"])
        impl = Circuit("impl", inputs, ["o"])
        for gate in spec.gates:
            if gate.output == cut:
                impl.add_black_box("bb", gate.inputs, [gate.output])
            else:
                impl.add_gate(gate.output, gate.kind, gate.inputs)

        expected = brute_force_realizable(spec, impl)
        assert expected is True  # cutting out a gate is always realizable
        assert solve_dqbf(encode_pec(spec, impl)).status == SAT
