"""Tests for the MaxSAT-based minimum elimination set (Eqs. 1-2)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.depgraph import is_acyclic
from repro.core.selection import order_by_copy_cost, select_elimination_set
from repro.formula.prefix import DependencyPrefix


def prefix_of(universals, existentials) -> DependencyPrefix:
    prefix = DependencyPrefix()
    for x in universals:
        prefix.add_universal(x)
    for y, deps in existentials:
        prefix.add_existential(y, deps)
    return prefix


def eliminate_all(prefix: DependencyPrefix, variables) -> DependencyPrefix:
    reduced = prefix.copy()
    for x in variables:
        reduced.remove_universal(x)
    return reduced


def brute_force_minimum(prefix: DependencyPrefix) -> int:
    """Smallest universal subset whose removal makes the prefix acyclic."""
    universals = prefix.universals
    for size in range(len(universals) + 1):
        for subset in itertools.combinations(universals, size):
            if is_acyclic(eliminate_all(prefix, subset)):
                return size
    raise AssertionError("removing all universals always yields acyclic")


class TestSelection:
    def test_acyclic_prefix_needs_nothing(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [1, 2])])
        result = select_elimination_set(prefix)
        assert result.variables == []
        assert result.num_pairs == 0

    def test_example_1_needs_one_variable(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        result = select_elimination_set(prefix)
        assert len(result.variables) == 1
        assert result.variables[0] in (1, 2)
        assert result.num_pairs == 1

    def test_elimination_makes_acyclic(self):
        prefix = prefix_of(
            [1, 2, 3],
            [(4, [1, 2]), (5, [2, 3]), (6, [1, 3])],
        )
        result = select_elimination_set(prefix)
        assert is_acyclic(eliminate_all(prefix, result.variables))

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_minimality_and_sufficiency(self, data):
        nu = data.draw(st.integers(1, 4))
        ne = data.draw(st.integers(1, 4))
        universals = list(range(1, nu + 1))
        existentials = []
        for i in range(ne):
            deps = data.draw(
                st.lists(st.sampled_from(universals), unique=True, max_size=nu)
            )
            existentials.append((nu + 1 + i, deps))
        prefix = prefix_of(universals, existentials)
        result = select_elimination_set(prefix)
        # sufficiency: removing the set breaks every cycle
        assert is_acyclic(eliminate_all(prefix, result.variables))
        # minimality: matches brute force optimum
        assert len(result.variables) == brute_force_minimum(prefix)

    def test_maxsat_time_recorded(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        result = select_elimination_set(prefix)
        assert result.maxsat_time >= 0.0


class TestCopyCostOrdering:
    def test_orders_by_dependent_count(self):
        prefix = prefix_of(
            [1, 2],
            [(3, [1]), (4, [1]), (5, [2])],
        )
        ordered = order_by_copy_cost(prefix, [1, 2])
        assert ordered == [2, 1]  # x2 has 1 dependent, x1 has 2

    def test_ties_break_by_variable(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        assert order_by_copy_cost(prefix, [2, 1]) == [1, 2]
