"""Tests for the ROBDD substrate and the BDD-backed DQBF solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.graph import Bdd, cnf_to_bdd
from repro.bdd.solver import solve_bdd
from repro.core.result import SAT, UNKNOWN, UNSAT, Limits
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import cnf_strategy, dqbf_strategy


class TestBddBasics:
    def test_terminals(self):
        bdd = Bdd()
        assert bdd.lnot(Bdd.TRUE) == Bdd.FALSE
        assert bdd.land(Bdd.TRUE, Bdd.FALSE) == Bdd.FALSE
        assert bdd.lor(Bdd.FALSE, Bdd.TRUE) == Bdd.TRUE

    def test_canonicity(self):
        """Equivalent functions share a node — BDDs are canonical."""
        bdd = Bdd()
        x, y = bdd.var(1), bdd.var(2)
        demorgan_a = bdd.lnot(bdd.land(x, y))
        demorgan_b = bdd.lor(bdd.lnot(x), bdd.lnot(y))
        assert demorgan_a == demorgan_b

    def test_var_order_first_use(self):
        bdd = Bdd()
        bdd.declare(5, 3)
        f = bdd.land(bdd.var(3), bdd.var(5))
        assert bdd.support(f) == {3, 5}

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            Bdd().var(0)

    def test_idempotence_and_negation(self):
        bdd = Bdd()
        x = bdd.var(1)
        assert bdd.land(x, x) == x
        assert bdd.land(x, bdd.lnot(x)) == Bdd.FALSE
        assert bdd.lxor(x, x) == Bdd.FALSE
        assert bdd.lxnor(x, x) == Bdd.TRUE


class TestBddSemantics:
    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy(max_vars=5, max_clauses=12, max_len=3))
    def test_cnf_to_bdd_matches_cnf(self, clauses):
        bdd, f = cnf_to_bdd(clauses)
        variables = sorted({abs(l) for c in clauses for l in c})
        for values in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, values))
            expected = all(
                any((lit > 0) == assignment[abs(lit)] for lit in clause)
                for clause in clauses
            )
            got = (f == Bdd.TRUE) if f in (0, 1) else bdd.evaluate(f, assignment)
            assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_restrict_quantify(self, seed):
        rng = random.Random(seed)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, 4) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 8))
        ]
        bdd, f = cnf_to_bdd(clauses)
        if f in (0, 1):
            return
        v = rng.randint(1, 4)
        bdd.declare(v)
        r0 = bdd.restrict(f, v, False)
        r1 = bdd.restrict(f, v, True)
        ex = bdd.exists(f, v)
        fa = bdd.forall(f, v)
        variables = sorted(bdd.support(f) | {v})
        for values in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, values))
            low = {**assignment, v: False}
            high = {**assignment, v: True}

            def val(node, asg):
                return (node == Bdd.TRUE) if node in (0, 1) else bdd.evaluate(node, asg)

            assert val(r0, assignment) == val(f, low)
            assert val(r1, assignment) == val(f, high)
            assert val(ex, assignment) == (val(f, low) or val(f, high))
            assert val(fa, assignment) == (val(f, low) and val(f, high))

    def test_compose(self):
        bdd = Bdd()
        f = bdd.lxor(bdd.var(1), bdd.var(2))
        g = bdd.land(bdd.var(3), bdd.var(4))
        composed = bdd.compose(f, 2, g)
        for v1, v3, v4 in itertools.product([False, True], repeat=3):
            expected = v1 ^ (v3 and v4)
            assert bdd.evaluate(composed, {1: v1, 3: v3, 4: v4}) == expected

    def test_rename_rejects_support_collision(self):
        bdd = Bdd()
        f = bdd.land(bdd.var(1), bdd.var(2))
        with pytest.raises(ValueError):
            bdd.rename(f, {1: 2})

    def test_sat_count(self):
        bdd = Bdd()
        f = bdd.lor(bdd.var(1), bdd.var(2))
        assert bdd.sat_count(f, [1, 2]) == 3
        assert bdd.sat_count(f, [1, 2, 3]) == 6
        assert bdd.sat_count(Bdd.TRUE, [1, 2]) == 4
        assert bdd.sat_count(Bdd.FALSE, [1]) == 0

    def test_size_counts_reachable_nodes(self):
        bdd = Bdd()
        f = bdd.land(bdd.var(1), bdd.var(2))
        assert bdd.size(f) == 2
        assert bdd.size(Bdd.TRUE) == 0


class TestBddSolver:
    @settings(max_examples=80, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_matches_oracle(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        assert solve_bdd(formula.copy()).status == expected

    def test_limits(self):
        from repro.pec.families import make_comp

        formula = make_comp(8, 3, buggy=False, seed=3).formula
        timed_out = solve_bdd(formula.copy(), Limits(time_limit=0.0))
        assert timed_out.status == UNKNOWN
        assert timed_out.failure is not None
        assert timed_out.failure.resource == "time"
        result = solve_bdd(formula.copy(), Limits(node_limit=1, time_limit=5))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource in ("nodes", "time")

    def test_stats(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[3, 4, 1], [-3, -4, 2], [3, -4, -1], [-3, 4, -2]],
        )
        from repro.bdd.solver import BddEliminationSolver

        solver = BddEliminationSolver()
        result = solver.solve(formula)
        assert result.solved
        assert result.stats.get("universal_eliminations", 0) >= 1
