"""Tests for the incremental SAT service (`repro.sat.incremental`).

The property tests pin the session's verdicts to the fresh-solver
reference path (``aig_to_cnf`` + a throwaway ``CdclSolver``) and to
exhaustive evaluation, across interleaved query kinds, rebinds and
counterexample-refined FRAIG sweeps.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.cnf_bridge import aig_to_cnf, cnf_to_aig
from repro.aig.fraig import FraigEngine, FraigOptions, fraig_root
from repro.aig.graph import FALSE, TRUE, Aig, complement
from repro.errors import TimeoutExceeded
from repro.sat.incremental import AigSatSession
from repro.sat.solver import SAT, CdclSolver

from test_aig_graph import random_edge


def fresh_is_satisfiable(aig, root):
    """Reference implementation: throwaway Tseitin + throwaway solver."""
    if root == FALSE:
        return False
    if root == TRUE:
        return True
    cnf, root_lit, _ = aig_to_cnf(aig, root)
    solver = CdclSolver()
    solver.add_clauses(cnf.clauses)
    solver.add_clause([root_lit])
    return solver.solve() == SAT


def exhaustive_equivalent(aig, a, b, variables):
    def value(edge, assignment):
        if edge == TRUE:
            return True
        if edge == FALSE:
            return False
        return aig.evaluate(edge, assignment)

    for values in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if value(a, assignment) != value(b, assignment):
            return False
    return True


class TestSessionMatchesFreshSolver:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_interleaved_queries_match_reference(self, seed):
        """Miter/constant/implication verdicts are identical to the
        fresh-solver path, with every query sharing one session."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3, 4]
        edges = [random_edge(aig, rng, variables, 3) for _ in range(4)]
        session = AigSatSession(aig)
        for e in edges:
            assert session.is_satisfiable(e) == fresh_is_satisfiable(aig, e)
            assert session.is_tautology(e) == (
                not fresh_is_satisfiable(aig, complement(e))
            )
        for a, b in itertools.combinations(edges, 2):
            expected = exhaustive_equivalent(aig, a, b, variables)
            assert session.equivalent(a, b) == expected
            implied = not fresh_is_satisfiable(aig, aig.land(a, complement(b)))
            assert session.implies(a, b) == implied

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_verdicts_survive_rebind(self, seed):
        """After compaction the rebound session answers identically."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        a = random_edge(aig, rng, variables, 3)
        b = random_edge(aig, rng, variables, 3)
        session = AigSatSession(aig)
        before_sat = session.is_satisfiable(a)
        before_eq = session.equivalent(a, b)
        compact, (a2, b2) = aig.extract([a, b])
        session.rebind(compact)
        assert session.is_satisfiable(a2) == before_sat
        assert session.equivalent(a2, b2) == before_eq
        assert session.stats.rebinds == 1
        assert session.stats.solver_resets == 0  # persistent mode keeps it

    def test_fresh_mode_resets_per_query(self):
        aig = Aig()
        e = aig.land(aig.var(1), aig.var(2))
        session = AigSatSession(aig, persistent=False)
        assert session.is_satisfiable(e)
        assert session.is_satisfiable(e)
        assert session.stats.solver_resets == 2

    def test_lazy_encoding_is_incremental(self):
        """A second query on an overlapping cone encodes only new nodes."""
        aig = Aig()
        x, y, z = aig.var(1), aig.var(2), aig.var(3)
        inner = aig.land(x, y)
        session = AigSatSession(aig)
        session.is_satisfiable(inner)
        encoded_before = session.stats.nodes_encoded
        outer = aig.land(inner, z)
        session.is_satisfiable(outer)
        # inner cone (3 nodes) is reused; only the outer AND and z are new
        assert session.stats.nodes_encoded == encoded_before + 2
        assert session.stats.encode_cache_hits > 0

    def test_deadline_raises(self):
        import time

        from test_sat_solver import php_clauses

        aig, root = cnf_to_aig(php_clauses(8))
        session = AigSatSession(aig)
        with pytest.raises(TimeoutExceeded):
            session.is_satisfiable(root, deadline=time.monotonic() - 1)

    def test_refuted_equivalence_exposes_model(self):
        aig = Aig()
        x, y = aig.var(1), aig.var(2)
        session = AigSatSession(aig)
        assert session.equivalent(x, y) is False
        cex = session.model_inputs()
        assert aig.evaluate(x, {1: cex.get(1, False), 2: cex.get(2, False)}) != \
            aig.evaluate(y, {1: cex.get(1, False), 2: cex.get(2, False)})

    def test_max_clauses_triggers_reset_on_rebind(self):
        aig = Aig()
        edges = [aig.land(aig.var(i), aig.var(i + 1)) for i in range(1, 8)]
        session = AigSatSession(aig, max_clauses=5)
        for e in edges:
            session.is_satisfiable(e)
        compact, _ = aig.extract(edges)
        session.rebind(compact)
        assert session.stats.solver_resets == 1


class TestFraigWithSession:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.booleans())
    def test_sweep_preserves_function(self, seed, refine):
        """`fraig_root` output is functionally equivalent with and
        without counterexample refinement (exhaustive cross-check)."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3, 4]
        e = random_edge(aig, rng, variables, 4)
        options = FraigOptions(num_patterns=8, use_counterexamples=refine)
        reduced, new_root = fraig_root(aig, e, options)
        for values in itertools.product([False, True], repeat=4):
            assignment = dict(zip(variables, values))
            original = e == TRUE if e in (TRUE, FALSE) else aig.evaluate(e, assignment)
            swept = (
                new_root == TRUE
                if new_root in (TRUE, FALSE)
                else reduced.evaluate(new_root, assignment)
            )
            assert original == swept

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_sweep_bitparallel_crosscheck(self, seed):
        """Bit-parallel simulation agrees between original and swept cone."""
        from repro.aig.fraig import simulate
        from repro.aig.graph import node_of

        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3, 4, 5]
        e = random_edge(aig, rng, variables, 4)
        if e in (TRUE, FALSE):
            return
        reduced, new_root = fraig_root(aig, e, FraigOptions(num_patterns=4))
        if new_root in (TRUE, FALSE):
            return
        width = 16
        patterns = {v: rng.getrandbits(width) for v in variables}
        mask = (1 << width) - 1
        original = simulate(aig, e, patterns, width)[node_of(e)]
        original ^= mask if e & 1 else 0
        swept = simulate(reduced, new_root, patterns, width)[node_of(new_root)]
        swept ^= mask if new_root & 1 else 0
        assert original == swept

    def test_counterexamples_cut_sat_calls_on_collisions(self):
        """Regression for the CEGAR fix on a crafted signature-collision
        instance: with one simulation pattern, width-1 words are always
        canonically zero, so every AND node of the OR-chain collides into
        one class and the sweeper pays a refuted SAT call per node.

        Within a single sweep both schemes pay about one call per
        collision — the difference is that absorbed counterexamples stay
        in the pattern words, so the *next* sweep (HQS sweeps at every
        fraig interval) starts with distinguishing signatures and skips
        the refutations, while the signature-only scheme re-collides and
        re-pays every round.  The regression asserts that total SAT
        calls over two sweeps are strictly fewer with absorption."""

        def build():
            aig = Aig()
            chain = []
            for i in range(1, 9):
                chain.append(aig.lor(aig.var(i), aig.var(i + 1)))
            root = aig.land_many(chain)
            return aig, root

        queries = {}
        second_round = {}
        for refine in (False, True):
            aig, root = build()
            session = AigSatSession(aig)
            engine = FraigEngine(
                FraigOptions(num_patterns=1, seed=7, use_counterexamples=refine)
            )
            swept, new_root = engine.sweep(aig, root, session=session)
            after_first = session.stats.queries
            # sanity: sweeping must preserve the function
            for values in itertools.product([False, True], repeat=9):
                assignment = dict(zip(range(1, 10), values))
                assert aig.evaluate(root, assignment) == swept.evaluate(
                    new_root, assignment
                )
            engine.sweep(swept, new_root, session=session)
            queries[refine] = session.stats.queries
            second_round[refine] = session.stats.queries - after_first
        # the second refined sweep needs (almost) no SAT calls, while the
        # signature-only sweeper re-pays its collisions
        assert second_round[True] < second_round[False], second_round
        assert queries[True] < queries[False], queries

    def test_engine_reuses_simulation_words_across_rounds(self):
        """Sweeping the manager produced by the previous sweep only
        simulates nodes appended since."""
        aig = Aig()
        root = aig.land(aig.lor(aig.var(1), aig.var(2)), aig.var(3))
        engine = FraigEngine(FraigOptions(num_patterns=8))
        swept, new_root = engine.sweep(aig, root)
        # grow the swept manager, as HQS elimination rounds do
        grown = swept.land(new_root, swept.var(9))
        assert engine._sim_aig is swept
        cached = dict(engine._sim_words)
        engine.sweep(swept, grown)
        # all previously simulated nodes were served from the cache
        for node, word in cached.items():
            assert engine._sim_words.get(node, word) is not None
        assert engine.sweeps == 2

    def test_patterns_persist_across_sweeps(self):
        """Absorbed counterexample bits keep splitting classes in later
        sweeps: the second sweep of an isomorphic cone needs no new SAT
        refutations beyond what the first sweep already paid."""
        def build():
            aig = Aig()
            chain = [aig.lor(aig.var(i), aig.var(i + 1)) for i in range(1, 7)]
            return aig, aig.land_many(chain)

        engine = FraigEngine(FraigOptions(num_patterns=1, seed=7))
        aig1, root1 = build()
        session1 = AigSatSession(aig1)
        engine.sweep(aig1, root1, session=session1)
        first_absorbed = engine.counterexamples_absorbed
        assert first_absorbed > 0
        aig2, root2 = build()
        session2 = AigSatSession(aig2)
        engine.sweep(aig2, root2, session=session2)
        # the patterns learned in round one distinguish the classes of the
        # isomorphic cone: no (or strictly fewer) new refutations needed
        assert engine.counterexamples_absorbed - first_absorbed < first_absorbed
        assert session2.stats.queries <= session1.stats.queries


class TestAigToCnfNodeMap:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_node_map_matches_encoding(self, seed):
        """The returned node map agrees with the emitted clauses: forcing
        the inputs pins every mapped node literal to the node's value."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        e = random_edge(aig, rng, variables, 3)
        if e in (TRUE, FALSE):
            return
        cnf, root_lit, node_var = aig_to_cnf(aig, e, start_var=max(variables))
        assert abs(root_lit) == node_var[e >> 1]
        for node in aig.cone_nodes(e):
            assert node in node_var
            if aig.is_input(node):
                assert node_var[node] == aig.input_label(node)
        solver = CdclSolver()
        solver.add_clauses(cnf.clauses)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            assumptions = [v if val else -v for v, val in assignment.items()]
            assert solver.solve(assumptions) == SAT
            model = solver.model()
            for node in aig.cone_nodes(e):
                if node == 0 or aig.is_input(node):
                    continue
                expected = aig.evaluate(node << 1, assignment)
                assert model[node_var[node]] == expected
