"""Tests for black-box synthesis and miter-based verification."""

import itertools

import pytest

from repro.core.result import Limits
from repro.pec.circuit import Circuit
from repro.pec.families import cut_black_boxes, inject_bug, ripple_adder, xor_chain
from repro.pec.verify import (
    circuits_equivalent,
    complete_circuit,
    synthesize_black_boxes,
    table_to_gates,
)


class TestTableToGates:
    @pytest.mark.parametrize(
        "rows,expected",
        [
            ({}, lambda a, b: False),
            (
                {(False, False): True, (False, True): True,
                 (True, False): True, (True, True): True},
                lambda a, b: True,
            ),
            ({(True, True): True}, lambda a, b: a and b),
            (
                {(True, False): True, (False, True): True},
                lambda a, b: a ^ b,
            ),
            (
                {(False, False): True},
                lambda a, b: (not a) and (not b),
            ),
        ],
        ids=["const0", "const1", "and", "xor", "nor-ish"],
    )
    def test_sop_matches_table(self, rows, expected):
        circuit = Circuit("t", ["a", "b"], ["o"])
        table_to_gates(circuit, "o", ["a", "b"], rows, prefix="syn")
        circuit.validate()
        for a, b in itertools.product([False, True], repeat=2):
            assert circuit.simulate({"a": a, "b": b})["o"] == expected(a, b)

    def test_single_input(self):
        circuit = Circuit("t", ["a"], ["o"])
        table_to_gates(circuit, "o", ["a"], {(False,): True}, prefix="syn")
        assert circuit.simulate({"a": False})["o"] is True
        assert circuit.simulate({"a": True})["o"] is False


class TestCompleteCircuit:
    def test_completion_replaces_boxes(self):
        spec = xor_chain(3)
        incomplete = cut_black_boxes(spec, ["t1"])
        xor_table = {
            (False, False): False, (False, True): True,
            (True, False): True, (True, True): False,
        }
        completed = complete_circuit(incomplete, {"t1": xor_table})
        assert completed.is_complete
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(spec.inputs, values))
            assert completed.simulate(assignment) == spec.simulate(assignment)

    def test_missing_table_rejected(self):
        incomplete = cut_black_boxes(xor_chain(3), ["t1"])
        with pytest.raises(ValueError):
            complete_circuit(incomplete, {})


class TestCircuitsEquivalent:
    def test_equivalent_rewrites(self):
        left = Circuit("l", ["a", "b"], ["o"])
        left.add_gate("o", "nand", ["a", "b"])
        right = Circuit("r", ["a", "b"], ["o"])
        right.add_gate("na", "not", ["a"])
        right.add_gate("nb", "not", ["b"])
        right.add_gate("o", "or", ["na", "nb"])
        assert circuits_equivalent(left, right)

    def test_inequivalent(self):
        left = Circuit("l", ["a", "b"], ["o"])
        left.add_gate("o", "and", ["a", "b"])
        right = Circuit("r", ["a", "b"], ["o"])
        right.add_gate("o", "or", ["a", "b"])
        assert not circuits_equivalent(left, right)

    def test_interface_mismatch_rejected(self):
        left = Circuit("l", ["a"], ["o"])
        left.add_gate("o", "buf", ["a"])
        right = Circuit("r", ["b"], ["o"])
        right.add_gate("o", "buf", ["b"])
        with pytest.raises(ValueError):
            circuits_equivalent(left, right)


class TestSynthesis:
    def test_adder_carry_synthesized_and_verified(self):
        spec = ripple_adder(2)
        incomplete = cut_black_boxes(spec, ["c1"])
        completed = synthesize_black_boxes(spec, incomplete, Limits(time_limit=120))
        assert completed is not None
        assert completed.is_complete
        assert circuits_equivalent(spec, completed)

    def test_two_parallel_boxes(self):
        spec = Circuit("spec", ["a", "b"], ["o"])
        spec.add_gate("u", "not", ["a"])
        spec.add_gate("v", "not", ["b"])
        spec.add_gate("o", "and", ["u", "v"])
        incomplete = Circuit("inc", ["a", "b"], ["o"])
        incomplete.add_black_box("bb1", ["a"], ["u"])
        incomplete.add_black_box("bb2", ["b"], ["v"])
        incomplete.add_gate("o", "and", ["u", "v"])
        completed = synthesize_black_boxes(spec, incomplete, Limits(time_limit=120))
        assert completed is not None
        assert circuits_equivalent(spec, completed)

    def test_unrealizable_returns_none(self):
        spec = ripple_adder(2)
        incomplete = cut_black_boxes(spec, ["c1"])
        bugged = inject_bug(incomplete, "s0")
        assert synthesize_black_boxes(spec, bugged, Limits(time_limit=120)) is None
