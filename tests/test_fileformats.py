"""Tests for AIGER and BLIF file I/O."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aiger import AigerError, load_aiger, parse_aiger, save_aiger, write_aiger
from repro.aig.graph import Aig, FALSE, TRUE
from repro.pec.blif import BlifError, load_blif, parse_blif, save_blif, write_blif
from repro.pec.circuit import Circuit
from repro.pec.families import cut_black_boxes, ripple_adder, xor_chain

from test_aig_graph import random_edge


class TestAigerWrite:
    def test_header_counts(self):
        aig = Aig()
        root = aig.land(aig.var(1), aig.lor(aig.var(2), aig.var(3)))
        text = write_aiger(aig, [root])
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert header[2] == "3"  # inputs
        assert header[3] == "0"  # latches
        assert header[4] == "1"  # outputs
        assert header[5] == "2"  # and gates

    def test_symbol_table_preserves_labels(self):
        aig = Aig()
        root = aig.land(aig.var(7), aig.var(42))
        text = write_aiger(aig, [root])
        assert "i0 7" in text
        assert "i1 42" in text

    def test_constant_outputs(self):
        aig = Aig()
        text = write_aiger(aig, [TRUE, FALSE])
        _aig2, outputs, _labels = parse_aiger(text)
        assert outputs == [TRUE, FALSE]


class TestAigerRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_function_preserved(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        variables = [2, 5, 9]  # deliberately non-contiguous labels
        roots = [random_edge(aig, rng, variables, 4) for _ in range(rng.randint(1, 3))]
        parsed, outputs, labels = parse_aiger(write_aiger(aig, roots))
        assert set(labels.values()) <= set(variables)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            for root, out in zip(roots, outputs):
                original = root == TRUE if root in (TRUE, FALSE) else aig.evaluate(
                    root, assignment
                )
                reloaded = out == TRUE if out in (TRUE, FALSE) else parsed.evaluate(
                    out, assignment
                )
                assert original == reloaded

    def test_file_round_trip(self, tmp_path):
        aig = Aig()
        root = aig.lxor(aig.var(1), aig.var(2))
        path = tmp_path / "f.aag"
        save_aiger(aig, [root], str(path))
        parsed, outputs, _labels = load_aiger(str(path))
        assert parsed.evaluate(outputs[0], {1: True, 2: False})


class TestAigerErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "aig 1 1 0 1 0\n2\n2\n",          # binary tag
            "aag 2 1 1 1 0\n2\n4 2\n2\n",      # latches
            "aag x 1 0 1 0\n2\n2\n",           # non-integer header
            "aag 1 1 0 1 0\n2\n",              # truncated
            "aag 1 1 0 1 0\n3\n2\n",           # odd input literal
            "aag 2 1 0 1 1\n2\n4\n4 6 2\n",    # undefined literal in AND
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(AigerError):
            parse_aiger(text)


class TestBlifRoundTrip:
    @pytest.mark.parametrize(
        "circuit",
        [ripple_adder(3), xor_chain(4)],
        ids=["adder", "xor_chain"],
    )
    def test_complete_circuit_equivalence(self, circuit):
        reparsed = parse_blif(write_blif(circuit))
        reparsed.validate()
        for values in itertools.product([False, True], repeat=len(circuit.inputs)):
            assignment = dict(zip(circuit.inputs, values))
            assert circuit.simulate(assignment) == reparsed.simulate(assignment)

    def test_black_boxes_round_trip(self):
        incomplete = cut_black_boxes(ripple_adder(3), ["c1", "c3"])
        reparsed = parse_blif(write_blif(incomplete))
        reparsed.validate()
        assert len(reparsed.black_boxes) == 2
        originals = {tuple(b.inputs): tuple(b.outputs) for b in incomplete.black_boxes}
        for box in reparsed.black_boxes:
            assert originals[tuple(box.inputs)] == tuple(box.outputs)

    def test_file_round_trip(self, tmp_path):
        circuit = xor_chain(3)
        path = tmp_path / "c.blif"
        save_blif(circuit, str(path))
        loaded = load_blif(str(path))
        assert loaded.simulate({"x0": True, "x1": False, "x2": True})["out"] is False

    def test_all_gate_kinds_survive(self):
        circuit = Circuit("kinds", ["a", "b"], ["o1", "o2", "o3", "o4", "o5"])
        circuit.add_gate("o1", "nand", ["a", "b"])
        circuit.add_gate("o2", "nor", ["a", "b"])
        circuit.add_gate("o3", "xnor", ["a", "b"])
        circuit.add_gate("k1", "const1", [])
        circuit.add_gate("o4", "and", ["a", "k1"])
        circuit.add_gate("k0", "const0", [])
        circuit.add_gate("o5", "or", ["b", "k0"])
        reparsed = parse_blif(write_blif(circuit))
        for values in itertools.product([False, True], repeat=2):
            assignment = dict(zip(["a", "b"], values))
            assert circuit.simulate(assignment) == reparsed.simulate(assignment)


class TestBlifParsing:
    def test_generic_sop_cover(self):
        text = """\
.model sop
.inputs a b c
.outputs f
.names a b c f
1-0 1
01- 1
.end
"""
        circuit = parse_blif(text)
        circuit.validate()
        for a, b, c in itertools.product([False, True], repeat=3):
            expected = (a and not c) or ((not a) and b)
            got = circuit.simulate({"a": a, "b": b, "c": c})["f"]
            assert got == expected

    def test_comments_and_continuations(self):
        text = (
            ".model m  # trailing comment\n"
            ".inputs \\\na b\n"
            ".outputs f\n"
            ".names a b f\n11 1\n"
            ".end\n"
        )
        circuit = parse_blif(text)
        assert set(circuit.inputs) == {"a", "b"}

    @pytest.mark.parametrize(
        "text",
        [
            ".inputs a\n",                                       # before .model
            ".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n",  # bad char
            ".model m\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n",  # 0-cover
            ".model m\n.inputs a\n.outputs f\n.subckt ghost in0=a out0=f\n.end\n",
            ".model m\n.gate foo\n.end\n",                        # unsupported
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_blackbox_model_parsed(self):
        text = """\
.model top
.inputs a b
.outputs f
.subckt box in0=a in1=b out0=m
.names m f
0 1
.end

.model box
.inputs in0 in1
.outputs out0
.blackbox
.end
"""
        circuit = parse_blif(text)
        circuit.validate()
        assert len(circuit.black_boxes) == 1
        assert circuit.black_boxes[0].inputs == ["a", "b"]
