"""Every example script must run clean — they are living documentation."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "pec_verification.py",
    "dependency_analysis.py",
    "skolem_certificates.py",
    "incomplete_information_games.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_solver_comparison_smoke():
    """The comparison example is slower (three solvers x pool); run it
    with a reduced pool via environment knobs if it ever gains them —
    for now just verify it imports and its main is callable."""
    import importlib.util

    path = os.path.join(EXAMPLES_DIR, "solver_comparison.py")
    spec = importlib.util.spec_from_file_location("solver_comparison", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
