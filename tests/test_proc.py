"""Tests for the shared process-supervision primitives.

:func:`repro.proc.reap` sits between the pool supervisor thread, the
hard-kill request path and the parallel runner — all of which can race
for the same child.  The loser of such a race must find "the process is
already gone" unremarkable.
"""

from __future__ import annotations

import os
import socket

from repro.proc import close_foreign_sockets, default_grace, mp_context, reap


def _sleep_forever():  # pragma: no cover - killed by the test
    import time
    time.sleep(3600)


def _fd_hygiene_probe(conn, sock_fd: int, pipe_rd: int) -> None:
    closed = close_foreign_sockets(keep=(conn.fileno(),))

    def alive(fd: int) -> bool:
        try:
            os.fstat(fd)
            return True
        except OSError:
            return False

    conn.send({
        "closed": closed,
        "sock_alive": alive(sock_fd),
        "pipe_alive": alive(pipe_rd),
        "conn_alive": alive(conn.fileno()),
    })


def _fd_keep_probe(conn, kept_fd: int, other_fd: int) -> None:
    close_foreign_sockets(keep=(conn.fileno(), kept_fd))

    def alive(fd: int) -> bool:
        try:
            os.fstat(fd)
            return True
        except OSError:
            return False

    conn.send({"kept_alive": alive(kept_fd), "other_alive": alive(other_fd)})


class TestReap:
    def test_reap_live_child(self):
        ctx = mp_context()
        parent, child = ctx.Pipe()
        process = ctx.Process(target=_sleep_forever, daemon=True)
        process.start()
        child.close()
        process.terminate()
        reap(process, parent)
        assert not process.is_alive()

    def test_reap_already_reaped_child(self):
        # The racing-reapers case: by the time the second reaper runs,
        # the child is waited on and the process object may be closed.
        ctx = mp_context()
        process = ctx.Process(target=lambda: None, daemon=True)
        process.start()
        process.join()
        process.close()  # join()/is_alive() on a closed handle raise
        reap(process)  # must absorb, not raise

    def test_reap_twice_is_idempotent(self):
        ctx = mp_context()
        parent, child = ctx.Pipe()
        process = ctx.Process(target=lambda: None, daemon=True)
        process.start()
        child.close()
        reap(process, parent)
        reap(process, parent)  # second reap: conn already closed, joined

    def test_reap_externally_waited_child(self):
        # A child another path already collected via os.waitpid: the
        # kernel then answers ECHILD, which reap must treat as done.
        ctx = mp_context()
        process = ctx.Process(target=lambda: None, daemon=True)
        process.start()
        os.waitpid(process.pid, 0)
        reap(process)
        # multiprocessing may or may not have noticed; reap must not
        # have raised either way.


class TestFdHygiene:
    def test_forked_child_drops_foreign_sockets_keeps_pipes(self):
        # The bug this guards: a worker forked while a server is
        # serving inherits dups of live connection fds; as long as it
        # holds one, closing the connection server-side sends no FIN
        # and the client waits out its full timeout instead of seeing
        # EOF.  Sockets must go; pipes (mp plumbing) must survive.
        sock_a, sock_b = socket.socketpair()
        pipe_rd, pipe_wr = os.pipe()
        ctx = mp_context()
        parent, child = ctx.Pipe(duplex=True)
        try:
            process = ctx.Process(
                target=_fd_hygiene_probe,
                args=(child, sock_a.fileno(), pipe_rd),
                daemon=True,
            )
            process.start()
            child.close()
            report = parent.recv()
            process.join(timeout=10.0)
            assert report["closed"] >= 2  # the socketpair at least
            assert not report["sock_alive"]
            assert report["pipe_alive"]
            assert report["conn_alive"]  # its own command pipe survives
        finally:
            sock_a.close()
            sock_b.close()
            os.close(pipe_rd)
            os.close(pipe_wr)
            parent.close()

    def test_keep_protects_named_fds(self):
        sock_a, sock_b = socket.socketpair()
        ctx = mp_context()
        parent, child = ctx.Pipe(duplex=True)
        try:
            process = ctx.Process(
                target=_fd_keep_probe,
                args=(child, sock_a.fileno(), sock_b.fileno()),
                daemon=True,
            )
            process.start()
            child.close()
            report = parent.recv()
            process.join(timeout=10.0)
            assert report["kept_alive"]       # named in keep=: untouched
            assert not report["other_alive"]  # its twin: closed
        finally:
            sock_a.close()
            sock_b.close()
            parent.close()


class TestGrace:
    def test_unlimited_budget_gets_fixed_grace(self):
        assert default_grace(None) == 5.0

    def test_grace_scales_with_budget(self):
        assert default_grace(100.0) == 25.0
        assert default_grace(0.1) == 1.0  # floor
