"""Tests for QDIMACS I/O and its interplay with DQBF linearization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formula.prefix import EXISTS, FORALL
from repro.formula.qbf import Qbf, brute_force_qbf
from repro.formula.qdimacs import (
    QdimacsError,
    load_qdimacs,
    parse_qdimacs,
    save_qdimacs,
    write_qdimacs,
)

EXAMPLE = """\
c a small 2QBF
p cnf 3 2
a 1 0
e 2 3 0
-1 2 0
1 3 0
"""


class TestParse:
    def test_example(self):
        formula = parse_qdimacs(EXAMPLE)
        assert formula.prefix.blocks == [(FORALL, [1]), (EXISTS, [2, 3])]
        assert len(formula.matrix) == 2

    def test_adjacent_same_quantifier_blocks_merge(self):
        text = "p cnf 2 1\ne 1 0\ne 2 0\n1 2 0\n"
        formula = parse_qdimacs(text)
        assert formula.prefix.blocks == [(EXISTS, [1, 2])]

    @pytest.mark.parametrize(
        "text",
        [
            "e 1 0\np cnf 1 0\n",              # prefix before header
            "p cnf 1 0\np cnf 1 0\n",           # duplicate header
            "p cnf 2 1\ne 1 0\n1 0\ne 2 0\n",   # prefix after clauses
            "p cnf 2 1\ne 5 0\n1 0\n",          # out of range
            "p cnf 2 1\ne 1\n1 0\n",            # missing 0
            "p cnf 2 1\ne 1 0\n7 0\n",          # literal out of range
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(QdimacsError):
            parse_qdimacs(text)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_write_parse_round_trip(self, seed):
        from conftest import random_qbf

        rng = random.Random(seed)
        formula = random_qbf(rng)
        reparsed = parse_qdimacs(write_qdimacs(formula))
        assert reparsed.prefix.blocks == formula.prefix.blocks
        assert set(reparsed.matrix.clauses) == set(formula.matrix.clauses)
        assert brute_force_qbf(reparsed) == brute_force_qbf(formula)

    def test_file_round_trip(self, tmp_path):
        formula = parse_qdimacs(EXAMPLE)
        path = tmp_path / "f.qdimacs"
        save_qdimacs(formula, str(path))
        loaded = load_qdimacs(str(path))
        assert loaded.prefix.blocks == formula.prefix.blocks


class TestLinearizationExport:
    def test_acyclic_dqbf_exports_as_qbf(self):
        """The HQS hand-over artifact: linearize an acyclic DQBF, write
        QDIMACS, re-parse, and check equivalence."""
        from repro.core.depgraph import linearize
        from repro.formula.dqbf import Dqbf, expansion_solve

        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [1, 2])],
            [[3, 1], [-3, 4], [4, -2, -1]],
        )
        blocked = linearize(formula.prefix)
        qbf = Qbf(blocked, formula.matrix.copy())
        reparsed = parse_qdimacs(write_qdimacs(qbf))
        assert brute_force_qbf(reparsed) == expansion_solve(formula)
