"""Tests for the AIG manager: simplification, strashing, semantics."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.graph import (
    FALSE,
    TRUE,
    Aig,
    complement,
    edge_of,
    is_complemented,
    node_of,
)


def random_edge(aig: Aig, rng: random.Random, variables, depth: int) -> int:
    """Build a random expression edge over the given variables."""
    if depth == 0 or rng.random() < 0.3:
        edge = aig.var(rng.choice(variables))
        return complement(edge) if rng.random() < 0.5 else edge
    op = rng.choice(["and", "or", "xor", "ite"])
    a = random_edge(aig, rng, variables, depth - 1)
    b = random_edge(aig, rng, variables, depth - 1)
    if op == "and":
        return aig.land(a, b)
    if op == "or":
        return aig.lor(a, b)
    if op == "xor":
        return aig.lxor(a, b)
    c = random_edge(aig, rng, variables, depth - 1)
    return aig.lite(a, b, c)


class TestEdgeHelpers:
    def test_encoding_round_trip(self):
        edge = edge_of(5, True)
        assert node_of(edge) == 5
        assert is_complemented(edge)
        assert not is_complemented(complement(edge))

    def test_constants(self):
        assert complement(FALSE) == TRUE
        assert node_of(FALSE) == node_of(TRUE) == 0


class TestSimplificationRules:
    def setup_method(self):
        self.aig = Aig()
        self.x = self.aig.var(1)
        self.y = self.aig.var(2)

    def test_and_false_annihilates(self):
        assert self.aig.land(self.x, FALSE) == FALSE
        assert self.aig.land(FALSE, self.x) == FALSE

    def test_and_true_is_identity(self):
        assert self.aig.land(self.x, TRUE) == self.x
        assert self.aig.land(TRUE, self.x) == self.x

    def test_and_idempotent(self):
        assert self.aig.land(self.x, self.x) == self.x

    def test_and_contradiction(self):
        assert self.aig.land(self.x, complement(self.x)) == FALSE

    def test_strashing_shares_nodes(self):
        e1 = self.aig.land(self.x, self.y)
        e2 = self.aig.land(self.y, self.x)
        assert e1 == e2

    def test_or_via_demorgan(self):
        e = self.aig.lor(self.x, self.y)
        assert is_complemented(e)

    def test_xor_of_equal_is_false(self):
        assert self.aig.lxor(self.x, self.x) == FALSE

    def test_xnor_of_equal_is_true(self):
        assert self.aig.lxnor(self.x, self.x) == TRUE

    def test_ite_constant_condition(self):
        assert self.aig.lite(TRUE, self.x, self.y) == self.x
        assert self.aig.lite(FALSE, self.x, self.y) == self.y

    def test_land_many_empty_is_true(self):
        assert self.aig.land_many([]) == TRUE

    def test_lor_many_empty_is_false(self):
        assert self.aig.lor_many([]) == FALSE

    def test_var_requires_positive_label(self):
        with pytest.raises(ValueError):
            self.aig.var(0)

    def test_literal_polarity(self):
        pos = self.aig.literal(3)
        neg = self.aig.literal(-3)
        assert pos == complement(neg)


class TestStructure:
    def test_inputs_are_not_and(self):
        aig = Aig()
        x = aig.var(1)
        assert aig.is_input(node_of(x))
        assert not aig.is_and(node_of(x))
        assert aig.input_label(node_of(x)) == 1

    def test_fanins_of_input_raise(self):
        aig = Aig()
        x = aig.var(1)
        with pytest.raises(ValueError):
            aig.fanins(node_of(x))

    def test_cone_nodes_topological(self):
        aig = Aig()
        e = aig.land(aig.var(1), aig.lor(aig.var(2), aig.var(3)))
        order = aig.cone_nodes(e)
        seen = set()
        for node in order:
            if aig.is_and(node):
                f0, f1 = aig.fanins(node)
                assert node_of(f0) in seen and node_of(f1) in seen
            seen.add(node)

    def test_support(self):
        aig = Aig()
        e = aig.land(aig.var(4), aig.var(9))
        assert aig.support(e) == {4, 9}

    def test_cone_size_counts_ands(self):
        aig = Aig()
        e = aig.land(aig.var(1), aig.land(aig.var(2), aig.var(3)))
        assert aig.cone_size(e) == 2

    def test_extract_compacts_garbage(self):
        aig = Aig()
        keep = aig.land(aig.var(1), aig.var(2))
        _garbage = aig.land(aig.var(3), aig.var(4))
        fresh, (root,) = aig.extract([keep])
        assert fresh.support(root) == {1, 2}
        assert fresh.num_nodes < aig.num_nodes


class TestSemantics:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10**6))
    def test_operators_match_python_semantics(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        a = random_edge(aig, rng, variables, 3)
        b = random_edge(aig, rng, variables, 3)
        land, lor, lxor = aig.land(a, b), aig.lor(a, b), aig.lxor(a, b)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            va = aig.evaluate(a, assignment)
            vb = aig.evaluate(b, assignment)
            assert aig.evaluate(land, assignment) == (va and vb)
            assert aig.evaluate(lor, assignment) == (va or vb)
            assert aig.evaluate(lxor, assignment) == (va ^ vb)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10**6))
    def test_cofactor_compose_quantify(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3, 4]
        e = random_edge(aig, rng, variables, 4)
        v = rng.choice(variables)
        c0 = aig.cofactor(e, v, False)
        c1 = aig.cofactor(e, v, True)
        ex = aig.exists(e, v)
        fa = aig.forall(e, v)
        for values in itertools.product([False, True], repeat=4):
            assignment = dict(zip(variables, values))
            low = {**assignment, v: False}
            high = {**assignment, v: True}
            assert aig.evaluate(c0, assignment) == aig.evaluate(e, low)
            assert aig.evaluate(c1, assignment) == aig.evaluate(e, high)
            assert aig.evaluate(ex, assignment) == (
                aig.evaluate(e, low) or aig.evaluate(e, high)
            )
            assert aig.evaluate(fa, assignment) == (
                aig.evaluate(e, low) and aig.evaluate(e, high)
            )
        # quantified results no longer depend on v
        assert v not in aig.support(ex) or ex in (TRUE, FALSE)
        assert v not in aig.support(fa) or fa in (TRUE, FALSE)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10**6))
    def test_compose_is_substitution(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        e = random_edge(aig, rng, [1, 2], 3)
        g = random_edge(aig, rng, [3, 4], 3)
        composed = aig.compose(e, {1: g})
        for values in itertools.product([False, True], repeat=4):
            assignment = dict(zip([1, 2, 3, 4], values))
            inner = aig.evaluate(g, assignment)
            expected = aig.evaluate(e, {**assignment, 1: inner})
            assert aig.evaluate(composed, assignment) == expected

    def test_rename(self):
        aig = Aig()
        e = aig.land(aig.var(1), complement(aig.var(2)))
        renamed = aig.rename(e, {1: 7, 2: 8})
        assert aig.support(renamed) == {7, 8}
        assert aig.evaluate(renamed, {7: True, 8: False})

    def test_simultaneous_swap_rename(self):
        """Renaming {1: 2, 2: 1} must swap, not chain."""
        aig = Aig()
        e = aig.land(aig.var(1), complement(aig.var(2)))
        swapped = aig.rename(e, {1: 2, 2: 1})
        assert aig.evaluate(swapped, {1: False, 2: True})
        assert not aig.evaluate(swapped, {1: True, 2: False})

    @pytest.mark.slow
    def test_deep_chain_no_recursion_error(self):
        """Operations are iterative: a 5000-deep chain must not blow the stack."""
        aig = Aig()
        edge = aig.var(1)
        for i in range(2, 5002):
            edge = aig.land(edge, aig.var(i))
        cof = aig.cofactor(edge, 1, True)
        assert 1 not in aig.support(cof)


class TestMultiRoot:
    def test_extract_multiple_roots(self):
        import itertools

        aig = Aig()
        a = aig.land(aig.var(1), aig.var(2))
        b = aig.lor(aig.var(2), complement(aig.var(3)))
        fresh, (ra, rb) = aig.extract([a, b])
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip([1, 2, 3], values))
            assert fresh.evaluate(ra, assignment) == aig.evaluate(a, assignment)
            assert fresh.evaluate(rb, assignment) == aig.evaluate(b, assignment)

    def test_rebuild_shares_cache_across_roots(self):
        aig = Aig()
        shared = aig.land(aig.var(1), aig.var(2))
        a = aig.land(shared, aig.var(3))
        b = aig.lor(shared, aig.var(4))
        fresh, roots = aig.extract([a, b])
        # the shared node must exist only once in the fresh manager
        ands = sum(1 for n in range(1, fresh.num_nodes) if fresh.is_and(n))
        assert ands == 3  # shared + one per root

    def test_rebuild_with_mixed_leaf_map(self):
        import itertools

        aig = Aig()
        f = aig.land(aig.var(1), aig.lxor(aig.var(2), aig.var(3)))
        g = aig.lor(aig.var(4), aig.var(5))
        (rebuilt,) = aig.rebuild([f], {1: TRUE, 2: g})
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip([3, 4, 5], values))
            inner = aig.evaluate(g, assignment)
            expected = aig.evaluate(f, {**assignment, 1: True, 2: inner})
            assert aig.evaluate(rebuilt, assignment) == expected

    def test_complemented_root_cone(self):
        aig = Aig()
        f = complement(aig.land(aig.var(1), aig.var(2)))
        assert aig.support(f) == {1, 2}
        assert aig.cone_size(f) == 1
