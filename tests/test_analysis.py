"""Tests for the ``hqs-lint`` static invariant analyzer (repro.analysis).

Each rule is exercised on small synthetic snippets — a positive case,
a suppressed case and (where the rule has one) an allowlisted case —
plus a whole-tree test asserting ``hqs-lint src`` matches the committed
baseline exactly, so both new violations and stale baseline entries
fail the suite.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintConfig, analyze_sources
from repro.analysis.baseline import load_baseline, split_by_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.config import _parse_hqs_lint_subset, load_config
from repro.analysis.framework import Finding, SourceFile

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_source(tmp_path, text, module="repro.core.synthetic", name="synthetic.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return SourceFile(path, module=module)


def run_rules(sources, config=None, codes=None):
    findings = analyze_sources(
        sources if isinstance(sources, list) else [sources], config
    )
    if codes is not None:
        findings = [f for f in findings if f.code in codes]
    return findings


# ----------------------------------------------------------------------
# RPR001 guard threading
# ----------------------------------------------------------------------

class TestGuardThreading:
    def test_unbounded_while_true_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def fixpoint(work):
                while True:
                    if not work.step():
                        return work
        """)
        findings = run_rules(src, codes={"RPR001"})
        assert len(findings) == 1
        assert "unbounded" in findings[0].message
        assert findings[0].symbol == "fixpoint"

    def test_guard_check_satisfies(self, tmp_path):
        src = make_source(tmp_path, """
            def fixpoint(work, guard):
                while True:
                    guard.check()
                    if not work.step():
                        return work
        """)
        assert run_rules(src, codes={"RPR001"}) == []

    def test_deadline_comparison_satisfies(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            def sweep(work, deadline):
                while True:
                    if deadline is not None and time.monotonic() > deadline:
                        break
                    work.step()
        """)
        assert run_rules(src, codes={"RPR001"}) == []

    def test_worklist_consumer_exempt(self, tmp_path):
        src = make_source(tmp_path, """
            def traverse(stack):
                seen = set()
                while stack:
                    node = stack.pop()
                    seen.add(node)
                return seen
        """)
        assert run_rules(src, codes={"RPR001"}) == []

    def test_effectively_constant_flag_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def spin(work, enabled):
                while enabled:
                    work.step()
        """)
        assert len(run_rules(src, codes={"RPR001"})) == 1

    def test_reassigned_flag_not_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def converge(work):
                changed = True
                while changed:
                    changed = work.step()
        """)
        assert run_rules(src, codes={"RPR001"}) == []

    def test_suppression_comment(self, tmp_path):
        src = make_source(tmp_path, """
            def fixpoint(work):
                while True:  # hqs-lint: disable=RPR001
                    if not work.step():
                        return work
        """)
        assert run_rules(src, codes={"RPR001"}) == []

    def test_allowlist_by_qualname(self, tmp_path):
        src = make_source(tmp_path, """
            def bounded_by_construction(trail):
                while True:
                    if trail.back():
                        return
        """)
        config = LintConfig(
            {"rpr001": {"allow": ["repro.core.synthetic::bounded_by_construction"]}}
        )
        assert run_rules(src, config, codes={"RPR001"}) == []

    def test_outside_packages_not_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def fixpoint(work):
                while True:
                    if not work.step():
                        return work
        """, module="repro.experiments.synthetic")
        assert run_rules(src, codes={"RPR001"}) == []


# ----------------------------------------------------------------------
# RPR002 clock hygiene
# ----------------------------------------------------------------------

class TestClockHygiene:
    def test_time_time_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            def measure(fn):
                start = time.time()
                fn()
                return time.time() - start
        """)
        assert len(run_rules(src, codes={"RPR002"})) == 2

    def test_monotonic_clean(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            def measure(fn):
                start = time.monotonic()
                fn()
                return time.monotonic() - start
        """)
        assert run_rules(src, codes={"RPR002"}) == []

    def test_suppressed_wall_clock(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            def stamp(record):
                record["at"] = time.time()  # hqs-lint: disable=RPR002
        """)
        assert run_rules(src, codes={"RPR002"}) == []

    def test_allow_modules(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """)
        config = LintConfig({"rpr002": {"allow-modules": ["repro.core.synthetic"]}})
        assert run_rules(src, config, codes={"RPR002"}) == []


# ----------------------------------------------------------------------
# RPR003 determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_unseeded_random_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import random
            def jitter():
                return random.Random()
        """)
        findings = run_rules(src, codes={"RPR003"})
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_seeded_random_clean(self, tmp_path):
        src = make_source(tmp_path, """
            import random
            def jitter(seed):
                return random.Random(seed)
        """)
        assert run_rules(src, codes={"RPR003"}) == []

    def test_module_level_random_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import random
            def pick(items):
                random.shuffle(items)
                return random.choice(items)
        """)
        assert len(run_rules(src, codes={"RPR003"})) == 2

    def test_suppression_and_allowlist(self, tmp_path):
        suppressed = make_source(tmp_path, """
            import random
            def jitter():
                return random.Random()  # hqs-lint: disable=RPR003
        """)
        assert run_rules(suppressed, codes={"RPR003"}) == []
        allowed = make_source(tmp_path, """
            import random
            def jitter():
                return random.Random()
        """, name="allowed.py")
        config = LintConfig({"rpr003": {"allow-modules": ["repro.core.synthetic"]}})
        assert run_rules(allowed, config, codes={"RPR003"}) == []


# ----------------------------------------------------------------------
# RPR004 durability
# ----------------------------------------------------------------------

class TestDurability:
    def test_raw_write_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """, module="repro.service.synthetic")
        findings = run_rules(src, codes={"RPR004"})
        assert len(findings) == 1
        assert "bypasses repro.durable" in findings[0].message

    def test_os_replace_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import os
            def swap(a, b):
                os.replace(a, b)
        """, module="repro.experiments.synthetic")
        assert len(run_rules(src, codes={"RPR004"})) == 1

    def test_read_mode_clean(self, tmp_path):
        src = make_source(tmp_path, """
            def load(path):
                with open(path) as handle:
                    return handle.read()
        """, module="repro.service.synthetic")
        assert run_rules(src, codes={"RPR004"}) == []

    def test_outside_packages_clean(self, tmp_path):
        src = make_source(tmp_path, """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """, module="repro.formula.synthetic")
        assert run_rules(src, codes={"RPR004"}) == []

    def test_allow_modules_and_suppression(self, tmp_path):
        src = make_source(tmp_path, """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """, module="repro.experiments.report")
        config = LintConfig(
            {"rpr004": {"allow-modules": ["repro.experiments.report"]}}
        )
        assert run_rules(src, config, codes={"RPR004"}) == []
        suppressed = make_source(tmp_path, """
            def save(path, text):
                with open(path, "a") as handle:  # hqs-lint: disable=RPR004
                    handle.write(text)
        """, module="repro.service.synthetic", name="suppressed.py")
        assert run_rules(suppressed, codes={"RPR004"}) == []


# ----------------------------------------------------------------------
# RPR005 fork/async safety
# ----------------------------------------------------------------------

ASYNC_CONFIG = LintConfig(
    {
        "rpr005": {
            "async-modules": ["repro.service.synthetic"],
            "known-blocking": ["cache.store"],
            "fork-modules": ["repro.service.forky"],
        }
    }
)


class TestForkAsyncSafety:
    def test_blocking_sleep_in_async_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import time
            async def handler():
                time.sleep(1.0)
        """, module="repro.service.synthetic")
        findings = run_rules(src, ASYNC_CONFIG, codes={"RPR005"})
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_known_blocking_suffix_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            async def handler(self, key, value):
                self.cache.store(key, value)
        """, module="repro.service.synthetic")
        assert len(run_rules(src, ASYNC_CONFIG, codes={"RPR005"})) == 1

    def test_nested_def_in_executor_clean(self, tmp_path):
        src = make_source(tmp_path, """
            async def handler(self, loop, key, value):
                def _persist():
                    self.cache.store(key, value)
                await loop.run_in_executor(None, _persist)
                await loop.run_in_executor(None, lambda: self.cache.store(key, value))
        """, module="repro.service.synthetic")
        assert run_rules(src, ASYNC_CONFIG, codes={"RPR005"}) == []

    def test_async_sleep_clean(self, tmp_path):
        src = make_source(tmp_path, """
            import asyncio
            async def handler():
                await asyncio.sleep(1.0)
        """, module="repro.service.synthetic")
        assert run_rules(src, ASYNC_CONFIG, codes={"RPR005"}) == []

    def test_thread_before_fork_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            import multiprocessing
            import threading
            def start(ctx):
                watchdog = threading.Thread(target=print)
                watchdog.start()
                worker = ctx.Process(target=print)
                worker.start()
        """, module="repro.service.forky")
        findings = run_rules(src, ASYNC_CONFIG, codes={"RPR005"})
        assert len(findings) == 1
        assert "fork" in findings[0].message.lower()

    def test_fork_then_thread_clean(self, tmp_path):
        src = make_source(tmp_path, """
            import threading
            def start(ctx):
                worker = ctx.Process(target=print)
                worker.start()
                watchdog = threading.Thread(target=print)
                watchdog.start()
        """, module="repro.service.forky")
        assert run_rules(src, ASYNC_CONFIG, codes={"RPR005"}) == []

    def test_fork_target_without_socket_hygiene_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def _worker_main(conn):
                conn.recv()

            def spawn(ctx, conn):
                return ctx.Process(target=_worker_main, args=(conn,))
        """, module="repro.service.forky")
        findings = run_rules(src, ASYNC_CONFIG, codes={"RPR005"})
        assert len(findings) == 1
        assert "close_foreign_sockets" in findings[0].message

    def test_fork_target_with_socket_hygiene_clean(self, tmp_path):
        src = make_source(tmp_path, """
            from repro.proc import close_foreign_sockets

            def _worker_main(conn):
                close_foreign_sockets(keep=(conn.fileno(),))
                conn.recv()

            def spawn(ctx, conn):
                return ctx.Process(target=_worker_main, args=(conn,))
        """, module="repro.service.forky")
        assert run_rules(src, ASYNC_CONFIG, codes={"RPR005"}) == []


# ----------------------------------------------------------------------
# RPR006 exception hygiene
# ----------------------------------------------------------------------

class TestExceptionHygiene:
    def test_swallowing_broad_except_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def risky(fn):
                try:
                    fn()
                except Exception:
                    pass
        """)
        findings = run_rules(src, codes={"RPR006"})
        assert len(findings) == 1

    def test_bare_except_flagged(self, tmp_path):
        src = make_source(tmp_path, """
            def risky(fn):
                try:
                    fn()
                except:
                    return None
        """)
        assert len(run_rules(src, codes={"RPR006"})) == 1

    def test_reraise_clean(self, tmp_path):
        src = make_source(tmp_path, """
            def risky(fn):
                try:
                    fn()
                except Exception:
                    raise
        """)
        assert run_rules(src, codes={"RPR006"}) == []

    def test_traceback_capture_clean(self, tmp_path):
        src = make_source(tmp_path, """
            import traceback
            def risky(fn, log):
                try:
                    fn()
                except Exception:
                    log.append(traceback.format_exc())
        """)
        assert run_rules(src, codes={"RPR006"}) == []

    def test_failure_diagnosis_clean(self, tmp_path):
        src = make_source(tmp_path, """
            from repro.errors import FailureDiagnosis
            def risky(fn):
                try:
                    fn()
                except Exception:
                    return FailureDiagnosis(stage="risky", resource="unknown")
        """)
        assert run_rules(src, codes={"RPR006"}) == []

    def test_narrow_except_clean(self, tmp_path):
        src = make_source(tmp_path, """
            def risky(fn):
                try:
                    fn()
                except ValueError:
                    return None
        """)
        assert run_rules(src, codes={"RPR006"}) == []

    def test_suppression(self, tmp_path):
        src = make_source(tmp_path, """
            def risky(fn):
                try:
                    fn()
                except Exception:  # hqs-lint: disable=RPR006
                    pass
        """)
        assert run_rules(src, codes={"RPR006"}) == []


# ----------------------------------------------------------------------
# RPR007 fault-site coverage
# ----------------------------------------------------------------------

SITES_TEXT = """
    SITES = {
        "pool.solve": ("crash",),
        "cache.write": ("torn",),
    }
"""

RPR007_CONFIG = LintConfig({"rpr007": {"sites-module": "repro.synthfaults"}})


class TestFaultSiteCoverage:
    def test_full_coverage_clean(self, tmp_path):
        sites = make_source(
            tmp_path, SITES_TEXT, module="repro.synthfaults", name="faults.py"
        )
        user = make_source(tmp_path, """
            from repro import faults
            def solve():
                faults.fire("pool.solve")
            def store(write_framed, path, payload):
                write_framed(path, payload, fault_site="cache.write")
        """, module="repro.service.synthetic")
        assert run_rules([sites, user], RPR007_CONFIG, codes={"RPR007"}) == []

    def test_declared_but_never_fired_flagged(self, tmp_path):
        sites = make_source(
            tmp_path, SITES_TEXT, module="repro.synthfaults", name="faults.py"
        )
        user = make_source(tmp_path, """
            from repro import faults
            def solve():
                faults.fire("pool.solve")
        """, module="repro.service.synthetic")
        findings = run_rules([sites, user], RPR007_CONFIG, codes={"RPR007"})
        assert len(findings) == 1
        assert "cache.write" in findings[0].message
        assert findings[0].path == sites.rel

    def test_fired_but_undeclared_flagged(self, tmp_path):
        sites = make_source(
            tmp_path, SITES_TEXT, module="repro.synthfaults", name="faults.py"
        )
        user = make_source(tmp_path, """
            from repro import faults
            def solve():
                faults.fire("pool.solve")
                faults.fire("cache.write")
                faults.fire("server.send")
        """, module="repro.service.synthetic")
        findings = run_rules([sites, user], RPR007_CONFIG, codes={"RPR007"})
        assert len(findings) == 1
        assert "server.send" in findings[0].message
        assert findings[0].path == user.rel

    def test_non_literal_fire_ignored(self, tmp_path):
        sites = make_source(
            tmp_path, SITES_TEXT, module="repro.synthfaults", name="faults.py"
        )
        user = make_source(tmp_path, """
            from repro import faults
            def solve(site):
                faults.fire(site)
                faults.fire("pool.solve")
                faults.fire("cache.write")
        """, module="repro.service.synthetic")
        assert run_rules([sites, user], RPR007_CONFIG, codes={"RPR007"}) == []


# ----------------------------------------------------------------------
# baseline machinery
# ----------------------------------------------------------------------

class TestBaseline:
    def _finding(self, message="m1"):
        return Finding("RPR001", "src/x.py", 3, message)

    def test_round_trip_and_split(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self._finding()])
        keys = load_baseline(path)
        assert keys == {("RPR001", "src/x.py", "m1")}
        new, grandfathered, stale = split_by_baseline(
            [self._finding(), self._finding("m2")], keys
        )
        assert [f.message for f in new] == ["m2"]
        assert [f.message for f in grandfathered] == ["m1"]
        assert stale == []

    def test_stale_entries_detected(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self._finding()])
        new, grandfathered, stale = split_by_baseline([], load_baseline(path))
        assert new == [] and grandfathered == []
        assert stale == [("RPR001", "src/x.py", "m1")]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


# ----------------------------------------------------------------------
# config loading (tomllib + py39 fallback parser)
# ----------------------------------------------------------------------

class TestConfig:
    def test_repo_config_loads(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "src" in config.paths
        assert config.baseline == "lint-baseline.json"
        assert "repro.core" in config.rule_options("RPR001")["packages"]
        allow = config.rule_options("RPR001")["allow"]
        assert "repro.sat.solver::CdclSolver._analyze" in allow
        assert config.rule_options("RPR007")["sites-module"] == "repro.faults"

    def test_fallback_parser_matches_repo_config(self):
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        parsed = _parse_hqs_lint_subset(text)
        assert parsed["paths"] == ["src"]
        assert parsed["baseline"] == "lint-baseline.json"
        assert "repro.core" in parsed["rpr001"]["packages"]
        assert "repro.experiments.report" in parsed["rpr004"]["allow-modules"]

    def test_fallback_parser_scalars_and_multiline(self):
        parsed = _parse_hqs_lint_subset(textwrap.dedent("""
            [tool.other]
            junk = { inline = "table" }

            [tool.hqs-lint]
            paths = ["src", "tests"]  # trailing comment
            flag = true
            count = 3

            [tool.hqs-lint.rpr001]
            allow = [
                "a::b",
                "c::d",
            ]
        """))
        assert parsed["paths"] == ["src", "tests"]
        assert parsed["flag"] is True
        assert parsed["count"] == 3
        assert parsed["rpr001"]["allow"] == ["a::b", "c::d"]

    def test_defaults_survive_without_pyproject(self, tmp_path):
        # Regression: the defaults copy once split the baseline string
        # into a character list when no pyproject.toml was present.
        config = load_config(tmp_path / "pyproject.toml")
        assert config.baseline == "lint-baseline.json"
        assert config.paths == ["src"]
        assert config.rule_options("RPR007")["sites-module"] == "repro.faults"

    def test_instances_do_not_alias_defaults(self):
        from repro.analysis.config import DEFAULTS

        config = LintConfig({})
        config.raw["rpr001"]["allow"].append("x::y")
        config.raw["paths"].append("extra")
        assert DEFAULTS["rpr001"]["allow"] == []
        assert DEFAULTS["paths"] == ["src"]

    def test_select_ignore(self, tmp_path):
        config = LintConfig({"select": ["RPR001"]})
        assert config.enabled("RPR001") and not config.enabled("RPR002")
        config = LintConfig({"ignore": ["rpr003"]})
        assert config.enabled("RPR001") and not config.enabled("RPR003")


# ----------------------------------------------------------------------
# whole tree: hqs-lint src must match the committed baseline exactly
# ----------------------------------------------------------------------

class TestWholeTree:
    def test_src_matches_committed_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(["src", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == [], payload["findings"]
        assert payload["stale_baseline"] == [], payload["stale_baseline"]
        assert payload["ok"] is True
        assert exit_code == 0
        # The committed baseline matches what the tree produces, entry
        # for entry: every grandfathered finding is a baseline entry and
        # (via stale_baseline == []) every entry matched a finding.
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        produced = {
            (f["code"], f["path"], f["message"]) for f in payload["grandfathered"]
        }
        assert produced == baseline

    def test_core_and_service_have_no_baseline_entries(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        dirty = [
            key for key in baseline
            if key[1].startswith(("src/repro/core/", "src/repro/service/"))
        ]
        assert dirty == []

    def test_list_rules_covers_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004",
                     "RPR005", "RPR006", "RPR007"):
            assert code in out
