"""Cross-checks between the two semantic DQBF oracles.

``skolem_enumeration_solve`` implements Definition 2 literally;
``expansion_solve`` iterates Theorem 1 to a propositional formula.  They
must agree — each validates the other, and together they anchor every
solver test in the suite.
"""

import pytest
from hypothesis import given, settings

from repro.formula.dqbf import (
    Dqbf,
    expand_to_propositional,
    expansion_solve,
    skolem_enumeration_solve,
)

from conftest import dqbf_strategy


class TestOracleAgreement:
    @settings(max_examples=150, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=2, max_clauses=6))
    def test_skolem_equals_expansion(self, formula):
        assert skolem_enumeration_solve(formula) == expansion_solve(formula)


class TestKnownInstances:
    def test_equality_pair_is_sat(self):
        """y1(x1) == x1 and y2(x2) == x2 is realizable."""
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],
        )
        assert skolem_enumeration_solve(formula)
        assert expansion_solve(formula)

    def test_cross_dependency_is_unsat(self):
        """y(x1) == x2 cannot be realized: y does not see x2."""
        formula = Dqbf.build([1, 2], [(3, [1])], [[-3, 2], [3, -2]])
        assert not skolem_enumeration_solve(formula)
        assert not expansion_solve(formula)

    def test_empty_dependency_constant(self):
        """y() == x is unrealizable, y() free is fine."""
        forced = Dqbf.build([1], [(2, [])], [[-2, 1], [2, -1]])
        assert not expansion_solve(forced)
        free = Dqbf.build([1], [(2, [])], [[2, 1]])
        assert expansion_solve(free)

    def test_tautological_matrix(self):
        formula = Dqbf.build([1], [(2, [1])], [[1, -1, 2]])
        # clause is a tautology and gets dropped: empty matrix is satisfied
        assert expansion_solve(formula)

    def test_contradictory_matrix(self):
        formula = Dqbf.build([1], [(2, [1])], [[2], [-2]])
        assert not expansion_solve(formula)


class TestExpansion:
    def test_instance_variable_sharing(self):
        """Instances agreeing on D_y must share expansion variables."""
        # y depends only on x1: four universal branches but two y-instances
        formula = Dqbf.build([1, 2], [(3, [1])], [[3]])
        _cnf, instances = expand_to_propositional(formula)
        assert len(instances) == 2

    def test_full_dependency_gives_all_instances(self):
        formula = Dqbf.build([1, 2], [(3, [1, 2])], [[3]])
        _cnf, instances = expand_to_propositional(formula)
        assert len(instances) == 4

    def test_satisfied_branches_produce_no_instances(self):
        # the clause is satisfied whenever x1 or x2 holds: only the
        # all-false branch instantiates y
        formula = Dqbf.build([1, 2], [(3, [1])], [[3, 1, 2]])
        _cnf, instances = expand_to_propositional(formula)
        assert len(instances) == 1

    def test_limit_enforced(self):
        formula = Dqbf.build(
            list(range(1, 21)), [(21, list(range(1, 21)))], [[21]]
        )
        with pytest.raises(ValueError):
            expansion_solve(formula, limit=100)

    def test_skolem_limit_enforced(self):
        formula = Dqbf.build(
            list(range(1, 6)), [(6, list(range(1, 6)))], [[6]]
        )
        with pytest.raises(ValueError):
            skolem_enumeration_solve(formula, limit=10)


class TestValidation:
    def test_free_variable_rejected(self):
        formula = Dqbf.build([1], [(2, [1])], [[3]])
        assert formula.free_variables() == [3]
        with pytest.raises(ValueError):
            formula.validate()

    def test_is_qbf_matches_prefix_shape(self):
        qbf_like = Dqbf.build([1, 2], [(3, [1]), (4, [1, 2])], [[3, 4]])
        assert qbf_like.is_qbf()
        henkin = Dqbf.build([1, 2], [(3, [1]), (4, [2])], [[3, 4]])
        assert not henkin.is_qbf()
