"""Empirical validation of every numbered claim in the paper.

Each test corresponds to a definition, example, lemma or theorem of
*Solving DQBF Through Quantifier Elimination* and checks it on concrete
or randomized instances — the reproduction's fidelity contract.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.graph import Aig, complement
from repro.aig.unitpure import find_pures
from repro.core.depgraph import incomparable_pairs, dependency_edges, is_acyclic, linearize
from repro.core.elimination import eliminate_existential, eliminate_universal
from repro.formula.dqbf import Dqbf, expansion_solve, skolem_enumeration_solve
from repro.formula.prefix import EXISTS, FORALL, BlockedPrefix, DependencyPrefix
from repro.formula.qbf import Qbf, brute_force_qbf

from test_elimination import state_of, state_truth


class TestExample1:
    """forall x1 x2 exists y1(x1) y2(x2) has no equivalent QBF prefix."""

    def all_qbf_prefixes(self):
        """Every prenex ordering of x1,x2 (universal) and y1,y2 (existential).

        Variables: x1=1, x2=2, y1=3, y2=4.
        """
        kinds = {1: FORALL, 2: FORALL, 3: EXISTS, 4: EXISTS}
        for order in itertools.permutations([1, 2, 3, 4]):
            prefix = BlockedPrefix()
            for var in order:
                prefix.add_block(kinds[var], [var])
            yield prefix

    def test_no_qbf_prefix_is_equivalent(self):
        """For every QBF ordering there is a matrix on which it disagrees
        with the Henkin prefix — the empirical content of Example 1."""
        henkin = DependencyPrefix()
        henkin.add_universal(1)
        henkin.add_universal(2)
        henkin.add_existential(3, [1])
        henkin.add_existential(4, [2])

        # distinguishing matrices: y_i must copy "the wrong" universal,
        # or both, in various combinations
        matrices = [
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],      # y1=x1, y2=x2 (DQBF SAT)
            [[-3, 2], [3, -2], [-4, 1], [4, -1]],      # y1=x2, y2=x1 (DQBF UNSAT)
            [[-3, 1], [3, -1], [-4, 1], [4, -1]],      # y1=x1, y2=x1 (DQBF UNSAT)
            [[-4, 2], [4, -2], [-3, 2], [3, -2]],      # y1=x2, y2=x2 (DQBF UNSAT)
        ]
        from repro.formula.cnf import Cnf

        for qbf_prefix in self.all_qbf_prefixes():
            distinguished = False
            for clauses in matrices:
                dqbf = Dqbf(henkin.copy(), Cnf(clauses))
                qbf = Qbf(BlockedPrefix(qbf_prefix.blocks), Cnf(clauses))
                if expansion_solve(dqbf) != brute_force_qbf(qbf):
                    distinguished = True
                    break
            assert distinguished, f"prefix {qbf_prefix!r} indistinguishable"

    def test_dependency_graph_is_fig2(self):
        """Fig. 2: the dependency graph of Example 1 is the 2-cycle."""
        prefix = DependencyPrefix()
        prefix.add_universal(1)
        prefix.add_universal(2)
        prefix.add_existential(3, [1])
        prefix.add_existential(4, [2])
        assert set(dependency_edges(prefix)) == {(3, 4), (4, 3)}
        assert not is_acyclic(prefix)


class TestExample2:
    """Fig. 1's AIG expression equals the CNF the paper derives."""

    def test_aig_expression_equals_cnf(self):
        aig = Aig()
        y1, x1, y2, x2 = aig.var(1), aig.var(3), aig.var(2), aig.var(4)
        # phi = !( !(!y1 & x1... ) ) — build the displayed expression:
        # ((!( !y1 & x1 ) & !y1)... the paper's expression simplifies to the
        # CNF below; we construct the CNF-of-ors form and the nested form
        # and check equality of functions.
        nested = aig.land(
            aig.land(
                complement(aig.land(complement(aig.land(complement(y1), x1)), complement(y1))),
                complement(aig.land(complement(y1), complement(x2))),
            ),
            aig.land(
                complement(aig.land(x1, complement(y2))),
                complement(aig.land(x2, complement(y2))),
            ),
        )
        cnf_form = aig.land_many(
            [
                aig.lor(y1, x1),
                aig.lor(y1, x2),
                aig.lor(y2, complement(x1)),
                aig.lor(y2, complement(x2)),
            ]
        )
        for values in itertools.product([False, True], repeat=4):
            assignment = dict(zip([1, 2, 3, 4], values))
            # the nested form from the figure contains one deliberate
            # double negation; compare semantics, not structure
            assert aig.evaluate(nested, assignment) == aig.evaluate(cnf_form, assignment)


class TestExample4:
    """The syntactic purity check is incomplete but sound on Fig. 1."""

    def test_y2_positive_pure_in_or_structure(self):
        aig = Aig()
        y1, y2, x1, x2 = (aig.var(v) for v in (1, 2, 3, 4))
        f = aig.land_many(
            [
                aig.lor(y1, x1),
                aig.lor(y1, x2),
                aig.lor(y2, complement(x1)),
                aig.lor(y2, complement(x2)),
            ]
        )
        pures = find_pures(aig, f)
        assert pures.get(2) is True  # y2 positive pure
        # x1/x2 occur in both phases
        assert 3 not in pures and 4 not in pures


class TestLemma1:
    """Every cycle in a dependency graph contains a binary cycle."""

    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_cycle_implies_binary_cycle(self, data):
        nu = data.draw(st.integers(1, 4))
        ne = data.draw(st.integers(2, 5))
        universals = list(range(1, nu + 1))
        prefix = DependencyPrefix()
        for x in universals:
            prefix.add_universal(x)
        for i in range(ne):
            deps = data.draw(
                st.lists(st.sampled_from(universals), unique=True, max_size=nu)
            )
            prefix.add_existential(nu + 1 + i, deps)
        # if the graph has any cycle (i.e. not acyclic), Theorem 4 demands
        # a 2-cycle, i.e. an incomparable pair
        if not is_acyclic(prefix):
            assert incomparable_pairs(prefix)


class TestTheorem1:
    """Universal elimination preserves DQBF truth (randomized)."""

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10**6))
    def test_equivalence(self, seed):
        rng = random.Random(seed)
        from repro.formula.generator import RandomDqbfConfig, random_dqbf

        formula = random_dqbf(
            rng, RandomDqbfConfig(num_universals=3, num_existentials=2, num_clauses=7)
        )
        expected = expansion_solve(formula)
        state = state_of(formula)
        x = rng.choice(state.prefix.universals)
        eliminate_universal(state, x)
        assert state_truth(state) == expected


class TestTheorem2:
    """Existential elimination (full dependency) preserves DQBF truth."""

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10**6))
    def test_equivalence(self, seed):
        rng = random.Random(seed)
        from repro.formula.generator import RandomDqbfConfig, random_dqbf

        formula = random_dqbf(
            rng, RandomDqbfConfig(num_universals=2, num_existentials=2, num_clauses=7)
        )
        y = formula.prefix.existentials[0]
        formula.prefix.set_dependencies(y, formula.prefix.universals)
        expected = expansion_solve(formula)
        state = state_of(formula)
        eliminate_existential(state, y)
        assert state_truth(state) == expected


class TestTheorem3:
    """Acyclic dependency graph <=> equivalent QBF prefix (constructive)."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_linearization_equivalent(self, seed):
        rng = random.Random(seed)
        from repro.formula.generator import RandomDqbfConfig, random_qbf_shaped_dqbf

        formula = random_qbf_shaped_dqbf(
            rng, RandomDqbfConfig(num_universals=3, num_existentials=3, num_clauses=8)
        )
        assert formula.is_qbf()
        blocked = linearize(formula.prefix)
        qbf = Qbf(blocked, formula.matrix.copy())
        assert brute_force_qbf(qbf) == expansion_solve(formula)


class TestDefinition2:
    """The two semantic readings (Skolem functions / expansion) coincide."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_oracles_agree(self, seed):
        rng = random.Random(seed)
        from repro.formula.generator import RandomDqbfConfig, random_dqbf

        formula = random_dqbf(
            rng, RandomDqbfConfig(num_universals=2, num_existentials=2, num_clauses=6)
        )
        assert skolem_enumeration_solve(formula) == expansion_solve(formula)
