"""Tests for the QBF solvers (AIG elimination back-end and QDPLL oracle)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import Limits
from repro.errors import TimeoutExceeded
from repro.formula.prefix import EXISTS, FORALL, BlockedPrefix
from repro.formula.qbf import Qbf, brute_force_qbf
from repro.qbf.aigsolve import QbfSolverStats, solve_aig_qbf, solve_qbf
from repro.qbf.qdpll import solve_qdpll


from conftest import random_qbf  # shared with test_qdimacs


class TestKnownQbfs:
    def test_forall_exists_sat(self):
        # forall x exists y: y == x
        formula = Qbf.build([(FORALL, [1]), (EXISTS, [2])], [[-1, 2], [1, -2]])
        assert solve_qbf(formula) is True
        assert solve_qdpll(formula) is True

    def test_exists_forall_unsat(self):
        # exists y forall x: y == x
        formula = Qbf.build([(EXISTS, [2]), (FORALL, [1])], [[-1, 2], [1, -2]])
        assert solve_qbf(formula) is False
        assert solve_qdpll(formula) is False

    def test_pure_sat_block(self):
        formula = Qbf.build([(EXISTS, [1, 2])], [[1, 2], [-1, 2]])
        assert solve_qbf(formula) is True

    def test_pure_universal_block_tautology(self):
        formula = Qbf.build([(FORALL, [1, 2])], [[1, -1, 2]])
        assert solve_qbf(formula) is True

    def test_pure_universal_block_falsifiable(self):
        formula = Qbf.build([(FORALL, [1, 2])], [[1, 2]])
        assert solve_qbf(formula) is False

    def test_three_level_alternation(self):
        # forall x exists y forall z: (x xor y) | z ... y := !x fails on z=0;
        # matrix (x|y|z)(!x|!y|z): y := !x satisfies both clauses for all z
        formula = Qbf.build(
            [(FORALL, [1]), (EXISTS, [2]), (FORALL, [3])],
            [[1, 2, 3], [-1, -2, 3]],
        )
        expected = brute_force_qbf(formula)
        assert solve_qbf(formula.copy()) == expected
        assert solve_qdpll(formula.copy()) == expected


class TestAgainstOracle:
    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10**6))
    def test_aigsolve_matches_brute_force(self, seed):
        rng = random.Random(seed)
        formula = random_qbf(rng)
        expected = brute_force_qbf(formula)
        assert solve_qbf(formula.copy()) == expected

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10**6))
    def test_qdpll_matches_brute_force(self, seed):
        rng = random.Random(seed)
        formula = random_qbf(rng)
        expected = brute_force_qbf(formula)
        assert solve_qdpll(formula.copy()) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_aigsolve_without_unit_pure(self, seed):
        rng = random.Random(seed)
        formula = random_qbf(rng)
        expected = brute_force_qbf(formula)
        from repro.aig.cnf_bridge import cnf_to_aig

        aig, root = cnf_to_aig(formula.matrix.clauses)
        prefix = BlockedPrefix(formula.prefix.blocks)
        assert solve_aig_qbf(aig, root, prefix, use_unit_pure=False) == expected


class TestStatsAndLimits:
    def test_stats_counters(self):
        formula = Qbf.build(
            [(FORALL, [1]), (EXISTS, [2]), (FORALL, [3]), (EXISTS, [4])],
            [[1, 2, 3, 4], [-1, -2, -3, 4], [2, -4, 1], [-2, 4, 3]],
        )
        from repro.aig.cnf_bridge import cnf_to_aig

        stats = QbfSolverStats()
        aig, root = cnf_to_aig(formula.matrix.clauses)
        solve_aig_qbf(aig, root, BlockedPrefix(formula.prefix.blocks), stats=stats)
        assert stats.sat_endgames + stats.quantifier_eliminations >= 1
        assert isinstance(stats.as_dict(), dict)

    def test_timeout_propagates(self):
        rng = random.Random(5)
        formula = random_qbf(rng, max_vars=6, max_clauses=12)
        limits = Limits(time_limit=0.0)
        import time

        time.sleep(0.01)
        with pytest.raises(TimeoutExceeded):
            solve_qbf(formula, limits)

    def test_open_formula_rejected(self):
        formula = Qbf.build([(EXISTS, [1])], [[2]])
        with pytest.raises(ValueError):
            solve_qbf(formula)
