"""Tests for Skolem certificates: tables, verification, extraction."""

import pytest
from hypothesis import given, settings

from repro.core.result import SAT, UNSAT
from repro.core.skolem import SkolemTable, extract_certificate, verify_skolem
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


def identity_pair() -> Dqbf:
    return Dqbf.build(
        [1, 2], [(3, [1]), (4, [2])],
        [[-3, 1], [3, -1], [-4, 2], [4, -2]],
    )


class TestSkolemTable:
    def test_evaluate_with_default(self):
        table = SkolemTable(3, [1, 2], {(True, False): True})
        assert table.evaluate({1: True, 2: False})
        assert not table.evaluate({1: False, 2: False})  # default False

    def test_default_true(self):
        table = SkolemTable(3, [1], default=True)
        assert table.evaluate({1: False})

    def test_deps_sorted(self):
        table = SkolemTable(3, [5, 2])
        assert table.deps == [2, 5]

    def test_as_full_table(self):
        table = SkolemTable(3, [1], {(True,): True})
        full = table.as_full_table()
        assert full == {(False,): False, (True,): True}

    def test_to_aig_matches_evaluate(self):
        import itertools

        from repro.aig.graph import Aig, FALSE, TRUE

        table = SkolemTable(7, [1, 2], {(True, True): True, (False, True): True})
        aig = Aig()
        edge = table.to_aig(aig)
        for v1, v2 in itertools.product([False, True], repeat=2):
            expected = table.evaluate({1: v1, 2: v2})
            got = edge == TRUE if edge in (TRUE, FALSE) else aig.evaluate(
                edge, {1: v1, 2: v2}
            )
            assert got == expected

    def test_to_aig_default_true(self):
        from repro.aig.graph import Aig, TRUE

        table = SkolemTable(7, [1], {(True,): False}, default=True)
        aig = Aig()
        edge = table.to_aig(aig)
        assert aig.evaluate(edge, {1: False})
        assert not aig.evaluate(edge, {1: True})

    def test_constant_function(self):
        from repro.aig.graph import Aig, FALSE

        table = SkolemTable(7, [])
        aig = Aig()
        assert table.to_aig(aig) == FALSE


class TestVerify:
    def test_valid_certificate(self):
        tables = {
            3: SkolemTable(3, [1], {(True,): True}),
            4: SkolemTable(4, [2], {(True,): True}),
        }
        assert verify_skolem(identity_pair(), tables)

    def test_invalid_certificate(self):
        tables = {
            3: SkolemTable(3, [1]),  # constant False cannot track x1
            4: SkolemTable(4, [2], {(True,): True}),
        }
        assert not verify_skolem(identity_pair(), tables)

    def test_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            verify_skolem(identity_pair(), {3: SkolemTable(3, [1])})

    def test_dependency_violation_rejected(self):
        tables = {
            3: SkolemTable(3, [2], {(True,): True}),  # reads x2, allowed {x1}
            4: SkolemTable(4, [2], {(True,): True}),
        }
        with pytest.raises(ValueError):
            verify_skolem(identity_pair(), tables)

    def test_subset_dependency_allowed(self):
        """A Skolem function may read fewer variables than declared."""
        formula = Dqbf.build([1, 2], [(3, [1, 2])], [[3, 1]])
        tables = {3: SkolemTable(3, [], default=True)}
        assert verify_skolem(formula, tables)


class TestExtraction:
    def test_sat_instance_yields_verified_certificate(self):
        result, tables = extract_certificate(identity_pair())
        assert result.status == SAT
        assert tables is not None
        assert verify_skolem(identity_pair(), tables)

    def test_unsat_instance_yields_none(self):
        formula = Dqbf.build([1, 2], [(3, [1])], [[-3, 2], [3, -2]])
        result, tables = extract_certificate(formula)
        assert result.status == UNSAT
        assert tables is None

    def test_empty_matrix_certificate(self):
        formula = Dqbf.build([1], [(2, [1])], [])
        result, tables = extract_certificate(formula)
        assert result.status == SAT
        assert set(tables) == {2}

    @settings(max_examples=60, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=2, max_clauses=6))
    def test_random_instances(self, formula):
        expected = expansion_solve(formula)
        result, tables = extract_certificate(formula.copy())
        assert (result.status == SAT) == expected
        if tables is not None:
            assert verify_skolem(formula, tables)
