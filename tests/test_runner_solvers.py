"""Tests for the experiment runner's solver registry."""

import pytest

from repro.core.result import SAT, UNKNOWN, UNSAT
from repro.experiments.runner import BenchConfig, SOLVERS, run_solver
from repro.pec.families import make_bitcell, make_pec_xor


@pytest.fixture(scope="module")
def sat_instance():
    return make_pec_xor(4, 1, buggy=False, seed=61)


@pytest.fixture(scope="module")
def unsat_instance():
    return make_bitcell(4, 1, buggy=True, seed=62)


def small_config():
    return BenchConfig(scale=1.0, count=1, timeout=20.0, node_limit=200000)


class TestSolverRegistry:
    def test_expected_solvers_registered(self):
        assert {"HQS", "HQS_PROBE", "IDQ", "EXPANSION", "BDD", "DPLL"} <= set(SOLVERS)

    @pytest.mark.parametrize("name", ["HQS", "HQS_PROBE", "EXPANSION", "BDD"])
    def test_each_solver_on_unsat(self, name, unsat_instance):
        record = run_solver(name, unsat_instance, small_config())
        assert record.result.status in (UNSAT, UNKNOWN, "TIMEOUT", "MEMOUT")

    @pytest.mark.parametrize("name", ["HQS", "HQS_PROBE", "EXPANSION", "BDD"])
    def test_each_solver_on_sat(self, name, sat_instance):
        record = run_solver(name, sat_instance, small_config())
        assert record.result.status in (SAT, UNKNOWN, "TIMEOUT", "MEMOUT")

    @pytest.mark.slow
    def test_dpll_on_tiny_instance(self):
        instance = make_pec_xor(4, 1, buggy=False, seed=63)
        record = run_solver("DPLL", instance, small_config())
        assert record.result.status in (SAT, UNKNOWN, "TIMEOUT")

    def test_idq_on_unsat(self, unsat_instance):
        record = run_solver("IDQ", unsat_instance, small_config())
        assert record.result.status in (UNSAT, UNKNOWN, "TIMEOUT")
