"""Tests for DQBF-aware CNF preprocessing (units, reduction, equivalences, gates)."""

from hypothesis import given, settings

from repro.core.preprocess import Gate, preprocess
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


class TestUnitPropagation:
    def test_existential_unit_assigned(self):
        formula = Dqbf.build([1], [(2, [1]), (3, [1])], [[2], [-2, 3]])
        result = preprocess(formula)
        # 2 := true, then 3 is unit too, matrix empties -> SAT
        assert result.status is True
        assert result.stats.units_propagated >= 2

    def test_universal_unit_is_unsat(self):
        formula = Dqbf.build([1], [(2, [1])], [[1], [2]])
        result = preprocess(formula)
        assert result.status is False

    def test_conflicting_units_unsat(self):
        formula = Dqbf.build([1], [(2, [1])], [[2], [-2]])
        result = preprocess(formula)
        assert result.status is False


class TestUniversalReduction:
    def test_pure_universal_clause_unsat(self):
        """A clause of only universal literals reduces to the empty clause."""
        formula = Dqbf.build([1, 2], [(3, [1])], [[1, 2], [3]])
        result = preprocess(formula)
        assert result.status is False

    def test_independent_universal_removed(self):
        """x2 is dropped from (x2 | y) when y does not depend on x2."""
        formula = Dqbf.build([1, 2], [(3, [1])], [[2, 3], [-3, 1], [-1, 3]])
        result = preprocess(formula)
        # after reduction (x2|y) becomes unit (y), which propagates
        assert result.stats.universal_reductions >= 1

    def test_dependent_universal_kept(self):
        formula = Dqbf.build([1], [(2, [1]), (3, [1])], [[1, 2, 3]])
        result = preprocess(formula)
        assert result.status is None
        assert (1, 2, 3) in result.formula.matrix


class TestEquivalences:
    def test_existential_pair_merged(self):
        # y1 == y2 forced by binary clauses; same dependency sets
        formula = Dqbf.build(
            [1],
            [(2, [1]), (3, [1])],
            [[-2, 3], [2, -3], [2, 1], [3, -1]],
        )
        result = preprocess(formula)
        assert result.stats.equivalences_substituted >= 1

    def test_dependency_incompatible_pair_kept(self):
        # y1(x1) == y2(x2): neither may absorb the other
        formula = Dqbf.build(
            [1, 2],
            [(3, [1]), (4, [2])],
            [[-3, 4], [3, -4], [3, 1, 2], [4, -1, -2]],
        )
        result = preprocess(formula)
        assert result.stats.equivalences_substituted == 0

    def test_existential_absorbed_by_universal(self):
        # y == x with x in D_y: y replaced by x
        formula = Dqbf.build(
            [1, 2],
            [(3, [1])],
            [[-3, 1], [3, -1], [3, 2], [-3, -2]],
        )
        result = preprocess(formula)
        # after substitution the matrix forces (x1|x2) & (!x1|!x2) on
        # universals only -> universal reduction gives UNSAT
        assert result.status is False


class TestGateDetection:
    def test_and_gate_found(self):
        # g <-> (a & b) with a, b universal, g existential on both
        formula = Dqbf.build(
            [1, 2],
            [(3, [1, 2]), (4, [1, 2])],
            [[-3, 1], [-3, 2], [3, -1, -2], [3, 4], [-4, 1]],
        )
        result = preprocess(formula)
        assert result.stats.gates_detected >= 1
        kinds = {g.kind for g in result.gates}
        assert kinds <= {"and", "or", "xor"}

    def test_xor_gate_found(self):
        formula = Dqbf.build(
            [1, 2],
            [(3, [1, 2]), (4, [1, 2])],
            [
                [3, 1, 2], [3, -1, -2], [-3, 1, -2], [-3, -1, 2],
                [3, 4], [-4, 1],
            ],
        )
        result = preprocess(formula)
        assert result.stats.gates_detected >= 1

    def test_dependency_incompatible_gate_rejected(self):
        # g depends only on x1 but the gate reads x2: not inlineable
        formula = Dqbf.build(
            [1, 2],
            [(3, [1])],
            [[-3, 1], [-3, 2], [3, -1, -2], [3, 2]],
        )
        result = preprocess(formula)
        assert result.stats.gates_detected == 0

    def test_gate_clauses_removed(self):
        formula = Dqbf.build(
            [1, 2],
            [(3, [1, 2]), (4, [1, 2])],
            [[-3, 1], [-3, 2], [3, -1, -2], [3, 4], [-4, 1]],
        )
        result = preprocess(formula)
        if result.status is None and result.stats.gates_detected:
            remaining = set(result.formula.matrix.clauses)
            assert (-3, 1) not in remaining

    def test_gate_helper_methods(self):
        gate = Gate(5, "and", [1, -2])
        assert gate.input_vars() == {1, 2}
        assert "and" in repr(gate)


class TestSoundness:
    @settings(max_examples=120, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_preprocessing_preserves_truth(self, formula):
        """Decided results must agree with the oracle; undecided results
        must stay equisatisfiable (checked via the full HQS pipeline in
        test_hqs, here via expansion of the simplified formula)."""
        expected = expansion_solve(formula)
        result = preprocess(formula)
        if result.status is not None:
            assert result.status == expected
        elif not result.gates:
            # without gates the simplified formula is a plain DQBF again
            assert expansion_solve(result.formula, limit=1 << 18) == expected

    @settings(max_examples=60, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_no_gate_detection_variant(self, formula):
        expected = expansion_solve(formula)
        result = preprocess(formula, detect_gates=False)
        assert result.gates == []
        if result.status is not None:
            assert result.status == expected
        else:
            assert expansion_solve(result.formula, limit=1 << 18) == expected
