"""Tests for the ISCAS'85-style stand-in circuits (z4ml, comp, C432)."""


import pytest

from repro.pec.iscas import c432_like, comp_like, z4ml_like


class TestZ4mlLike:
    @pytest.mark.parametrize("bits", [2, 4, 6])
    def test_adds_correctly(self, bits):
        circuit = z4ml_like(bits)
        circuit.validate()
        for a in range(1 << bits):
            for b in range(0, 1 << bits, max(1, (1 << bits) // 8)):
                for cin in (0, 1):
                    values = {}
                    for i in range(bits):
                        values[f"a{i}"] = bool((a >> i) & 1)
                        values[f"b{i}"] = bool((b >> i) & 1)
                    values["cin"] = bool(cin)
                    out = circuit.simulate(values)
                    total = (a + b + cin) % (1 << bits)
                    got = sum(int(out[f"s{i}"]) << i for i in range(bits))
                    assert got == total, (a, b, cin)

    def test_has_redundant_carry_select_structure(self):
        circuit = z4ml_like(4)
        names = {g.output for g in circuit.gates}
        # both the carry-0 and carry-1 upper chains exist
        assert "zs2" in names and "os2" in names


class TestCompLike:
    @pytest.mark.parametrize("bits", [2, 3, 5])
    def test_compares_correctly(self, bits):
        circuit = comp_like(bits)
        circuit.validate()
        for a in range(1 << bits):
            for b in range(1 << bits):
                values = {}
                for i in range(bits):
                    values[f"a{i}"] = bool((a >> i) & 1)
                    values[f"b{i}"] = bool((b >> i) & 1)
                out = circuit.simulate(values)
                assert out["gt"] == (a > b), (a, b)
                assert out["eq"] == (a == b), (a, b)

    def test_parity_output(self):
        circuit = comp_like(3)
        for a in range(8):
            values = {f"a{i}": bool((a >> i) & 1) for i in range(3)}
            values.update({f"b{i}": False for i in range(3)})
            out = circuit.simulate(values)
            assert out["par"] == (bin(a).count("1") % 2 == 1)


class TestC432Like:
    def test_priority_semantics(self):
        circuit = c432_like(groups=3, channels=4)
        circuit.validate()

        def run(reqs, enables):
            values = {}
            for g in range(3):
                values[f"en{g}"] = enables[g]
                for k in range(4):
                    values[f"r{g}_{k}"] = (g, k) in reqs
            return circuit.simulate(values)

        # no requests: no grants
        out = run(set(), [True] * 3)
        assert not any(out[f"grant{g}"] for g in range(3))

        # group 1 requests, group 0 idle: grant group 1
        out = run({(1, 2)}, [True] * 3)
        assert out["grant1"] and not out["grant0"] and not out["grant2"]
        # channel index 2 encoded
        assert out["idx1"] and not out["idx0"]

        # group 0 beats group 1
        out = run({(0, 3), (1, 0)}, [True] * 3)
        assert out["grant0"] and not out["grant1"]
        assert out["idx0"] and out["idx1"]  # channel 3

        # disabled group is skipped
        out = run({(0, 1), (2, 1)}, [False, True, True])
        assert not out["grant0"] and out["grant2"]
        assert out["idx0"] and not out["idx1"]  # channel 1

    def test_channel_priority_within_group(self):
        circuit = c432_like(groups=2, channels=3)
        values = {"en0": True, "en1": True}
        for k in range(3):
            values[f"r0_{k}"] = k >= 1  # channels 1 and 2 request
            values[f"r1_{k}"] = False
        out = circuit.simulate(values)
        assert out["grant0"]
        # lowest requesting channel (1) wins
        assert out["idx0"] and not out["idx1"]
