"""Tests for the totalizer encoding and the partial MaxSAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat.solver import PartialMaxSatSolver, solve_partial_maxsat
from repro.maxsat.totalizer import Totalizer, encode_at_most_k
from repro.sat.solver import SAT, UNSAT, CdclSolver


def brute_force_optimum(hard, soft, num_vars):
    best = None
    for values in itertools.product([False, True], repeat=num_vars):
        assignment = dict(zip(range(1, num_vars + 1), values))

        def satisfied(clause):
            return any((lit > 0) == assignment[abs(lit)] for lit in clause)

        if all(satisfied(c) for c in hard):
            cost = sum(0 if satisfied(c) else 1 for c in soft)
            best = cost if best is None else min(best, cost)
    return best


class TestTotalizer:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 0), (5, 4)])
    def test_at_most_k_blocks_excess(self, n, k):
        solver = CdclSolver()
        inputs = [solver.new_var() for _ in range(n)]
        encode_at_most_k(inputs, k, solver.new_var, solver.add_clause)
        # forcing k+1 inputs true must be UNSAT; forcing k true must be SAT
        assert solver.solve(inputs[: k + 1]) == (UNSAT if k + 1 <= n else SAT)
        if k > 0:
            assert solver.solve(inputs[:k]) == SAT

    def test_outputs_count_inputs(self):
        solver = CdclSolver()
        inputs = [solver.new_var() for _ in range(4)]
        totalizer = Totalizer(inputs, solver.new_var, solver.add_clause)
        # set exactly 2 inputs true: outputs[0..1] must be assertable true,
        # asserting output[2] (>=3) must clash with the complement bound
        assumptions = [inputs[0], inputs[1], -inputs[2], -inputs[3]]
        assert solver.solve(assumptions + [totalizer.outputs[0]]) == SAT
        assert solver.solve(assumptions + [totalizer.outputs[1]]) == SAT

    def test_at_most_assumption_large_bound_empty(self):
        solver = CdclSolver()
        inputs = [solver.new_var() for _ in range(3)]
        totalizer = Totalizer(inputs, solver.new_var, solver.add_clause)
        assert totalizer.at_most_assumption(3) == []
        assert totalizer.at_most_assumption(7) == []


class TestPartialMaxSat:
    def test_all_soft_satisfiable(self):
        result = solve_partial_maxsat(hard=[[1, 2]], soft=[[1], [2]])
        assert result.satisfiable and result.cost == 0

    def test_forced_violation(self):
        result = solve_partial_maxsat(hard=[[1]], soft=[[-1]])
        assert result.satisfiable and result.cost == 1

    def test_hard_conflict_unsat(self):
        result = solve_partial_maxsat(hard=[[1], [-1]], soft=[[2]])
        assert not result.satisfiable

    def test_exclusive_softs(self):
        result = solve_partial_maxsat(hard=[[-1, -2]], soft=[[1], [2]])
        assert result.cost == 1

    def test_no_soft_clauses(self):
        result = solve_partial_maxsat(hard=[[1]], soft=[])
        assert result.satisfiable and result.cost == 0

    def test_empty_soft_rejected(self):
        solver = PartialMaxSatSolver()
        with pytest.raises(ValueError):
            solver.add_soft([])

    def test_model_satisfies_hard_clauses(self):
        result = solve_partial_maxsat(
            hard=[[1, 2], [-1, 3]], soft=[[-3], [-2]]
        )
        assert result.satisfiable
        model = result.model
        assert (model.get(1) or model.get(2)) and ((not model.get(1)) or model.get(3))

    def test_shortcut_skips_totalizer_when_feasibility_model_optimal(self):
        # the hard unit forces the only soft, so the feasibility model is
        # already optimal: no relaxation, no bound search
        result = solve_partial_maxsat(hard=[[1]], soft=[[1]])
        assert result.cost == 0
        assert not result.totalizer_built
        assert result.bounds_tried == [-1]

    def test_bound_zero_shortcut_skips_totalizer(self):
        # x1 must hold; the feasibility model may violate soft [-2] (2 is
        # free), but assuming all relaxation literals false still finds a
        # cost-0 model — the totalizer is never built.
        result = solve_partial_maxsat(hard=[[1], [2, 3]], soft=[[-1, 2], [3]])
        assert result.satisfiable and result.cost == 0
        assert not result.totalizer_built

    def test_totalizer_built_for_positive_optimum(self):
        result = solve_partial_maxsat(hard=[[-1, -2], [1, 2]], soft=[[1], [2]])
        assert result.cost == 1
        assert result.totalizer_built
        assert result.bounds_tried[-1] == 1

    def test_per_bound_conflicts_accounting(self):
        result = solve_partial_maxsat(
            hard=[[-1, -2], [-1, -3], [-2, -3]], soft=[[1], [2], [3]]
        )
        assert result.cost == 2
        # bound -1 is the hard feasibility check; every tried bound has an
        # entry and the totals tie out
        assert -1 in result.per_bound_conflicts
        assert result.conflicts == sum(result.per_bound_conflicts.values())
        assert result.conflicts >= 0 and result.decisions >= 0

    def test_injected_solver_is_reused_and_extended(self):
        solver = CdclSolver()
        base = solver.num_vars
        result = solve_partial_maxsat(
            hard=[[-1, -2], [1, 2]], soft=[[1], [2]], solver=solver
        )
        assert result.cost == 1
        # relaxation + totalizer variables were allocated on the injected
        # solver, and its clause database kept the encoding
        assert solver.num_vars > max(base, 2)
        assert solver.solve() == SAT

    def test_injected_solver_shares_across_calls(self):
        solver = CdclSolver()
        first = solve_partial_maxsat(hard=[[1]], soft=[[-1]], solver=solver)
        assert first.cost == 1
        conflicts_after_first = solver.statistics["conflicts"]
        second = solve_partial_maxsat(hard=[[2]], soft=[[2]], solver=solver)
        assert second.cost == 0
        assert solver.statistics["conflicts"] >= conflicts_after_first

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(1, 6))
        literals = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        hard = data.draw(
            st.lists(st.lists(literals, min_size=1, max_size=3), max_size=8)
        )
        soft = data.draw(
            st.lists(st.lists(literals, min_size=1, max_size=2), min_size=1, max_size=6)
        )
        result = solve_partial_maxsat(hard, soft)
        expected = brute_force_optimum(hard, soft, num_vars)
        if expected is None:
            assert not result.satisfiable
        else:
            assert result.satisfiable
            assert result.cost == expected
